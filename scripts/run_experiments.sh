#!/usr/bin/env bash
# Regenerates every table, figure and ablation, writing outputs next to
# EXPERIMENTS.md. Scale 0.02 keeps the whole sweep laptop-sized; pass a
# different scale as $1 (e.g. 1.0 for the full Table-2 counts).
set -u
SCALE="${1:-0.02}"
cd "$(dirname "$0")/.."
RUN="cargo run --release -q -p hotspot-bench --bin tables --"
mkdir -p results
$RUN --table 2 --scale "$SCALE"            | tee results/table2.txt
$RUN --table 3 --scale "$SCALE"            | tee results/table3.txt
$RUN --figure 2                            | tee results/figure2.txt
$RUN --ablation epsilon --scale "$SCALE"   | tee results/ablation_epsilon.txt
$RUN --ablation scaling --scale "$SCALE"   | tee results/ablation_scaling.txt
$RUN --ablation input-size --scale "$SCALE"| tee results/ablation_input_size.txt
$RUN --ablation levels --scale "$SCALE"    | tee results/ablation_levels.txt
