//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Work items are materialized into a `Vec`, then distributed over
//! `std::thread::scope` workers through an atomic cursor (dynamic load
//! balancing, like rayon's work stealing but coarser). Result order is
//! always preserved, matching rayon's indexed parallel iterators.
//!
//! Supported surface: `par_iter`, `into_par_iter` (vectors and
//! `Range<usize>`/`Range<u64>`), `par_chunks`, `par_chunks_mut`,
//! `enumerate`, `map`, `for_each`, `for_each_init`, `collect`, `sum`
//! and `current_num_threads`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on a scoped thread pool, preserving input
/// order in the result.
fn run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot hands its item to exactly one worker and carries the
    // result back; the cursor is the only shared mutable state.
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| Mutex::new((Some(item), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().0.take().unwrap();
                let out = f(item);
                slots[i].lock().unwrap().1 = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().1.unwrap())
        .collect()
}

/// An eager "parallel iterator": the pending items, run on `for_each`
/// / `collect`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps items; runs when the result is consumed.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` over all items in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run(self.items, f);
    }

    /// Runs `f` over all items in parallel, handing each worker thread
    /// one value built by `init` that it reuses for every item it
    /// processes (rayon's `for_each_init`).  Use this for per-worker
    /// scratch — e.g. checking a [`Workspace`] out of a pool once per
    /// worker instead of once per item.
    pub fn for_each_init<S, I, F>(self, init: I, f: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, T) + Sync,
    {
        let items = self.items;
        let n = items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            let mut state = init();
            for item in items {
                f(&mut state, item);
            }
            return;
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().unwrap().take().unwrap();
                        f(&mut state, item);
                    }
                });
            }
        });
    }

    /// Parallelism-hint no-op, kept for rayon API compatibility.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// A mapped [`ParIter`], consumed by `collect`/`for_each`/`sum`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        run(self.items, self.f).into_iter().collect()
    }

    /// Runs the map in parallel, discarding results.
    pub fn for_each<R, G>(self, g: G)
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        G: Fn(R) + Sync,
    {
        run(self.items, |item| g((self.f)(item)));
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<R, S>(self) -> S
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        S: std::iter::Sum<R>,
    {
        run(self.items, self.f).into_iter().sum()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// Reference item type.
    type Item: Send;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel chunking of shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Non-overlapping chunks of `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// Parallel chunking of mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn chunks_mut_touch_every_element() {
        let mut data = vec![0u32; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 15);
    }

    #[test]
    fn for_each_init_reuses_state_per_worker() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(1).enumerate().for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                7u32
            },
            |state, (i, chunk)| {
                chunk[0] = *state + i as u32;
            },
        );
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 7 + i as u32);
        }
        // One init per worker thread, not per item.
        assert!(inits.load(Ordering::Relaxed) <= crate::current_num_threads());
    }

    #[test]
    fn par_iter_borrows() {
        let words = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = words.par_iter().map(|w| w.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }
}
