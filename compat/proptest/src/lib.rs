//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, `any::<bool>()` and the
//! `prop_assert*` macros. Values are generated from a deterministic
//! per-test seed (FNV hash of the test path mixed with the case
//! index), so failures are reproducible run-to-run.
//!
//! There is **no shrinking**: a failing case panics with the case
//! index in scope via the standard assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while
        // still probing a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator (SplitMix64 over a seeded state).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's module path + name and the case index.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) << 32) ^ u64::from(case),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A value generator; the no-shrinking core of proptest's `Strategy`.
pub trait Strategy: Sized {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.next_u64() as u128 % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = rng.next_u64() as u128 % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! `Vec` strategies mirroring `proptest::collection`.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy generating `BTreeSet`s of another strategy's values.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy with the given element strategy and target
    /// size (duplicates may leave the set below the target, as in
    /// upstream proptest's bounded retry behaviour).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.min + rng.below(self.size.max - self.size.min + 1);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        //! The `prop::` path exposed by proptest's prelude.
        pub use crate::collection;
    }
}

/// Runs each property as `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` that also works inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` that also works inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` that also works inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
#[allow(clippy::overly_complex_bool_expr)] // `b || !b` deliberately exercises the bool strategy
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 1usize..=9, f in -2.0f32..2.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0u64..10, 3..8).prop_map(|v| v.len())) {
            prop_assert!((3..8).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_parses(b in any::<bool>(), (lo, hi) in (0i64..5, 10i64..20)) {
            prop_assert!(b || !b);
            prop_assert!(lo < hi);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
