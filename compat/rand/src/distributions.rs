//! Distributions: `Uniform` plus the range plumbing behind
//! `Rng::gen_range`.

use crate::Rng;

/// A distribution sampling values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a half-open range `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform { lo, hi }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> UniformInclusive<T> {
        UniformInclusive { lo, hi }
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_range(self.lo, self.hi, rng)
    }
}

/// Uniform distribution over an inclusive range `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive<T> {
    lo: T,
    hi: T,
}

impl<T: uniform::SampleUniform> Distribution<T> for UniformInclusive<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_inclusive(self.lo, self.hi, rng)
    }
}

pub mod uniform {
    //! Range-sampling traits mirroring `rand::distributions::uniform`.

    use crate::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Copy {
        /// Uniform sample from `[lo, hi)`; panics when the range is
        /// empty.
        fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

        /// Uniform sample from `[lo, hi]`; panics when `hi < lo`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! int_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                    let span = (hi as i128 - lo as i128) as u128;
                    let off = rng.next_u64() as u128 % span;
                    (lo as i128 + off as i128) as $t
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = rng.next_u64() as u128 % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_uniform {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                    lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                    lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
                }
            }
        )*};
    }

    float_uniform!(f32, f64);

    /// Ranges accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_range(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}
