//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `StdRng` + `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}`, `seq::SliceRandom::shuffle` and
//! `distributions::{Distribution, Uniform}`.
//!
//! The generator is xoshiro256** seeded via SplitMix64. Streams are
//! fully deterministic for a given seed but do **not** match upstream
//! `rand`'s `StdRng` (ChaCha12); nothing in the workspace asserts
//! exact draw values, only statistical properties.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step, used to expand seeds into generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
