//! Sequence helpers.

use crate::Rng;

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
