//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256**: small, fast, and statistically strong — more than
/// enough for synthetic-layout generation and weight init.
///
/// Not the upstream `StdRng` algorithm (ChaCha12); streams differ.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
