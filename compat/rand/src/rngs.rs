//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256**: small, fast, and statistically strong — more than
/// enough for synthetic-layout generation and weight init.
///
/// Not the upstream `StdRng` algorithm (ChaCha12); streams differ.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw 256-bit generator state.
    ///
    /// Together with [`StdRng::from_state`] this lets training
    /// checkpoints capture and restore the exact position in the
    /// random stream (not part of upstream `rand`'s API; the upstream
    /// equivalent is serializing the rng with serde).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator at an exact stream position previously
    /// captured with [`StdRng::state`].
    ///
    /// The all-zero state is a fixed point of xoshiro256** and is
    /// mapped to `seed_from_u64(0)` instead.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
