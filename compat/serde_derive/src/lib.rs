//! Offline stand-in for `serde_derive`.
//!
//! This workspace vendors a minimal serde facade (see the sibling
//! `serde` shim) whose `Serialize`/`Deserialize` traits are marker
//! traits with blanket impls, so the derive macros here expand to
//! nothing at all. They exist only so `#[derive(Serialize,
//! Deserialize)]` keeps compiling without the crates.io dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
