//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benches run a calibration/warm-up phase, then `sample_size` timed
//! samples, and print per-iteration mean/min plus derived throughput.
//! There are no statistical comparisons against saved baselines — this
//! is a thin, dependency-free timing harness with a criterion-shaped
//! API so the bench sources stay upstream-compatible.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing-harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up / calibrating before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &id.to_string(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            None,
            &mut f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput unit attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput unit reported for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.parent.sample_size,
            self.parent.warm_up_time,
            self.parent.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark that closes over an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Per-sample timing handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: grow the iteration count until one batch is long
    // enough to time reliably, spending at least the warm-up budget.
    let mut iters: u64 = 1;
    let mut per_iter = Duration::from_nanos(1);
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
        }
        if warm_start.elapsed() >= warm_up && b.elapsed >= Duration::from_micros(50) {
            break;
        }
        if warm_start.elapsed() >= warm_up.max(Duration::from_secs(3)) {
            break;
        }
        iters = iters.saturating_mul(if b.elapsed < Duration::from_millis(1) {
            4
        } else {
            2
        });
        iters = iters.min(1 << 28);
    }

    let per_sample = measurement / u32::try_from(sample_size).unwrap_or(u32::MAX).max(1);
    let per_iter_ns = per_iter.as_nanos().max(1);
    let sample_iters =
        u64::try_from((per_sample.as_nanos() / per_iter_ns).max(1)).unwrap_or(u64::MAX);

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut timed_iters: u64 = 0;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed / u32::try_from(sample_iters).unwrap_or(u32::MAX).max(1);
        total += b.elapsed;
        timed_iters += sample_iters;
        best = best.min(mean);
    }
    let mean = if timed_iters > 0 {
        Duration::from_nanos(
            u64::try_from(total.as_nanos() / u128::from(timed_iters)).unwrap_or(u64::MAX),
        )
    } else {
        Duration::ZERO
    };

    let mut line = format!(
        "bench: {label:<50} mean {:>12.3?}  min {:>12.3?}  ({sample_iters} iters x {sample_size} samples)",
        mean, best
    );
    if let Some(tp) = throughput {
        let mean_s = mean.as_secs_f64();
        if mean_s > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>12.1} elem/s", n as f64 / mean_s));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:>12.1} MiB/s",
                        n as f64 / mean_s / (1024.0 * 1024.0)
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// Expands to a function running each target with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Expands to `main`, running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
