//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no network access and no
//! cargo registry cache, so external crates cannot be fetched. Model
//! and dataset persistence uses a hand-rolled binary codec (see
//! `hotspot_core::persist`), which means nothing in the workspace
//! actually drives a serde `Serializer`/`Deserializer`. This shim
//! keeps the trait bounds and `#[derive(...)]` attributes compiling:
//! `Serialize` and `Deserialize` are marker traits blanket-implemented
//! for every type, and the derive macros expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; every type satisfies it.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod de {
    //! Stand-ins for `serde::de`.

    pub use crate::Deserialize;

    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}

pub mod ser {
    //! Stand-ins for `serde::ser`.

    pub use crate::Serialize;
}
