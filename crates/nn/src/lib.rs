//! A from-scratch neural-network framework for hotspot detection.
//!
//! This crate layers a training framework over [`hotspot-tensor`]: a
//! [`Layer`] trait with explicit forward/backward passes, the standard
//! layer zoo (convolution, dense, batch-norm, ReLU, pooling), softmax
//! cross-entropy with *biased* soft labels (the DAC'17/DAC'19
//! biased-learning trick), SGD/Adam/NAdam optimizers, plateau learning-
//! rate decay, and a mini-batch data loader with the paper's
//! horizontal/vertical flip augmentation.
//!
//! The binarized layers of the DAC'19 paper live in [`hotspot-bnn`] and
//! plug into the same [`Layer`] trait.
//!
//! # Example
//!
//! ```
//! use hotspot_nn::{Dense, Layer, Relu, Sequential, SoftmaxCrossEntropy};
//! use hotspot_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::ones(&[3, 4]);
//! let logits = net.forward(&x, true);
//! assert_eq!(logits.shape(), &[3, 2]);
//! let loss = SoftmaxCrossEntropy::new();
//! # let _ = loss;
//! ```
//!
//! [`hotspot-tensor`]: ../hotspot_tensor/index.html
//! [`hotspot-bnn`]: ../hotspot_bnn/index.html

pub mod data;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
pub mod schedule;

pub use data::{Augment, Batcher, ImageDataset};
pub use layer::{Layer, Sequential};
pub use layers::{AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, MaxPool2d, Relu};
pub use loss::{BiasedLabels, SoftmaxCrossEntropy};
pub use metrics::{accuracy, argmax_row};
pub use optim::{Adam, NAdam, Optimizer, Sgd};
pub use param::Param;
pub use schedule::PlateauDecay;
