//! Optimizers: SGD with momentum, Adam, and NAdam.
//!
//! NAdam (Nesterov-accelerated Adam, Dozat 2016) is the optimizer the
//! DAC'19 paper trains with (§3.4.2).

use crate::layer::Layer;
use crate::param::Param;
use hotspot_tensor::Tensor;

/// A gradient-descent optimizer.
///
/// Optimizers visit parameters through
/// [`Layer::for_each_param`], which yields a stable order; stateful
/// optimizers key their per-parameter buffers by that visit index.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated
    /// in the network, then leaves the gradients untouched (call
    /// [`Layer::zero_grads`] before the next backward pass).
    fn step(&mut self, net: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum
    /// (`momentum = 0` gives plain SGD).
    ///
    /// # Panics
    ///
    /// Panics for non-positive learning rates or momentum outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        net.for_each_param(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            for ((v, g), w) in v
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *v = momentum * *v + g;
                *w -= lr * *v;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Shared Adam-family state and hyperparameters.
#[derive(Debug)]
struct AdamState {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamState {
    fn new(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        AdamState {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

/// Adam (Kingma & Ba 2014).
#[derive(Debug)]
pub struct Adam {
    state: AdamState,
}

impl Adam {
    /// Creates Adam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            state: AdamState::new(lr, 0.9, 0.999),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer) {
        let s = &mut self.state;
        s.t += 1;
        let bc1 = 1.0 - s.beta1.powi(s.t);
        let bc2 = 1.0 - s.beta2.powi(s.t);
        let mut idx = 0;
        let (lr, b1, b2, eps) = (s.lr, s.beta1, s.beta2, s.eps);
        let (ms, vs) = (&mut s.m, &mut s.v);
        net.for_each_param(&mut |p: &mut Param| {
            while ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            for (((m, v), g), w) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.state.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.state.lr = lr;
    }
}

/// NAdam: Adam with Nesterov momentum (Dozat 2016) — the paper's
/// optimizer.
///
/// The update replaces Adam's bias-corrected first moment with a
/// Nesterov-style look-ahead blend of the current gradient and the
/// first-moment estimate.
#[derive(Debug)]
pub struct NAdam {
    state: AdamState,
}

impl NAdam {
    /// Creates NAdam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        NAdam {
            state: AdamState::new(lr, 0.9, 0.999),
        }
    }
}

impl Optimizer for NAdam {
    fn step(&mut self, net: &mut dyn Layer) {
        let s = &mut self.state;
        s.t += 1;
        let bc1 = 1.0 - s.beta1.powi(s.t);
        let bc1_next = 1.0 - s.beta1.powi(s.t + 1);
        let bc2 = 1.0 - s.beta2.powi(s.t);
        let mut idx = 0;
        let (lr, b1, b2, eps) = (s.lr, s.beta1, s.beta2, s.eps);
        let (ms, vs) = (&mut s.m, &mut s.v);
        net.for_each_param(&mut |p: &mut Param| {
            while ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            for (((m, v), g), w) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let vhat = *v / bc2;
                // Nesterov look-ahead blend.
                let m_nesterov = b1 * *m / bc1_next + (1.0 - b1) * g / bc1;
                *w -= lr * m_nesterov / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.state.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.state.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::SoftmaxCrossEntropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains a tiny linear classifier on a separable problem and checks
    /// the loss decreases — run for each optimizer.
    fn converges(opt: &mut dyn Optimizer) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Dense::new(2, 2, &mut rng);
        let loss = SoftmaxCrossEntropy::new();
        // Class 0 at (-1, -1), class 1 at (1, 1) with noise-free labels.
        let x = Tensor::from_vec(&[4, 2], vec![-1.0, -1.0, -0.8, -1.2, 1.0, 1.0, 1.2, 0.8]);
        let classes = [0usize, 0, 1, 1];
        let (first, _) = loss.forward(&net.forward(&x, true), &classes);
        let mut last = first;
        for _ in 0..200 {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let (l, g) = loss.forward(&logits, &classes);
            last = l;
            let _ = net.backward(&g);
            opt.step(&mut net);
        }
        (first, last)
    }

    #[test]
    fn sgd_converges() {
        let (first, last) = converges(&mut Sgd::new(0.5, 0.9));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn adam_converges() {
        let (first, last) = converges(&mut Adam::new(0.05));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn nadam_converges() {
        let (first, last) = converges(&mut NAdam::new(0.05));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn nadam_differs_from_adam_after_one_step() {
        // Same seed, same gradient: the Nesterov blend must produce a
        // different first step than plain Adam.
        let make = || {
            let mut rng = StdRng::seed_from_u64(7);
            Dense::new(2, 2, &mut rng)
        };
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -2.0]);
        let loss = SoftmaxCrossEntropy::new();

        let mut a = make();
        let (_, g) = loss.forward(&a.forward(&x, true), &[1]);
        let _ = a.backward(&g);
        Adam::new(0.1).step(&mut a);

        let mut b = make();
        let (_, g) = loss.forward(&b.forward(&x, true), &[1]);
        let _ = b.backward(&g);
        NAdam::new(0.1).step(&mut b);

        let mut wa = Vec::new();
        a.for_each_param(&mut |p| wa.extend_from_slice(p.value.as_slice()));
        let mut wb = Vec::new();
        b.for_each_param(&mut |p| wb.extend_from_slice(p.value.as_slice()));
        assert_ne!(wa, wb);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = NAdam::new(0.15);
        assert_eq!(opt.learning_rate(), 0.15);
        opt.set_learning_rate(0.015);
        assert_eq!(opt.learning_rate(), 0.015);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_lr() {
        Sgd::new(0.0, 0.0);
    }
}
