//! Optimizers: SGD with momentum, Adam, and NAdam.
//!
//! NAdam (Nesterov-accelerated Adam, Dozat 2016) is the optimizer the
//! DAC'19 paper trains with (§3.4.2).

use crate::layer::Layer;
use crate::param::Param;
use hotspot_tensor::{Tensor, WireError, WireReader, WireWriter};

fn put_tensor_vec(w: &mut WireWriter, ts: &[Tensor]) {
    w.put_usize(ts.len());
    for t in ts {
        w.put_tensor(t);
    }
}

fn get_tensor_vec(r: &mut WireReader<'_>) -> Result<Vec<Tensor>, WireError> {
    // A tensor encodes to ≥ 17 bytes (shape len + one dim + data len +
    // one f32); 16 is a safe lower bound for the hostile-length check.
    let n = r.get_count(16)?;
    (0..n).map(|_| r.get_tensor()).collect()
}

/// A gradient-descent optimizer.
///
/// Optimizers visit parameters through
/// [`Layer::for_each_param`], which yields a stable order; stateful
/// optimizers key their per-parameter buffers by that visit index.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated
    /// in the network, then leaves the gradients untouched (call
    /// [`Layer::zero_grads`] before the next backward pass).
    fn step(&mut self, net: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum
    /// (`momentum = 0` gives plain SGD).
    ///
    /// # Panics
    ///
    /// Panics for non-positive learning rates or momentum outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Encodes the full optimizer state (hyperparameters and velocity
    /// buffers) for checkpointing.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.momentum);
        put_tensor_vec(w, &self.velocity);
    }

    /// Decodes state written by [`encode_wire`](Sgd::encode_wire).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lr = r.get_f32()?;
        let momentum = r.get_f32()?;
        let velocity = get_tensor_vec(r)?;
        let lr_ok = lr.is_finite() && lr > 0.0;
        if !lr_ok || !(0.0..1.0).contains(&momentum) {
            return Err(WireError(format!(
                "invalid sgd hyperparameters lr={lr} momentum={momentum}"
            )));
        }
        Ok(Sgd {
            lr,
            momentum,
            velocity,
        })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        net.for_each_param(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            for ((v, g), w) in v
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *v = momentum * *v + g;
                *w -= lr * *v;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Shared Adam-family state and hyperparameters.
#[derive(Debug, Clone)]
struct AdamState {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamState {
    fn new(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        AdamState {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn encode_wire(&self, w: &mut WireWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.beta1);
        w.put_f32(self.beta2);
        w.put_f32(self.eps);
        w.put_u32(self.t as u32);
        put_tensor_vec(w, &self.m);
        put_tensor_vec(w, &self.v);
    }

    fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lr = r.get_f32()?;
        let beta1 = r.get_f32()?;
        let beta2 = r.get_f32()?;
        let eps = r.get_f32()?;
        let t = r.get_u32()? as i32;
        let m = get_tensor_vec(r)?;
        let v = get_tensor_vec(r)?;
        let lr_ok = lr.is_finite() && lr > 0.0;
        if !lr_ok || !(0.0..1.0).contains(&beta1) || !(0.0..1.0).contains(&beta2) || t < 0 {
            return Err(WireError(format!(
                "invalid adam hyperparameters lr={lr} betas=({beta1}, {beta2}) t={t}"
            )));
        }
        if m.len() != v.len() {
            return Err(WireError(format!(
                "adam moment buffer count mismatch: {} vs {}",
                m.len(),
                v.len()
            )));
        }
        Ok(AdamState {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        })
    }
}

/// Adam (Kingma & Ba 2014).
#[derive(Debug, Clone)]
pub struct Adam {
    state: AdamState,
}

impl Adam {
    /// Creates Adam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            state: AdamState::new(lr, 0.9, 0.999),
        }
    }

    /// Encodes the full optimizer state for checkpointing.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        self.state.encode_wire(w);
    }

    /// Decodes state written by [`encode_wire`](Adam::encode_wire).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Adam {
            state: AdamState::decode_wire(r)?,
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer) {
        let s = &mut self.state;
        s.t += 1;
        let bc1 = 1.0 - s.beta1.powi(s.t);
        let bc2 = 1.0 - s.beta2.powi(s.t);
        let mut idx = 0;
        let (lr, b1, b2, eps) = (s.lr, s.beta1, s.beta2, s.eps);
        let (ms, vs) = (&mut s.m, &mut s.v);
        net.for_each_param(&mut |p: &mut Param| {
            while ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            for (((m, v), g), w) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.state.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.state.lr = lr;
    }
}

/// NAdam: Adam with Nesterov momentum (Dozat 2016) — the paper's
/// optimizer.
///
/// The update replaces Adam's bias-corrected first moment with a
/// Nesterov-style look-ahead blend of the current gradient and the
/// first-moment estimate.
#[derive(Debug, Clone)]
pub struct NAdam {
    state: AdamState,
}

impl NAdam {
    /// Creates NAdam with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        NAdam {
            state: AdamState::new(lr, 0.9, 0.999),
        }
    }

    /// Encodes the full optimizer state (hyperparameters, step counter,
    /// and both moment buffers) for checkpointing.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        self.state.encode_wire(w);
    }

    /// Decodes state written by [`encode_wire`](NAdam::encode_wire).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(NAdam {
            state: AdamState::decode_wire(r)?,
        })
    }
}

impl Optimizer for NAdam {
    fn step(&mut self, net: &mut dyn Layer) {
        let s = &mut self.state;
        s.t += 1;
        let bc1 = 1.0 - s.beta1.powi(s.t);
        let bc1_next = 1.0 - s.beta1.powi(s.t + 1);
        let bc2 = 1.0 - s.beta2.powi(s.t);
        let mut idx = 0;
        let (lr, b1, b2, eps) = (s.lr, s.beta1, s.beta2, s.eps);
        let (ms, vs) = (&mut s.m, &mut s.v);
        net.for_each_param(&mut |p: &mut Param| {
            while ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            for (((m, v), g), w) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(p.grad.as_slice())
                .zip(p.value.as_mut_slice())
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let vhat = *v / bc2;
                // Nesterov look-ahead blend.
                let m_nesterov = b1 * *m / bc1_next + (1.0 - b1) * g / bc1;
                *w -= lr * m_nesterov / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.state.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.state.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::SoftmaxCrossEntropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains a tiny linear classifier on a separable problem and checks
    /// the loss decreases — run for each optimizer.
    fn converges(opt: &mut dyn Optimizer) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = Dense::new(2, 2, &mut rng);
        let loss = SoftmaxCrossEntropy::new();
        // Class 0 at (-1, -1), class 1 at (1, 1) with noise-free labels.
        let x = Tensor::from_vec(&[4, 2], vec![-1.0, -1.0, -0.8, -1.2, 1.0, 1.0, 1.2, 0.8]);
        let classes = [0usize, 0, 1, 1];
        let (first, _) = loss.forward(&net.forward(&x, true), &classes);
        let mut last = first;
        for _ in 0..200 {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let (l, g) = loss.forward(&logits, &classes);
            last = l;
            let _ = net.backward(&g);
            opt.step(&mut net);
        }
        (first, last)
    }

    #[test]
    fn sgd_converges() {
        let (first, last) = converges(&mut Sgd::new(0.5, 0.9));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn adam_converges() {
        let (first, last) = converges(&mut Adam::new(0.05));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn nadam_converges() {
        let (first, last) = converges(&mut NAdam::new(0.05));
        assert!(last < first * 0.1, "loss {first} -> {last}");
    }

    #[test]
    fn nadam_differs_from_adam_after_one_step() {
        // Same seed, same gradient: the Nesterov blend must produce a
        // different first step than plain Adam.
        let make = || {
            let mut rng = StdRng::seed_from_u64(7);
            Dense::new(2, 2, &mut rng)
        };
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -2.0]);
        let loss = SoftmaxCrossEntropy::new();

        let mut a = make();
        let (_, g) = loss.forward(&a.forward(&x, true), &[1]);
        let _ = a.backward(&g);
        Adam::new(0.1).step(&mut a);

        let mut b = make();
        let (_, g) = loss.forward(&b.forward(&x, true), &[1]);
        let _ = b.backward(&g);
        NAdam::new(0.1).step(&mut b);

        let mut wa = Vec::new();
        a.for_each_param(&mut |p| wa.extend_from_slice(p.value.as_slice()));
        let mut wb = Vec::new();
        b.for_each_param(&mut |p| wb.extend_from_slice(p.value.as_slice()));
        assert_ne!(wa, wb);
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = NAdam::new(0.15);
        assert_eq!(opt.learning_rate(), 0.15);
        opt.set_learning_rate(0.015);
        assert_eq!(opt.learning_rate(), 0.015);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_bad_lr() {
        Sgd::new(0.0, 0.0);
    }

    /// Steps an optimizer a few times, round-trips it through the wire
    /// codec, and checks restored and original produce identical
    /// updates from identical gradients.
    fn wire_preserves_trajectory<O: Optimizer>(
        mut opt: O,
        encode: impl Fn(&O, &mut hotspot_tensor::WireWriter),
        decode: impl Fn(&mut hotspot_tensor::WireReader<'_>) -> O,
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Dense::new(2, 2, &mut rng);
        let loss = SoftmaxCrossEntropy::new();
        let x = Tensor::from_vec(&[2, 2], vec![1.0, -1.0, -0.5, 2.0]);
        let step = |net: &mut Dense, opt: &mut O| {
            net.zero_grads();
            let logits = net.forward(&x, true);
            let (_, g) = loss.forward(&logits, &[0, 1]);
            let _ = net.backward(&g);
            opt.step(net);
        };
        for _ in 0..3 {
            step(&mut net, &mut opt);
        }
        let mut w = hotspot_tensor::WireWriter::new();
        encode(&opt, &mut w);
        let bytes = w.into_bytes();
        let mut r = hotspot_tensor::WireReader::new(&bytes);
        let mut restored = decode(&mut r);
        assert_eq!(r.remaining(), 0);

        // Continue both from a cloned network: steps must match exactly.
        let mut net2 = Dense::new(2, 2, &mut StdRng::seed_from_u64(9));
        let snapshot: Vec<Vec<f32>> = {
            let mut s = Vec::new();
            net.for_each_param(&mut |p| s.push(p.value.as_slice().to_vec()));
            s
        };
        let mut i = 0;
        net2.for_each_param(&mut |p| {
            p.value.as_mut_slice().copy_from_slice(&snapshot[i]);
            i += 1;
        });
        step(&mut net, &mut opt);
        step(&mut net2, &mut restored);
        let mut wa = Vec::new();
        net.for_each_param(&mut |p| wa.extend_from_slice(p.value.as_slice()));
        let mut wb = Vec::new();
        net2.for_each_param(&mut |p| wb.extend_from_slice(p.value.as_slice()));
        assert_eq!(wa, wb);
    }

    #[test]
    fn nadam_wire_round_trip_is_bit_identical() {
        wire_preserves_trajectory(
            NAdam::new(0.05),
            |o, w| o.encode_wire(w),
            |r| NAdam::decode_wire(r).expect("decode"),
        );
    }

    #[test]
    fn sgd_wire_round_trip_is_bit_identical() {
        wire_preserves_trajectory(
            Sgd::new(0.1, 0.9),
            |o, w| o.encode_wire(w),
            |r| Sgd::decode_wire(r).expect("decode"),
        );
    }

    #[test]
    fn adam_wire_round_trip_is_bit_identical() {
        wire_preserves_trajectory(
            Adam::new(0.05),
            |o, w| o.encode_wire(w),
            |r| Adam::decode_wire(r).expect("decode"),
        );
    }

    #[test]
    fn truncated_optimizer_state_rejected() {
        let opt = NAdam::new(0.05);
        let mut w = hotspot_tensor::WireWriter::new();
        opt.encode_wire(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 3, bytes.len() - 1] {
            let mut r = hotspot_tensor::WireReader::new(&bytes[..cut]);
            assert!(NAdam::decode_wire(&mut r).is_err(), "cut at {cut}");
        }
    }
}
