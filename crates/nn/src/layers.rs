//! The standard layer zoo.

use crate::layer::Layer;
use crate::param::Param;
use hotspot_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, global_avg_pool,
    global_avg_pool_backward, matmul, max_pool2d, max_pool2d_backward, xavier_uniform, Tensor,
};
use rand::Rng;

/// A full-precision 2-D convolution layer (Xavier-initialised).
///
/// Weight shape `[out_channels, in_channels, k, k]`; square kernels and
/// symmetric padding only, which covers every architecture in the paper.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with a square `k × k` kernel.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && k > 0 && stride > 0);
        let mut w = Tensor::zeros(&[out_channels, in_channels, k, k]);
        xavier_uniform(&mut w, rng);
        Conv2d {
            weight: Param::new(w),
            bias: bias.then(|| Param::new(Tensor::zeros(&[out_channels]))),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// The weight parameter (for inspection in tests and benches).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        conv2d(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.stride,
            self.pad,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Conv2d::backward called before forward");
        let grads = conv2d_backward(
            &input,
            &self.weight.value,
            grad_out,
            self.stride,
            self.pad,
            self.bias.is_some(),
        );
        self.weight.grad += &grads.weight;
        if let (Some(b), Some(gb)) = (self.bias.as_mut(), grads.bias) {
            b.grad += &gb;
        }
        grads.input
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = self.bias.as_mut() {
            f(b);
        }
    }

    fn describe(&self) -> String {
        let s = self.weight.value.shape();
        format!("conv{}x{}({}→{})/s{}", s[2], s[3], s[1], s[0], self.stride)
    }
}

/// A fully connected layer: `y = x·Wᵀ + b`.
pub struct Dense {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialised weights and zero
    /// bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let mut w = Tensor::zeros(&[out_features, in_features]);
        xavier_uniform(&mut w, rng);
        Dense {
            weight: Param::new(w),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// The weight parameter (`[out, in]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter (`[out]`).
    pub fn bias(&self) -> &Param {
        &self.bias
    }
}

fn transpose2(t: &Tensor) -> Tensor {
    let (r, c) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; r * c];
    let data = t.as_slice();
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = data[i * c + j];
        }
    }
    Tensor::from_vec(&[c, r], out)
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        assert_eq!(input.ndim(), 2, "Dense expects [batch, features]");
        self.cached_input = Some(input.clone());
        let wt = transpose2(&self.weight.value);
        let mut y = matmul(input, &wt);
        let out = self.bias.value.numel();
        for row in y.as_mut_slice().chunks_mut(out) {
            for (v, b) in row.iter_mut().zip(self.bias.value.as_slice()) {
                *v += b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("Dense::backward called before forward");
        // dW = gᵀ · x, db = Σ g, dx = g · W.
        let gt = transpose2(grad_out);
        self.weight.grad += &matmul(&gt, &input);
        let out = self.bias.value.numel();
        for row in grad_out.as_slice().chunks(out) {
            for (b, &g) in self.bias.grad.as_mut_slice().iter_mut().zip(row) {
                *b += g;
            }
        }
        matmul(grad_out, &self.weight.value)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn describe(&self) -> String {
        let s = self.weight.value.shape();
        format!("dense({}→{})", s[1], s[0])
    }
}

/// Batch normalization over the channel axis of NCHW tensors
/// (Ioffe & Szegedy 2015) — the first stage of every BNN block in the
/// paper's Figure 3.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Backward cache.
    cached: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            eps: 1e-5,
            cached: None,
        }
    }

    /// The learned per-channel scale γ.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// The learned per-channel shift β.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// The numerical-stability epsilon added to the variance.
    pub fn epsilon(&self) -> f32 {
        self.eps
    }

    /// The running (inference-time) mean per channel.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The running (inference-time) variance per channel.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        assert_eq!(input.ndim(), 4, "BatchNorm2d expects NCHW");
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        assert_eq!(c, self.gamma.value.numel(), "channel count mismatch");
        let m = (n * h * w) as f32;
        let plane = h * w;
        let data = input.as_slice();

        #[allow(clippy::needless_range_loop)] // per-channel numeric loops read clearer indexed
        let (mean, var): (Vec<f32>, Vec<f32>) = if training {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ci in 0..c {
                let mut acc = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    acc += data[base..base + plane].iter().sum::<f32>();
                }
                mean[ci] = acc / m;
            }
            for ci in 0..c {
                let mu = mean[ci];
                let mut acc = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    acc += data[base..base + plane]
                        .iter()
                        .map(|&v| (v - mu) * (v - mu))
                        .sum::<f32>();
                }
                var[ci] = acc / m;
            }
            for ci in 0..c {
                self.running_mean[ci] =
                    self.momentum * self.running_mean[ci] + (1.0 - self.momentum) * mean[ci];
                self.running_var[ci] =
                    self.momentum * self.running_var[ci] + (1.0 - self.momentum) * var[ci];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        {
            let xh = xhat.as_mut_slice();
            let o = out.as_mut_slice();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * plane;
                    let (mu, is) = (mean[ci], inv_std[ci]);
                    let (g, b) = (
                        self.gamma.value.as_slice()[ci],
                        self.beta.value.as_slice()[ci],
                    );
                    for i in base..base + plane {
                        let v = (data[i] - mu) * is;
                        xh[i] = v;
                        o[i] = g * v + b;
                    }
                }
            }
        }
        if training {
            self.cached = Some(BnCache {
                xhat,
                inv_std,
                input_shape: input.shape().to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cached
            .take()
            .expect("BatchNorm2d::backward called before a training forward");
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let m = (n * h * w) as f32;
        let g = grad_out.as_slice();
        let xh = cache.xhat.as_slice();

        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    dgamma[ci] += g[i] * xh[i];
                    dbeta[ci] += g[i];
                }
            }
        }
        for ci in 0..c {
            self.gamma.grad.as_mut_slice()[ci] += dgamma[ci];
            self.beta.grad.as_mut_slice()[ci] += dbeta[ci];
        }

        let mut grad_in = Tensor::zeros(shape);
        let gi = grad_in.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let scale = self.gamma.value.as_slice()[ci] * cache.inv_std[ci];
                let mg = dbeta[ci] / m;
                let mgx = dgamma[ci] / m;
                for i in base..base + plane {
                    gi[i] = scale * (g[i] - mg - xh[i] * mgx);
                }
            }
        }
        grad_in
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }

    fn describe(&self) -> String {
        format!("bn({})", self.gamma.value.numel())
    }
}

/// Rectified linear unit.
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Relu::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let mask: Vec<bool> = input.as_slice().iter().map(|&v| v > 0.0).collect();
        let out = input.map(|v| v.max(0.0));
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("Relu::backward before forward");
        let mut g = grad_out.clone();
        for (v, keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "relu".into()
    }
}

/// Square-window max pooling.
pub struct MaxPool2d {
    window: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax)
}

impl MaxPool2d {
    /// Creates a max-pool layer with a `window × window` kernel and
    /// equal stride.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        MaxPool2d {
            window,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let (out, argmax) = max_pool2d(input, self.window);
        self.cache = Some((input.shape().to_vec(), argmax));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, argmax) = self
            .cache
            .take()
            .expect("MaxPool2d::backward before forward");
        max_pool2d_backward(&shape, grad_out, &argmax)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("maxpool{}", self.window)
    }
}

/// Square-window average pooling.
pub struct AvgPool2d {
    window: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with a `window × window` kernel and
    /// equal stride.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        AvgPool2d {
            window,
            input_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.input_shape = Some(input.shape().to_vec());
        avg_pool2d(input, self.window)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("AvgPool2d::backward before forward");
        avg_pool2d_backward(&shape, grad_out, self.window)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        format!("avgpool{}", self.window)
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_shape: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        GlobalAvgPool::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.input_shape = Some(input.shape().to_vec());
        global_avg_pool(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("GlobalAvgPool::backward before forward");
        global_avg_pool_backward(&shape, grad_out)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "gap".into()
    }
}

/// Flattens `[n, ...]` to `[n, features]`.
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Flatten::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        self.input_shape = Some(input.shape().to_vec());
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.clone().reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("Flatten::backward before forward");
        grad_out.clone().reshape(&shape)
    }

    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn describe(&self) -> String {
        "flatten".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 65536.0 - 0.5
                })
                .collect(),
        )
    }

    #[test]
    fn conv_layer_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, true, &mut rng);
        let x = pseudo(&[2, 2, 6, 6], 5);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
        let gx = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
        assert!(conv.weight().grad.l1_norm() > 0.0);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
        assert_eq!(conv.describe(), "conv3x3(2→4)/s1");
    }

    #[test]
    fn dense_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dense::new(2, 2, &mut rng);
        // Overwrite weights for a deterministic check.
        d.weight.value = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        d.bias.value = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let y = d.forward(&x, true);
        // y0 = 1*1 + 2*(-1) + 0.5 = -0.5 ; y1 = 3*1 + 4*(-1) - 0.5 = -1.5
        assert_eq!(y.as_slice(), &[-0.5, -1.5]);
        let gx = d.backward(&Tensor::from_vec(&[1, 2], vec![1.0, 1.0]));
        // dx = g·W = [1+3, 2+4]
        assert_eq!(gx.as_slice(), &[4.0, 6.0]);
        assert_eq!(d.bias.grad.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn dense_gradient_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = pseudo(&[4, 3], 9);
        let y = d.forward(&x, true);
        let _ = d.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for idx in 0..6 {
            let analytic = d.weight.grad.as_slice()[idx];
            let mut dp = d.weight.value.clone();
            dp.as_mut_slice()[idx] += eps;
            let mut dm = d.weight.value.clone();
            dm.as_mut_slice()[idx] -= eps;
            let orig = std::mem::replace(&mut d.weight.value, dp);
            let fp = d.forward(&x, true).sum();
            d.weight.value = dm;
            let fm = d.forward(&x, true).sum();
            d.weight.value = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight[{idx}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn batchnorm_normalizes_in_training() {
        let mut bn = BatchNorm2d::new(2);
        let x = pseudo(&[4, 2, 3, 3], 17);
        let y = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1 (gamma=1, beta=0 initially).
        for ci in 0..2 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                for hi in 0..3 {
                    for wi in 0..3 {
                        vals.push(y.at(&[ni, ci, hi, wi]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 4.0);
        // Train repeatedly so running stats converge toward (4, 0).
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 4.0).abs() < 0.1);
        let y = bn.forward(&x, false);
        // With mean≈4 and var≈0 the eval output should be ≈0.
        assert!(y.l1_norm() < 1.0, "eval output {y}");
    }

    #[test]
    fn batchnorm_backward_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        let x = pseudo(&[2, 2, 3, 3], 23);
        // Random-ish gamma/beta to avoid the trivial case.
        bn.gamma.value = Tensor::from_vec(&[2], vec![1.3, 0.7]);
        bn.beta.value = Tensor::from_vec(&[2], vec![0.2, -0.1]);
        // Loss = weighted sum with pseudo weights.
        let wts = pseudo(&[2, 2, 3, 3], 29);
        let y = bn.forward(&x, true);
        let _ = y;
        let gx = bn.backward(&wts);
        let eps = 1e-2;
        for &idx in &[0usize, 5, 11, 17, 23, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp: f32 = bn
                .forward(&xp, true)
                .as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let fm: f32 = bn
                .forward(&xm, true)
                .as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = gx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "x[{idx}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 2.0, 0.0, 3.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = r.backward(&Tensor::ones(&[1, 4]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = pseudo(&[2, 3, 4, 4], 31);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn pooling_layers_pair_with_backward() {
        let x = pseudo(&[1, 2, 4, 4], 37);
        let mut mp = MaxPool2d::new(2);
        let y = mp.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(mp.backward(&Tensor::ones(y.shape())).shape(), x.shape());

        let mut ap = AvgPool2d::new(2);
        let y = ap.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(ap.backward(&Tensor::ones(y.shape())).shape(), x.shape());

        let mut gp = GlobalAvgPool::new();
        let y = gp.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(gp.backward(&Tensor::ones(y.shape())).shape(), x.shape());
    }
}
