//! Softmax cross-entropy with (optionally biased) soft labels.

use hotspot_tensor::Tensor;

/// The biased-label scheme of DAC'17 §biased learning, adopted by the
/// DAC'19 paper (§3.4.3): hotspots keep the hard label `[0, 1]` while
/// non-hotspots are softened to `[1−ε, ε]`, trading false alarms for
/// detection accuracy during fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasedLabels {
    /// The bias term ε in `[0, 0.5)`; `0` reproduces hard labels.
    pub epsilon: f32,
}

impl BiasedLabels {
    /// Creates a biased-label scheme.
    ///
    /// # Panics
    ///
    /// Panics when `epsilon` is outside `[0, 0.5)`.
    pub fn new(epsilon: f32) -> Self {
        assert!(
            (0.0..0.5).contains(&epsilon),
            "epsilon must be in [0, 0.5), got {epsilon}"
        );
        BiasedLabels { epsilon }
    }

    /// The soft target distribution for a class label
    /// (`0` = non-hotspot, `1` = hotspot).
    pub fn target(&self, class: usize) -> [f32; 2] {
        match class {
            0 => [1.0 - self.epsilon, self.epsilon],
            1 => [0.0, 1.0],
            c => panic!("binary classification: class {c} out of range"),
        }
    }
}

impl Default for BiasedLabels {
    /// Hard labels (ε = 0).
    fn default() -> Self {
        BiasedLabels { epsilon: 0.0 }
    }
}

/// Softmax cross-entropy loss over two classes with soft targets.
///
/// # Example
///
/// ```
/// use hotspot_nn::SoftmaxCrossEntropy;
/// use hotspot_tensor::Tensor;
///
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(&[1, 2], vec![0.0, 10.0]);
/// let (value, grad) = loss.forward(&logits, &[1]);
/// assert!(value < 0.01); // confidently correct
/// assert_eq!(grad.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxCrossEntropy {
    labels: BiasedLabels,
}

impl SoftmaxCrossEntropy {
    /// Hard-label cross entropy.
    pub fn new() -> Self {
        SoftmaxCrossEntropy {
            labels: BiasedLabels::default(),
        }
    }

    /// Cross entropy against biased soft labels.
    pub fn with_bias(labels: BiasedLabels) -> Self {
        SoftmaxCrossEntropy { labels }
    }

    /// Computes the mean loss over the batch and the gradient with
    /// respect to the logits.
    ///
    /// `logits` is `[n, 2]`; `classes` holds the integer label of each
    /// row (`0` = non-hotspot, `1` = hotspot).
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree or a class is out of range.
    pub fn forward(&self, logits: &Tensor, classes: &[usize]) -> (f32, Tensor) {
        assert_eq!(logits.ndim(), 2, "logits must be [n, 2]");
        assert_eq!(
            logits.shape()[1],
            2,
            "binary classification expects 2 logits"
        );
        let n = logits.shape()[0];
        assert_eq!(classes.len(), n, "one class per row");

        let mut grad = Tensor::zeros(logits.shape());
        let mut total = 0.0f64;
        let inv_n = 1.0 / n as f32;
        #[allow(clippy::needless_range_loop)] // i indexes logits, grad and classes in lockstep
        for i in 0..n {
            let row = &logits.as_slice()[i * 2..(i + 1) * 2];
            let target = self.labels.target(classes[i]);
            // Stable softmax.
            let m = row[0].max(row[1]);
            let e0 = (row[0] - m).exp();
            let e1 = (row[1] - m).exp();
            let z = e0 + e1;
            let p = [e0 / z, e1 / z];
            let log_p = [(row[0] - m) - z.ln(), (row[1] - m) - z.ln()];
            total += -(target[0] as f64 * log_p[0] as f64 + target[1] as f64 * log_p[1] as f64);
            grad.as_mut_slice()[i * 2] = (p[0] - target[0]) * inv_n;
            grad.as_mut_slice()[i * 2 + 1] = (p[1] - target[1]) * inv_n;
        }
        ((total / n as f64) as f32, grad)
    }

    /// Softmax probabilities for each row of `logits` (`[n, 2]` → per-row
    /// `[p_nonhotspot, p_hotspot]`).
    pub fn probabilities(logits: &Tensor) -> Vec<[f32; 2]> {
        assert_eq!(logits.shape()[1], 2);
        logits
            .as_slice()
            .chunks(2)
            .map(|row| {
                let m = row[0].max(row[1]);
                let e0 = (row[0] - m).exp();
                let e1 = (row[1] - m).exp();
                let z = e0 + e1;
                [e0 / z, e1 / z]
            })
            .collect()
    }
}

impl Default for SoftmaxCrossEntropy {
    fn default() -> Self {
        SoftmaxCrossEntropy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_label_targets() {
        let b = BiasedLabels::new(0.2);
        assert_eq!(b.target(0), [0.8, 0.2]);
        assert_eq!(b.target(1), [0.0, 1.0]);
        let hard = BiasedLabels::default();
        assert_eq!(hard.target(0), [1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in")]
    fn epsilon_validated() {
        BiasedLabels::new(0.6);
    }

    #[test]
    fn loss_is_low_when_confidently_right() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[2, 2], vec![8.0, -8.0, -8.0, 8.0]);
        let (v, _) = loss.forward(&logits, &[0, 1]);
        assert!(v < 1e-3, "loss {v}");
    }

    #[test]
    fn loss_is_high_when_confidently_wrong() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[1, 2], vec![8.0, -8.0]);
        let (v, _) = loss.forward(&logits, &[1]);
        assert!(v > 10.0, "loss {v}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss = SoftmaxCrossEntropy::with_bias(BiasedLabels::new(0.2));
        let logits = Tensor::from_vec(&[2, 2], vec![0.3, -0.7, 1.2, 0.4]);
        let classes = [0usize, 1];
        let (_, grad) = loss.forward(&logits, &classes);
        let eps = 1e-3;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (fp, _) = loss.forward(&lp, &classes);
            let (fm, _) = loss.forward(&lm, &classes);
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "logit[{idx}]: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let logits = Tensor::from_vec(&[3, 2], vec![0.0, 0.0, 5.0, -5.0, 100.0, 90.0]);
        for p in SoftmaxCrossEntropy::probabilities(&logits) {
            assert!((p[0] + p[1] - 1.0).abs() < 1e-6);
            assert!(p[0] >= 0.0 && p[1] >= 0.0);
        }
    }

    #[test]
    fn bias_pulls_gradient_toward_hotspot() {
        // With epsilon > 0 a non-hotspot's gradient pushes some mass
        // toward the hotspot logit compared to hard labels.
        let logits = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (_, g_hard) = SoftmaxCrossEntropy::new().forward(&logits, &[0]);
        let (_, g_bias) =
            SoftmaxCrossEntropy::with_bias(BiasedLabels::new(0.2)).forward(&logits, &[0]);
        // Gradient on the hotspot logit is less positive under bias.
        assert!(g_bias.as_slice()[1] < g_hard.as_slice()[1]);
    }
}
