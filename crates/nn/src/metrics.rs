//! Basic classification metrics.
//!
//! The domain-specific hotspot metrics (accuracy Eq. 1, false alarms
//! Eq. 2, ODST Eq. 3) live in `hotspot-core`; this module provides the
//! generic pieces the training loop needs.

use hotspot_tensor::Tensor;

/// Index of the largest logit in row `i` of a `[n, k]` tensor.
///
/// # Panics
///
/// Panics when `logits` is not 2-D or `i` is out of range.
pub fn argmax_row(logits: &Tensor, i: usize) -> usize {
    assert_eq!(logits.ndim(), 2, "expected [n, k] logits");
    let k = logits.shape()[1];
    let row = &logits.as_slice()[i * k..(i + 1) * k];
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(j, _)| j)
        .expect("logit rows are non-empty")
}

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics when lengths disagree or `labels` is empty.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert!(
        !labels.is_empty(),
        "cannot compute accuracy of zero examples"
    );
    assert_eq!(logits.shape()[0], labels.len(), "one label per row");
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, &l)| argmax_row(logits, *i) == l)
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.5, 3.0, -1.0, 2.0]);
        assert_eq!(argmax_row(&t, 0), 1);
        assert_eq!(argmax_row(&t, 1), 0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let t = Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 1., 0., 0., 1.]);
        assert_eq!(accuracy(&t, &[0, 1, 0, 1]), 1.0);
        assert_eq!(accuracy(&t, &[1, 0, 1, 0]), 0.0);
        assert_eq!(accuracy(&t, &[0, 0, 0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_labels_panics() {
        accuracy(&Tensor::zeros(&[1, 2]), &[]);
    }
}
