//! The layer abstraction and sequential container.

use crate::param::Param;
use hotspot_tensor::Tensor;

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`forward`](Layer::forward)
/// and consume that cache in [`backward`](Layer::backward), which
/// accumulates parameter gradients internally and returns the gradient
/// with respect to the layer input.
///
/// The contract is strictly call-paired: each `backward` must follow a
/// `forward` with the same batch.
pub trait Layer: Send {
    /// Computes the layer output.  `training` switches batch-norm
    /// statistics and any stochastic behaviour.
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Propagates `grad_out` (gradient w.r.t. the forward output) back
    /// through the layer, accumulating parameter gradients and returning
    /// the gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// [`forward`](Layer::forward).
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every non-trainable state buffer in a stable order —
    /// buffers that evolve during training but receive no gradient,
    /// such as batch-norm running statistics.
    ///
    /// Checkpointing walks this alongside
    /// [`for_each_param`](Layer::for_each_param); a network restored
    /// from both visitations reproduces the original bit for bit.
    /// Stateless layers keep the default no-op.
    fn for_each_state(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// A short human-readable description, e.g. `"conv3x3(16→32)"`.
    fn describe(&self) -> String;

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.for_each_param(&mut |p| n += p.numel());
        n
    }

    /// Clears all accumulated gradients.
    fn zero_grads(&mut self) {
        self.for_each_param(&mut |p| p.zero_grad());
    }
}

/// A container running layers in order.
///
/// # Example
///
/// ```
/// use hotspot_nn::{Layer, Relu, Sequential};
/// use hotspot_tensor::Tensor;
///
/// let mut net = Sequential::new(vec![Box::new(Relu::new()), Box::new(Relu::new())]);
/// let y = net.forward(&Tensor::from_vec(&[1, 2], vec![-1.0, 2.0]), false);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential network from layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// The contained layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for layer in &mut self.layers {
            layer.for_each_state(f);
        }
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("Sequential[{}]", inner.join(" → "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_forward_backward() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        assert_eq!(net.len(), 3);
        let x = Tensor::ones(&[2, 3]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2]);
        let gx = net.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(gx.shape(), &[2, 3]);
        // Params: two dense layers with weight+bias.
        let mut count = 0;
        net.for_each_param(&mut |_| count += 1);
        assert_eq!(count, 4);
        assert_eq!(net.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 2, &mut rng))]);
        let x = Tensor::ones(&[1, 2]);
        let _ = net.forward(&x, true);
        let _ = net.backward(&Tensor::ones(&[1, 2]));
        let mut total = 0.0;
        net.for_each_param(&mut |p| total += p.grad.l1_norm());
        assert!(total > 0.0);
        net.zero_grads();
        let mut total = 0.0;
        net.for_each_param(&mut |p| total += p.grad.l1_norm());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn describe_mentions_layers() {
        let net = Sequential::new(vec![Box::new(Relu::new())]);
        assert!(net.describe().contains("relu"));
    }
}
