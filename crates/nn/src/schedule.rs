//! Learning-rate schedules.

/// Exponential decay on validation-loss plateau — the schedule used by
/// the paper (§3.4.2, following Szegedy et al.): each time the
/// validation loss fails to improve for `patience` consecutive epochs,
/// the learning rate is multiplied by `factor`.
///
/// # Example
///
/// ```
/// use hotspot_nn::PlateauDecay;
///
/// let mut sched = PlateauDecay::new(0.15, 0.5, 2);
/// assert_eq!(sched.observe(1.0), 0.15);  // first observation
/// assert_eq!(sched.observe(0.9), 0.15);  // improved
/// assert_eq!(sched.observe(0.95), 0.15); // 1 bad epoch
/// assert_eq!(sched.observe(0.92), 0.075); // 2 bad epochs → decay
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlateauDecay {
    lr: f32,
    factor: f32,
    patience: usize,
    best: Option<f32>,
    bad_epochs: usize,
    min_lr: f32,
}

impl PlateauDecay {
    /// Creates a plateau-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics when `initial_lr` is not positive, `factor` is outside
    /// `(0, 1)`, or `patience` is zero.
    pub fn new(initial_lr: f32, factor: f32, patience: usize) -> Self {
        assert!(initial_lr > 0.0, "initial learning rate must be positive");
        assert!(
            factor > 0.0 && factor < 1.0,
            "decay factor must be in (0, 1)"
        );
        assert!(patience > 0, "patience must be positive");
        PlateauDecay {
            lr: initial_lr,
            factor,
            patience,
            best: None,
            bad_epochs: 0,
            min_lr: 1e-6,
        }
    }

    /// The current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Records an epoch's validation loss and returns the (possibly
    /// decayed) learning rate to use next.
    pub fn observe(&mut self, val_loss: f32) -> f32 {
        match self.best {
            None => {
                self.best = Some(val_loss);
            }
            Some(best) if val_loss < best - 1e-6 => {
                self.best = Some(val_loss);
                self.bad_epochs = 0;
            }
            Some(_) => {
                self.bad_epochs += 1;
                if self.bad_epochs >= self.patience {
                    self.lr = (self.lr * self.factor).max(self.min_lr);
                    self.bad_epochs = 0;
                }
            }
        }
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_only_on_plateau() {
        let mut s = PlateauDecay::new(1.0, 0.1, 1);
        assert_eq!(s.observe(5.0), 1.0);
        assert_eq!(s.observe(4.0), 1.0);
        assert_eq!(s.observe(3.0), 1.0);
        // Plateau: worse than best.
        assert!((s.observe(3.5) - 0.1).abs() < 1e-7);
        // Improvement over the best resets.
        assert!((s.observe(2.0) - 0.1).abs() < 1e-7);
        assert!((s.observe(2.5) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn respects_patience() {
        let mut s = PlateauDecay::new(1.0, 0.5, 3);
        s.observe(1.0);
        assert_eq!(s.observe(1.1), 1.0);
        assert_eq!(s.observe(1.1), 1.0);
        assert_eq!(s.observe(1.1), 0.5);
    }

    #[test]
    fn floors_at_min_lr() {
        let mut s = PlateauDecay::new(1e-5, 0.1, 1);
        s.observe(1.0);
        s.observe(2.0);
        assert!(s.learning_rate() >= 1e-6);
        s.observe(2.0);
        assert!(s.learning_rate() >= 1e-6);
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        PlateauDecay::new(0.1, 0.5, 0);
    }
}
