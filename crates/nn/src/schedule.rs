//! Learning-rate schedules.

use hotspot_tensor::{WireError, WireReader, WireWriter};

/// Exponential decay on validation-loss plateau — the schedule used by
/// the paper (§3.4.2, following Szegedy et al.): each time the
/// validation loss fails to improve for `patience` consecutive epochs,
/// the learning rate is multiplied by `factor`.
///
/// # Example
///
/// ```
/// use hotspot_nn::PlateauDecay;
///
/// let mut sched = PlateauDecay::new(0.15, 0.5, 2);
/// assert_eq!(sched.observe(1.0), 0.15);  // first observation
/// assert_eq!(sched.observe(0.9), 0.15);  // improved
/// assert_eq!(sched.observe(0.95), 0.15); // 1 bad epoch
/// assert_eq!(sched.observe(0.92), 0.075); // 2 bad epochs → decay
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlateauDecay {
    lr: f32,
    factor: f32,
    patience: usize,
    best: Option<f32>,
    bad_epochs: usize,
    min_lr: f32,
}

impl PlateauDecay {
    /// Creates a plateau-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics when `initial_lr` is not positive, `factor` is outside
    /// `(0, 1)`, or `patience` is zero.
    pub fn new(initial_lr: f32, factor: f32, patience: usize) -> Self {
        assert!(initial_lr > 0.0, "initial learning rate must be positive");
        assert!(
            factor > 0.0 && factor < 1.0,
            "decay factor must be in (0, 1)"
        );
        assert!(patience > 0, "patience must be positive");
        PlateauDecay {
            lr: initial_lr,
            factor,
            patience,
            best: None,
            bad_epochs: 0,
            min_lr: 1e-6,
        }
    }

    /// The current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Multiplies the current learning rate by `factor` (floored at the
    /// schedule's minimum), outside the normal plateau logic.
    ///
    /// Used by the training watchdog when rolling back a diverged
    /// epoch: later plateau decays then compound on the reduced rate.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not in `(0, 1]`.
    pub fn scale_lr(&mut self, factor: f32) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        self.lr = (self.lr * factor).max(self.min_lr);
    }

    /// Encodes the full schedule state for checkpointing.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        w.put_f32(self.lr);
        w.put_f32(self.factor);
        w.put_usize(self.patience);
        match self.best {
            Some(b) => {
                w.put_bool(true);
                w.put_f32(b);
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.bad_epochs);
        w.put_f32(self.min_lr);
    }

    /// Decodes state written by [`encode_wire`](PlateauDecay::encode_wire).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let lr = r.get_f32()?;
        let factor = r.get_f32()?;
        let patience = r.get_usize()?;
        let best = if r.get_bool()? {
            Some(r.get_f32()?)
        } else {
            None
        };
        let bad_epochs = r.get_usize()?;
        let min_lr = r.get_f32()?;
        let lr_ok = lr.is_finite() && lr > 0.0;
        let factor_ok = factor > 0.0 && factor < 1.0;
        if !lr_ok || !factor_ok || patience == 0 {
            return Err(WireError(format!(
                "invalid schedule state lr={lr} factor={factor} patience={patience}"
            )));
        }
        Ok(PlateauDecay {
            lr,
            factor,
            patience,
            best,
            bad_epochs,
            min_lr,
        })
    }

    /// Records an epoch's validation loss and returns the (possibly
    /// decayed) learning rate to use next.
    pub fn observe(&mut self, val_loss: f32) -> f32 {
        match self.best {
            None => {
                self.best = Some(val_loss);
            }
            Some(best) if val_loss < best - 1e-6 => {
                self.best = Some(val_loss);
                self.bad_epochs = 0;
            }
            Some(_) => {
                self.bad_epochs += 1;
                if self.bad_epochs >= self.patience {
                    self.lr = (self.lr * self.factor).max(self.min_lr);
                    self.bad_epochs = 0;
                }
            }
        }
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_only_on_plateau() {
        let mut s = PlateauDecay::new(1.0, 0.1, 1);
        assert_eq!(s.observe(5.0), 1.0);
        assert_eq!(s.observe(4.0), 1.0);
        assert_eq!(s.observe(3.0), 1.0);
        // Plateau: worse than best.
        assert!((s.observe(3.5) - 0.1).abs() < 1e-7);
        // Improvement over the best resets.
        assert!((s.observe(2.0) - 0.1).abs() < 1e-7);
        assert!((s.observe(2.5) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn respects_patience() {
        let mut s = PlateauDecay::new(1.0, 0.5, 3);
        s.observe(1.0);
        assert_eq!(s.observe(1.1), 1.0);
        assert_eq!(s.observe(1.1), 1.0);
        assert_eq!(s.observe(1.1), 0.5);
    }

    #[test]
    fn floors_at_min_lr() {
        let mut s = PlateauDecay::new(1e-5, 0.1, 1);
        s.observe(1.0);
        s.observe(2.0);
        assert!(s.learning_rate() >= 1e-6);
        s.observe(2.0);
        assert!(s.learning_rate() >= 1e-6);
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_rejected() {
        PlateauDecay::new(0.1, 0.5, 0);
    }

    #[test]
    fn scale_lr_compounds_with_plateau_decay() {
        let mut s = PlateauDecay::new(0.8, 0.5, 1);
        s.observe(1.0);
        s.scale_lr(0.5);
        assert_eq!(s.learning_rate(), 0.4);
        // Next plateau decays from the scaled rate.
        assert_eq!(s.observe(2.0), 0.2);
        // Floored at min_lr.
        s.scale_lr(1e-12);
        assert!(s.learning_rate() >= 1e-6);
    }

    #[test]
    fn wire_round_trip_preserves_state() {
        let mut s = PlateauDecay::new(0.15, 0.5, 2);
        s.observe(1.0);
        s.observe(1.2); // one bad epoch pending
        let mut w = hotspot_tensor::WireWriter::new();
        s.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = hotspot_tensor::WireReader::new(&bytes);
        let mut restored = PlateauDecay::decode_wire(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored, s);
        // Both hit the patience limit on the same next observation.
        assert_eq!(s.observe(1.3), restored.observe(1.3));
        assert_eq!(restored.learning_rate(), 0.075);
    }

    #[test]
    fn truncated_schedule_state_rejected() {
        let s = PlateauDecay::new(0.15, 0.5, 2);
        let mut w = hotspot_tensor::WireWriter::new();
        s.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = hotspot_tensor::WireReader::new(&bytes[..bytes.len() - 2]);
        assert!(PlateauDecay::decode_wire(&mut r).is_err());
    }
}
