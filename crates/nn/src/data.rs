//! Datasets and mini-batch loading with flip augmentation.

use hotspot_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Random augmentation applied during training.
///
/// The paper (§3.4.1) uses only horizontal and vertical flips, because
/// hotspots can sit anywhere in the clip so cropping is inappropriate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Randomly flip left-right with probability ½.
    pub hflip: bool,
    /// Randomly flip top-bottom with probability ½.
    pub vflip: bool,
}

impl Augment {
    /// The paper's augmentation: both flips enabled.
    pub fn flips() -> Self {
        Augment {
            hflip: true,
            vflip: true,
        }
    }

    /// No augmentation (evaluation).
    pub fn none() -> Self {
        Augment {
            hflip: false,
            vflip: false,
        }
    }
}

/// An in-memory image classification dataset: CHW image tensors with
/// integer class labels (`0` = non-hotspot, `1` = hotspot).
#[derive(Debug, Clone, Default)]
pub struct ImageDataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
}

impl ImageDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        ImageDataset::default()
    }

    /// Adds one example.
    ///
    /// # Panics
    ///
    /// Panics when the image is not 3-D (CHW) or its shape differs from
    /// previously added images.
    pub fn push(&mut self, image: Tensor, label: usize) {
        assert_eq!(image.ndim(), 3, "images must be CHW");
        if let Some(first) = self.images.first() {
            assert_eq!(first.shape(), image.shape(), "inconsistent image shapes");
        }
        self.images.push(image);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// The images.
    pub fn images(&self) -> &[Tensor] {
        &self.images
    }

    /// The labels, parallel to [`images`](ImageDataset::images).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Counts per class: `(non_hotspots, hotspots)`.
    pub fn class_counts(&self) -> (usize, usize) {
        let hs = self.labels.iter().filter(|&&l| l == 1).count();
        (self.labels.len() - hs, hs)
    }

    /// The CHW shape of the images, or `None` when empty.
    pub fn image_shape(&self) -> Option<&[usize]> {
        self.images.first().map(|t| t.shape())
    }

    /// Splits off the last `fraction` of examples as a validation set.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `(0, 1)`.
    pub fn split_validation(mut self, fraction: f64) -> (ImageDataset, ImageDataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let n_val = ((self.len() as f64) * fraction).round() as usize;
        let n_val = n_val.clamp(1, self.len().saturating_sub(1).max(1));
        let split = self.len() - n_val;
        let val_images = self.images.split_off(split);
        let val_labels = self.labels.split_off(split);
        (
            self,
            ImageDataset {
                images: val_images,
                labels: val_labels,
            },
        )
    }
}

/// Flips a CHW tensor along the width axis.
pub fn flip_chw_horizontal(t: &Tensor) -> Tensor {
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    let mut out = Tensor::zeros(t.shape());
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(&[ci, y, w - 1 - x]) = t.at(&[ci, y, x]);
            }
        }
    }
    out
}

/// Flips a CHW tensor along the height axis.
pub fn flip_chw_vertical(t: &Tensor) -> Tensor {
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    let mut out = Tensor::zeros(t.shape());
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(&[ci, h - 1 - y, x]) = t.at(&[ci, y, x]);
            }
        }
    }
    out
}

/// Draws shuffled mini-batches from an [`ImageDataset`].
///
/// # Example
///
/// ```
/// use hotspot_nn::{Augment, Batcher, ImageDataset};
/// use hotspot_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut ds = ImageDataset::new();
/// for i in 0..10 {
///     ds.push(Tensor::full(&[1, 2, 2], i as f32), i % 2);
/// }
/// let mut rng = StdRng::seed_from_u64(0);
/// let batches: Vec<_> = Batcher::new(&ds, 4, Augment::none()).batches(&mut rng);
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// assert_eq!(batches[0].0.shape(), &[4, 1, 2, 2]);
/// ```
#[derive(Debug)]
pub struct Batcher<'a> {
    dataset: &'a ImageDataset,
    batch_size: usize,
    augment: Augment,
}

impl<'a> Batcher<'a> {
    /// Creates a batcher.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero.
    pub fn new(dataset: &'a ImageDataset, batch_size: usize, augment: Augment) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            dataset,
            batch_size,
            augment,
        }
    }

    /// Produces one epoch of shuffled, augmented mini-batches.
    pub fn batches<R: Rng>(&self, rng: &mut R) -> Vec<(Tensor, Vec<usize>)> {
        let mut order: Vec<usize> = (0..self.dataset.len()).collect();
        order.shuffle(rng);
        let mut out = Vec::new();
        for chunk in order.chunks(self.batch_size) {
            let mut items = Vec::with_capacity(chunk.len());
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                let mut img = self.dataset.images()[i].clone();
                if self.augment.hflip && rng.gen_bool(0.5) {
                    img = flip_chw_horizontal(&img);
                }
                if self.augment.vflip && rng.gen_bool(0.5) {
                    img = flip_chw_vertical(&img);
                }
                items.push(img);
                labels.push(self.dataset.labels()[i]);
            }
            out.push((Tensor::stack(&items), labels));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset(n: usize) -> ImageDataset {
        let mut ds = ImageDataset::new();
        for i in 0..n {
            ds.push(Tensor::full(&[1, 2, 2], i as f32), i % 2);
        }
        ds
    }

    #[test]
    fn push_and_counts() {
        let ds = tiny_dataset(7);
        assert_eq!(ds.len(), 7);
        assert_eq!(ds.class_counts(), (4, 3));
        assert_eq!(ds.image_shape(), Some(&[1usize, 2, 2][..]));
    }

    #[test]
    #[should_panic(expected = "inconsistent image shapes")]
    fn shape_mismatch_rejected() {
        let mut ds = tiny_dataset(1);
        ds.push(Tensor::zeros(&[1, 3, 3]), 0);
    }

    #[test]
    fn split_validation_partitions() {
        let ds = tiny_dataset(10);
        let (train, val) = ds.split_validation(0.2);
        assert_eq!(train.len(), 8);
        assert_eq!(val.len(), 2);
    }

    #[test]
    fn batches_cover_every_example_once() {
        let ds = tiny_dataset(10);
        let mut rng = StdRng::seed_from_u64(1);
        let batches = Batcher::new(&ds, 3, Augment::none()).batches(&mut rng);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|(t, _)| {
                (0..t.shape()[0])
                    .map(|i| t.batch_item(i)[0])
                    .collect::<Vec<_>>()
            })
            .collect();
        seen.sort_by(f32::total_cmp);
        assert_eq!(seen, (0..10).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn augmentation_preserves_pixel_multiset() {
        let mut ds = ImageDataset::new();
        let img = Tensor::from_vec(&[1, 2, 2], vec![1., 2., 3., 4.]);
        ds.push(img, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let batches = Batcher::new(&ds, 1, Augment::flips()).batches(&mut rng);
            let mut pixels = batches[0].0.as_slice().to_vec();
            pixels.sort_by(f32::total_cmp);
            assert_eq!(pixels, vec![1., 2., 3., 4.]);
        }
    }

    #[test]
    fn flip_helpers() {
        let t = Tensor::from_vec(&[1, 2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(flip_chw_horizontal(&t).as_slice(), &[2., 1., 4., 3.]);
        assert_eq!(flip_chw_vertical(&t).as_slice(), &[3., 4., 1., 2.]);
        assert_eq!(
            flip_chw_horizontal(&flip_chw_horizontal(&t)).as_slice(),
            t.as_slice()
        );
    }
}
