//! Trainable parameters.

use hotspot_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value tensor and its accumulated gradient.
///
/// Layers own their parameters; optimizers visit them through
/// [`Layer::for_each_param`](crate::Layer::for_each_param) in a stable
/// order, which lets stateful optimizers (Adam, NAdam) key their moment
/// buffers by visit index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// The current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad = Tensor::full(&[4], 2.5);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        // Value untouched.
        assert_eq!(p.value.sum(), 4.0);
    }
}
