//! Property-based tests for the NN framework.

use hotspot_nn::{
    accuracy, Augment, BatchNorm2d, Batcher, BiasedLabels, Dense, ImageDataset, Layer, Relu,
    Sequential, SoftmaxCrossEntropy,
};
use hotspot_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let numel: usize = shape.iter().product();
    prop::collection::vec(-2.0f32..2.0, numel).prop_map(move |v| Tensor::from_vec(shape, v))
}

proptest! {
    /// The loss gradient matches finite differences through a small
    /// MLP, for random inputs and weights — the global check that
    /// layer-local backward passes compose correctly.
    #[test]
    fn mlp_gradient_matches_finite_difference(x in arb_tensor(&[3, 4]), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, &mut rng)),
        ]);
        let loss = SoftmaxCrossEntropy::new();
        let classes = [0usize, 1, 0];

        // Analytic input gradient.
        let logits = net.forward(&x, true);
        let (_, grad_logits) = loss.forward(&logits, &classes);
        let grad_x = net.backward(&grad_logits);

        let eps = 1e-2;
        for idx in [0usize, 3, 7, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let (fp, _) = loss.forward(&net.forward(&xp, true), &classes);
            let (fm, _) = loss.forward(&net.forward(&xm, true), &classes);
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grad_x.as_slice()[idx];
            prop_assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                "x[{}]: numeric {} vs analytic {}", idx, numeric, analytic
            );
        }
    }

    /// Batch norm in training mode always outputs (near) zero mean and
    /// unit variance per channel, whatever the input distribution.
    #[test]
    fn batchnorm_output_is_normalized(x in arb_tensor(&[4, 2, 3, 3]), shift in -5.0f32..5.0, scale in 0.5f32..3.0) {
        let shifted = x.map(|v| v * scale + shift);
        let mut bn = BatchNorm2d::new(2);
        let y = bn.forward(&shifted, true);
        for c in 0..2 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for h in 0..3 {
                    for w in 0..3 {
                        vals.push(y.at(&[n, c, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {}", mean);
            // Degenerate (constant) channels normalize to ~0 variance.
            prop_assert!(var < 1.1, "var {}", var);
        }
    }

    /// Softmax cross-entropy is minimized by the target distribution:
    /// loss at the target is below loss at any perturbed distribution.
    #[test]
    fn cross_entropy_minimized_at_target(eps in 0.0f32..0.4, delta in -3.0f32..3.0) {
        let labels = BiasedLabels::new(eps);
        let target = labels.target(0);
        // Logits realizing the target distribution exactly.
        let to_logit = |p: f32| (p.max(1e-6)).ln();
        let ideal = Tensor::from_vec(&[1, 2], vec![to_logit(target[0]), to_logit(target[1])]);
        let perturbed = Tensor::from_vec(
            &[1, 2],
            vec![to_logit(target[0]) + delta, to_logit(target[1])],
        );
        let loss = SoftmaxCrossEntropy::with_bias(labels);
        let (l_ideal, _) = loss.forward(&ideal, &[0]);
        let (l_pert, _) = loss.forward(&perturbed, &[0]);
        prop_assert!(l_ideal <= l_pert + 1e-5, "{} vs {}", l_ideal, l_pert);
    }

    /// One epoch of batches covers each example exactly once, for any
    /// batch size.
    #[test]
    fn batcher_partitions_epoch(n in 1usize..40, batch in 1usize..10) {
        let mut ds = ImageDataset::new();
        for i in 0..n {
            ds.push(Tensor::full(&[1, 2, 2], i as f32), i % 2);
        }
        let mut rng = StdRng::seed_from_u64(n as u64);
        let batches = Batcher::new(&ds, batch, Augment::none()).batches(&mut rng);
        let total: usize = batches.iter().map(|(t, _)| t.shape()[0]).sum();
        prop_assert_eq!(total, n);
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|(t, _)| (0..t.shape()[0]).map(|i| t.batch_item(i)[0]).collect::<Vec<_>>())
            .collect();
        seen.sort_by(f32::total_cmp);
        let expect: Vec<f32> = (0..n).map(|v| v as f32).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Accuracy of logits against their own argmax labels is 1.
    #[test]
    fn accuracy_of_self_labels_is_one(logits in arb_tensor(&[8, 2])) {
        let labels: Vec<usize> = (0..8)
            .map(|i| {
                let row = &logits.as_slice()[i * 2..(i + 1) * 2];
                if row[1] > row[0] { 1 } else { 0 }
            })
            .collect();
        prop_assert_eq!(accuracy(&logits, &labels), 1.0);
    }
}
