//! Random clip generation across pattern families.

use crate::patterns::{generate_family, PatternFamily};
use hotspot_geometry::{Layout, Rect};
use rand::Rng;

/// One generated layout clip.
#[derive(Debug, Clone, PartialEq)]
pub struct Clip {
    /// The clip geometry, origined at `(0, 0)`.
    pub layout: Layout,
    /// The family it was drawn from.
    pub family: PatternFamily,
}

/// Draws random clips from a weighted mixture of pattern families.
///
/// # Example
///
/// ```
/// use hotspot_layout_gen::ClipGenerator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let gen = ClipGenerator::new(1280);
/// let clip = gen.generate(&mut StdRng::seed_from_u64(1));
/// assert!(gen.window().contains_rect(&clip.layout.bbox().expect("non-empty")));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClipGenerator {
    extent: i64,
    weights: Vec<(PatternFamily, u32)>,
}

impl ClipGenerator {
    /// Creates a generator for `extent × extent` nm clips with the
    /// default family mix.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is not positive.
    pub fn new(extent: i64) -> Self {
        assert!(extent > 0, "clip extent must be positive");
        ClipGenerator {
            extent,
            // Line-like families dominate routed metal layers.
            weights: vec![
                (PatternFamily::LineSpace, 20),
                (PatternFamily::TipToTip, 16),
                (PatternFamily::Jog, 11),
                (PatternFamily::Bend, 13),
                (PatternFamily::ViaArray, 8),
                (PatternFamily::RandomRoute, 12),
                (PatternFamily::Comb, 8),
                (PatternFamily::Serpentine, 7),
                (PatternFamily::ViaChain, 5),
            ],
        }
    }

    /// The clip window (origin to extent).
    pub fn window(&self) -> Rect {
        Rect::new(0, 0, self.extent, self.extent)
    }

    /// Clip side length in nanometres.
    pub fn extent(&self) -> i64 {
        self.extent
    }

    /// Overrides the family mix.
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or all weights are zero.
    pub fn with_weights(mut self, weights: Vec<(PatternFamily, u32)>) -> Self {
        let total: u32 = weights.iter().map(|&(_, w)| w).sum();
        assert!(total > 0, "family weights must not all be zero");
        self.weights = weights;
        self
    }

    /// Generates one random clip.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Clip {
        let total: u32 = self.weights.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        let mut family = self.weights[0].0;
        for &(f, w) in &self.weights {
            if pick < w {
                family = f;
                break;
            }
            pick -= w;
        }
        Clip {
            layout: generate_family(family, rng, self.extent),
            family,
        }
    }
}

impl Default for ClipGenerator {
    /// A generator for the paper-scale 1280 nm clip window (128 × 128
    /// pixels at the default 10 nm raster).
    fn default() -> Self {
        ClipGenerator::new(1280)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn generates_all_families_over_many_draws() {
        let gen = ClipGenerator::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen: HashMap<PatternFamily, usize> = HashMap::new();
        for _ in 0..300 {
            let clip = gen.generate(&mut rng);
            *seen.entry(clip.family).or_default() += 1;
        }
        for family in PatternFamily::ALL {
            assert!(seen.contains_key(&family), "{family:?} never drawn");
        }
    }

    #[test]
    fn respects_custom_weights() {
        let gen = ClipGenerator::new(1280).with_weights(vec![(PatternFamily::ViaArray, 1)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(gen.generate(&mut rng).family, PatternFamily::ViaArray);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = ClipGenerator::default();
        let a = gen.generate(&mut StdRng::seed_from_u64(9));
        let b = gen.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn zero_weights_rejected() {
        let _ = ClipGenerator::new(100).with_weights(vec![(PatternFamily::Jog, 0)]);
    }
}
