//! Synthetic layout-clip and dataset generation.
//!
//! The ICCAD-2012 contest benchmark used by the paper is not
//! redistributable, so this crate generates a stand-in with the same
//! structure: square metal-layer clips drawn from the pattern families
//! that dominate real routed layouts (line/space arrays, tip-to-tip
//! line ends, jogs, L/T/U bends, via fields, and randomly routed
//! Manhattan wiring), labelled *hotspot*/*non-hotspot* by the
//! [`hotspot-litho-sim`] oracle, and assembled into train/test splits
//! with exactly the class counts of the paper's Table 2.
//!
//! Generation is deterministic: candidate `i` of a build is derived
//! from `seed + i`, so the same spec always yields the same dataset
//! regardless of thread count.
//!
//! # Example
//!
//! ```
//! use hotspot_layout_gen::{ClipGenerator, PatternFamily};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let gen = ClipGenerator::default();
//! let mut rng = StdRng::seed_from_u64(7);
//! let clip = gen.generate(&mut rng);
//! assert!(!clip.layout.is_empty());
//! # let _: PatternFamily = clip.family;
//! ```
//!
//! [`hotspot-litho-sim`]: ../hotspot_litho_sim/index.html

pub mod chipgen;
pub mod clipgen;
pub mod dataset;
pub mod gds;
pub mod patterns;

pub use chipgen::{generate_chip, Chip, ChipBuilder, ChipSpec, HotspotSite};
pub use clipgen::{Clip, ClipGenerator};
pub use dataset::{DatasetSpec, LabeledClip, SplitDataset};
pub use gds::{decode_layout, encode_layout, ParseLayoutError};
pub use patterns::PatternFamily;
