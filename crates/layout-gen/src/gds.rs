//! A minimal GDS-like text serialization for layouts.
//!
//! Real GDSII is a binary stream format; for interoperability inside
//! this workspace (saving generated clips, shipping reproduction
//! inputs) a line-oriented text form is sufficient and diff-friendly:
//!
//! ```text
//! LAYOUT v1
//! RECT 0 0 100 20
//! RECT 0 80 100 100
//! END
//! ```

use hotspot_geometry::{Layout, Rect};
use std::error::Error;
use std::fmt;

/// Error from [`decode_layout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLayoutError {
    /// The `LAYOUT v1` header is missing.
    MissingHeader,
    /// The `END` terminator is missing.
    MissingEnd,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLayoutError::MissingHeader => write!(f, "missing LAYOUT v1 header"),
            ParseLayoutError::MissingEnd => write!(f, "missing END terminator"),
            ParseLayoutError::BadLine { line, content } => {
                write!(f, "cannot parse line {line}: {content:?}")
            }
        }
    }
}

impl Error for ParseLayoutError {}

/// Encodes a layout to the text format.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{Layout, Rect};
/// use hotspot_layout_gen::{decode_layout, encode_layout};
///
/// let layout = Layout::from_rects([Rect::new(0, 0, 10, 5)]);
/// let text = encode_layout(&layout);
/// assert_eq!(decode_layout(&text)?, layout);
/// # Ok::<(), hotspot_layout_gen::ParseLayoutError>(())
/// ```
pub fn encode_layout(layout: &Layout) -> String {
    let mut out = String::from("LAYOUT v1\n");
    for r in layout.iter() {
        out.push_str(&format!(
            "RECT {} {} {} {}\n",
            r.lo().x,
            r.lo().y,
            r.hi().x,
            r.hi().y
        ));
    }
    out.push_str("END\n");
    out
}

/// Decodes a layout from the text format.
///
/// # Errors
///
/// Returns [`ParseLayoutError`] for missing header/terminator or
/// malformed `RECT` lines.
pub fn decode_layout(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == "LAYOUT v1" => {}
        _ => return Err(ParseLayoutError::MissingHeader),
    }
    let mut layout = Layout::new();
    let mut ended = false;
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "END" {
            ended = true;
            break;
        }
        let mut parts = line.split_whitespace();
        let bad = || ParseLayoutError::BadLine {
            line: i + 1,
            content: line.to_string(),
        };
        if parts.next() != Some("RECT") {
            return Err(bad());
        }
        let mut coord = || -> Result<i64, ParseLayoutError> {
            parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)
        };
        let (x0, y0, x1, y1) = (coord()?, coord()?, coord()?, coord()?);
        layout.push(Rect::new(x0, y0, x1, y1));
    }
    if !ended {
        return Err(ParseLayoutError::MissingEnd);
    }
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let layout = Layout::from_rects([Rect::new(0, 0, 100, 20), Rect::new(-50, 30, 10, 90)]);
        let text = encode_layout(&layout);
        assert_eq!(decode_layout(&text).expect("round trip"), layout);
    }

    #[test]
    fn empty_layout_round_trips() {
        let layout = Layout::new();
        assert_eq!(
            decode_layout(&encode_layout(&layout)).expect("round trip"),
            layout
        );
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            decode_layout("RECT 0 0 1 1\nEND\n"),
            Err(ParseLayoutError::MissingHeader)
        );
    }

    #[test]
    fn rejects_missing_end() {
        assert_eq!(
            decode_layout("LAYOUT v1\nRECT 0 0 1 1\n"),
            Err(ParseLayoutError::MissingEnd)
        );
    }

    #[test]
    fn rejects_garbage_line() {
        let err = decode_layout("LAYOUT v1\nRECT 0 zero 1 1\nEND\n").unwrap_err();
        assert!(matches!(err, ParseLayoutError::BadLine { line: 2, .. }));
        let err2 = decode_layout("LAYOUT v1\nCIRCLE 1 2 3\nEND\n").unwrap_err();
        assert!(matches!(err2, ParseLayoutError::BadLine { .. }));
    }

    #[test]
    fn tolerates_blank_lines() {
        let layout = decode_layout("LAYOUT v1\n\nRECT 0 0 5 5\n\nEND\n").expect("parse");
        assert_eq!(layout.len(), 1);
    }
}
