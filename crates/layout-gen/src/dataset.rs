//! Dataset assembly with the paper's Table-2 class counts.

use crate::clipgen::ClipGenerator;
use crate::patterns::PatternFamily;
use hotspot_geometry::BitImage;
use hotspot_litho_sim::HotspotOracle;
use hotspot_telemetry::{event, metrics, span};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One labelled clip: its rasterized binary image and the oracle's
/// verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledClip {
    /// The rasterized clip (one pixel per raster step).
    pub image: BitImage,
    /// `true` for a lithography hotspot.
    pub hotspot: bool,
    /// The generating pattern family.
    pub family: PatternFamily,
}

/// A train/test split of labelled clips.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SplitDataset {
    /// Training clips.
    pub train: Vec<LabeledClip>,
    /// Testing clips.
    pub test: Vec<LabeledClip>,
}

impl SplitDataset {
    /// `(hotspots, non_hotspots)` in the training split.
    pub fn train_counts(&self) -> (usize, usize) {
        count(&self.train)
    }

    /// `(hotspots, non_hotspots)` in the testing split.
    pub fn test_counts(&self) -> (usize, usize) {
        count(&self.test)
    }
}

fn count(clips: &[LabeledClip]) -> (usize, usize) {
    let hs = clips.iter().filter(|c| c.hotspot).count();
    (hs, clips.len() - hs)
}

/// Specification of a dataset build: target class counts per split plus
/// generation parameters.
///
/// [`DatasetSpec::iccad2012_like`] reproduces the merged ICCAD-2012
/// statistics of the paper's Table 2; [`DatasetSpec::scaled`] shrinks
/// every count proportionally for laptop-scale runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Hotspots in the training split.
    pub train_hs: usize,
    /// Non-hotspots in the training split.
    pub train_nhs: usize,
    /// Hotspots in the testing split.
    pub test_hs: usize,
    /// Non-hotspots in the testing split.
    pub test_nhs: usize,
    /// Clip side length in nanometres.
    pub extent: i64,
    /// Master seed; candidate `i` derives from `seed + i`.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's Table 2: 1204 / 17096 train HS/NHS and 2524 / 13503
    /// test HS/NHS (all five ICCAD-2012 testcases merged).
    pub fn iccad2012_like() -> Self {
        DatasetSpec {
            train_hs: 1204,
            train_nhs: 17096,
            test_hs: 2524,
            test_nhs: 13503,
            extent: 1280,
            seed: 2012,
        }
    }

    /// Scales all class counts by `factor` (minimum 1 each).
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not in `(0, 1]`.
    pub fn scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let s = |n: usize| (((n as f64) * factor).round() as usize).max(1);
        DatasetSpec {
            train_hs: s(self.train_hs),
            train_nhs: s(self.train_nhs),
            test_hs: s(self.test_hs),
            test_nhs: s(self.test_nhs),
            ..self
        }
    }

    /// Total clips needed across both splits.
    pub fn total(&self) -> usize {
        self.train_hs + self.train_nhs + self.test_hs + self.test_nhs
    }

    /// Builds the dataset by rejection sampling: candidates are
    /// generated (in parallel) from per-index seeds, labelled by the
    /// oracle, and accepted until every quota is filled.  The result is
    /// deterministic for a given spec regardless of thread count.
    ///
    /// # Panics
    ///
    /// Panics when quotas cannot be filled within a very generous
    /// candidate budget (indicating a miscalibrated oracle).
    pub fn build(&self, oracle: &HotspotOracle) -> SplitDataset {
        let generator = ClipGenerator::new(self.extent);
        let window = generator.window();
        let mut dataset = SplitDataset::default();
        let mut need_hs = self.train_hs + self.test_hs;
        let mut need_nhs = self.train_nhs + self.test_nhs;
        let mut hs_pool: Vec<LabeledClip> = Vec::new();
        let mut nhs_pool: Vec<LabeledClip> = Vec::new();

        // Generation telemetry: candidate volume and per-class accept
        // counts make rejection-sampling efficiency observable (a
        // miscalibrated oracle shows up as an exploding rejected count
        // long before the budget assert fires).
        let registry = metrics::global();
        let candidates = registry.counter("dataset_candidates_total");
        let accepted_hs =
            registry.counter_with("dataset_clips_accepted_total", &[("class", "hotspot")]);
        let accepted_nhs =
            registry.counter_with("dataset_clips_accepted_total", &[("class", "non_hotspot")]);
        let rejected = registry.counter("dataset_clips_rejected_total");
        let _span = span!(
            "dataset.build",
            total = self.total(),
            extent = self.extent,
            seed = self.seed
        );

        const BATCH: usize = 256;
        let budget = 200 * self.total().max(64);
        let mut next_index = 0usize;
        while (need_hs > 0 || need_nhs > 0) && next_index < budget {
            let batch: Vec<LabeledClip> = (next_index..next_index + BATCH)
                .into_par_iter()
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
                    let clip = generator.generate(&mut rng);
                    let hotspot = oracle.label(&clip.layout, window);
                    let image = oracle.raster().rasterize(&clip.layout, window);
                    LabeledClip {
                        image,
                        hotspot,
                        family: clip.family,
                    }
                })
                .collect();
            next_index += BATCH;
            candidates.add(BATCH as u64);
            for clip in batch {
                if clip.hotspot && need_hs > 0 {
                    hs_pool.push(clip);
                    accepted_hs.inc();
                    need_hs -= 1;
                } else if !clip.hotspot && need_nhs > 0 {
                    nhs_pool.push(clip);
                    accepted_nhs.inc();
                    need_nhs -= 1;
                } else {
                    rejected.inc();
                }
            }
        }
        event!(
            "dataset.built",
            candidates = next_index,
            hotspots = hs_pool.len(),
            non_hotspots = nhs_pool.len()
        );
        assert!(
            need_hs == 0 && need_nhs == 0,
            "candidate budget exhausted: still need {need_hs} hotspots and {need_nhs} non-hotspots"
        );

        // Deterministic split: first quota goes to train.
        dataset.train.extend(hs_pool.drain(..self.train_hs));
        dataset.test.append(&mut hs_pool);
        dataset.train.extend(nhs_pool.drain(..self.train_nhs));
        dataset.test.append(&mut nhs_pool);
        // Interleave so mini-batches see both classes even without
        // shuffling.
        interleave(&mut dataset.train);
        interleave(&mut dataset.test);
        dataset
    }
}

/// Deterministically reorders clips so hotspots are spread through the
/// list instead of clustered at the front.
fn interleave(clips: &mut Vec<LabeledClip>) {
    let (hs, nhs): (Vec<_>, Vec<_>) = clips.drain(..).partition(|c| c.hotspot);
    if hs.is_empty() || nhs.is_empty() {
        clips.extend(hs);
        clips.extend(nhs);
        return;
    }
    let stride = (nhs.len() / hs.len()).max(1);
    let mut hs_iter = hs.into_iter();
    let mut out = Vec::with_capacity(clips.capacity());
    for (i, clip) in nhs.into_iter().enumerate() {
        if i % stride == 0 {
            if let Some(h) = hs_iter.next() {
                out.push(h);
            }
        }
        out.push(clip);
    }
    out.extend(hs_iter);
    *clips = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_litho_sim::OpticalModel;

    #[test]
    fn table2_spec_matches_paper() {
        let spec = DatasetSpec::iccad2012_like();
        assert_eq!(spec.train_hs, 1204);
        assert_eq!(spec.train_nhs, 17096);
        assert_eq!(spec.test_hs, 2524);
        assert_eq!(spec.test_nhs, 13503);
        assert_eq!(spec.total(), 34327);
    }

    #[test]
    fn scaling_preserves_ratios_roughly() {
        let spec = DatasetSpec::iccad2012_like().scaled(0.01);
        assert_eq!(spec.train_hs, 12);
        assert_eq!(spec.train_nhs, 171);
        assert_eq!(spec.test_hs, 25);
        assert_eq!(spec.test_nhs, 135);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn zero_scale_rejected() {
        DatasetSpec::iccad2012_like().scaled(0.0);
    }

    #[test]
    fn small_build_fills_quotas_exactly() {
        let spec = DatasetSpec {
            train_hs: 6,
            train_nhs: 20,
            test_hs: 4,
            test_nhs: 12,
            extent: 1280,
            seed: 7,
        };
        let oracle = HotspotOracle::new(OpticalModel::default());
        let ds = spec.build(&oracle);
        assert_eq!(ds.train_counts(), (6, 20));
        assert_eq!(ds.test_counts(), (4, 12));
        assert_eq!(ds.train.len(), 26);
        assert_eq!(ds.test.len(), 16);
        // Images are 128x128 at the default 10 nm raster.
        assert_eq!(ds.train[0].image.width(), 128);
    }

    #[test]
    fn build_is_deterministic() {
        let spec = DatasetSpec {
            train_hs: 2,
            train_nhs: 6,
            test_hs: 2,
            test_nhs: 4,
            extent: 1280,
            seed: 99,
        };
        let oracle = HotspotOracle::new(OpticalModel::default());
        let a = spec.build(&oracle);
        let b = spec.build(&oracle);
        assert_eq!(a, b);
    }

    #[test]
    fn interleave_spreads_hotspots() {
        let mk = |hotspot| LabeledClip {
            image: BitImage::new(2, 2),
            hotspot,
            family: PatternFamily::LineSpace,
        };
        let mut clips: Vec<LabeledClip> = (0..4)
            .map(|_| mk(true))
            .chain((0..12).map(|_| mk(false)))
            .collect();
        interleave(&mut clips);
        assert_eq!(clips.len(), 16);
        // No prefix of half the list contains every hotspot.
        let first_half_hs = clips[..8].iter().filter(|c| c.hotspot).count();
        assert!(first_half_hs < 4, "hotspots still clustered");
        assert_eq!(clips.iter().filter(|c| c.hotspot).count(), 4);
    }
}
