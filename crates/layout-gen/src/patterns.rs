//! Parameterized layout pattern families.
//!
//! Parameter ranges straddle the printability limits of the default
//! optical model (features below ≈60 nm width or ≈45 nm spacing fail),
//! so each family produces a natural mixture of hotspots and clean
//! clips whose label depends on fine geometry — the structure a
//! detector must learn.

use hotspot_geometry::{Layout, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The pattern family a generated clip belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternFamily {
    /// Parallel line/space array.
    LineSpace,
    /// Line array with a tip-to-tip gap in one or more tracks.
    TipToTip,
    /// Lines with lateral jogs.
    Jog,
    /// L / T / U bends.
    Bend,
    /// Via (contact) array.
    ViaArray,
    /// Randomly routed Manhattan wiring.
    RandomRoute,
    /// Interdigitated comb fingers (tip-to-line spacings).
    Comb,
    /// A serpentine (snake) wire with many bends.
    Serpentine,
    /// Vias chained by short landing bars.
    ViaChain,
}

impl PatternFamily {
    /// All families, in generation-mix order.
    pub const ALL: [PatternFamily; 9] = [
        PatternFamily::LineSpace,
        PatternFamily::TipToTip,
        PatternFamily::Jog,
        PatternFamily::Bend,
        PatternFamily::ViaArray,
        PatternFamily::RandomRoute,
        PatternFamily::Comb,
        PatternFamily::Serpentine,
        PatternFamily::ViaChain,
    ];
}

fn track_positions(rng: &mut impl Rng, extent: i64, width: i64, spacing: i64) -> Vec<i64> {
    let pitch = width + spacing;
    let offset = rng.gen_range(0..pitch.max(1));
    let mut ys = Vec::new();
    let mut y = offset;
    while y + width <= extent {
        ys.push(y);
        y += pitch;
    }
    ys
}

/// A parallel line/space array.
pub fn line_space(rng: &mut impl Rng, extent: i64) -> Layout {
    let width = rng.gen_range(50..=140);
    let spacing = rng.gen_range(40..=170);
    let horizontal = rng.gen_bool(0.5);
    let margin = rng.gen_range(20..=120);
    let mut layout = Layout::new();
    for y in track_positions(rng, extent, width, spacing) {
        let r = Rect::new(margin, y, extent - margin, y + width);
        layout.push(if horizontal { r } else { r.transpose() });
    }
    layout
}

/// A line array where one to three tracks carry a tip-to-tip gap.
pub fn tip_to_tip(rng: &mut impl Rng, extent: i64) -> Layout {
    let width = rng.gen_range(70..=140);
    let spacing = rng.gen_range(60..=170);
    let gap = rng.gen_range(30..=170);
    let margin = rng.gen_range(20..=100);
    let tracks = track_positions(rng, extent, width, spacing);
    let n_split = rng.gen_range(1..=3usize.min(tracks.len().max(1)));
    let mut split_idx: Vec<usize> = (0..tracks.len()).collect();
    // Deterministic partial shuffle.
    for i in 0..split_idx.len() {
        let j = rng.gen_range(i..split_idx.len());
        split_idx.swap(i, j);
    }
    let split_idx = &split_idx[..n_split.min(split_idx.len())];
    let mut layout = Layout::new();
    for (i, &y) in tracks.iter().enumerate() {
        if split_idx.contains(&i) {
            let cut = rng.gen_range(extent / 4..=3 * extent / 4);
            layout.push(Rect::new(margin, y, cut - gap / 2, y + width));
            layout.push(Rect::new(
                cut + gap - gap / 2,
                y,
                extent - margin,
                y + width,
            ));
        } else {
            layout.push(Rect::new(margin, y, extent - margin, y + width));
        }
    }
    layout
}

/// Lines with a lateral jog in the middle.
pub fn jog(rng: &mut impl Rng, extent: i64) -> Layout {
    let width = rng.gen_range(50..=130);
    let spacing = rng.gen_range(60..=170);
    let jog_len = rng.gen_range(100..=300);
    let margin = rng.gen_range(20..=100);
    let mut layout = Layout::new();
    for y in track_positions(rng, extent, width, spacing) {
        let jog_at = rng.gen_range(extent / 3..=2 * extent / 3);
        let dy = rng.gen_range(-(spacing / 2)..=spacing / 2);
        if y + dy < 0 || y + dy + width > extent {
            layout.push(Rect::new(margin, y, extent - margin, y + width));
            continue;
        }
        // Left segment, vertical connector, right segment at offset.
        layout.push(Rect::new(margin, y, jog_at, y + width));
        let lo = y.min(y + dy);
        let hi = (y + width).max(y + dy + width);
        layout.push(Rect::new(jog_at - width.max(jog_len / 3), lo, jog_at, hi));
        layout.push(Rect::new(jog_at, y + dy, extent - margin, y + dy + width));
    }
    layout
}

/// L, T and U bends.
pub fn bend(rng: &mut impl Rng, extent: i64) -> Layout {
    let width = rng.gen_range(50..=140);
    let spacing = rng.gen_range(50..=180);
    let pitch = 2 * width + spacing + rng.gen_range(100..=300);
    let mut layout = Layout::new();
    let mut base = rng.gen_range(40..=160);
    while base + pitch < extent {
        let arm = rng.gen_range(200..=500).min(extent - base - 40);
        let kind = rng.gen_range(0..3);
        match kind {
            0 => {
                // L: horizontal arm + vertical arm.
                layout.push(Rect::new(base, base, base + arm, base + width));
                layout.push(Rect::new(base, base, base + width, base + arm));
            }
            1 => {
                // T: horizontal bar + vertical stem.
                let bar_y = base + rng.gen_range(0..=spacing);
                layout.push(Rect::new(base, bar_y, base + arm, bar_y + width));
                let stem_x = base + arm / 2 - width / 2;
                layout.push(Rect::new(stem_x, bar_y, stem_x + width, bar_y + arm / 2));
            }
            _ => {
                // U: two verticals + a base.
                layout.push(Rect::new(base, base, base + width, base + arm));
                layout.push(Rect::new(
                    base + width + spacing,
                    base,
                    base + 2 * width + spacing,
                    base + arm,
                ));
                layout.push(Rect::new(
                    base,
                    base,
                    base + 2 * width + spacing,
                    base + width,
                ));
            }
        }
        base += pitch;
    }
    if layout.is_empty() {
        // Extent too small for the sampled pitch: emit a single L.
        layout.push(Rect::new(100, 100, 100 + width, 600));
        layout.push(Rect::new(100, 100, 600, 100 + width));
    }
    layout
}

/// A square via / contact array.
pub fn via_array(rng: &mut impl Rng, extent: i64) -> Layout {
    let size = rng.gen_range(50..=130);
    let pitch = size + rng.gen_range(40..=250);
    let ox = rng.gen_range(0..pitch);
    let oy = rng.gen_range(0..pitch);
    let mut layout = Layout::new();
    let mut y = oy;
    while y + size <= extent {
        let mut x = ox;
        while x + size <= extent {
            layout.push(Rect::new(x, y, x + size, y + size));
            x += pitch;
        }
        y += pitch;
    }
    if layout.is_empty() {
        layout.push(Rect::centered(
            hotspot_geometry::Point::new(extent / 2, extent / 2),
            size,
            size,
        ));
    }
    layout
}

/// Randomly routed Manhattan wiring: horizontal trunks with vertical
/// branches.
pub fn random_route(rng: &mut impl Rng, extent: i64) -> Layout {
    let mut layout = Layout::new();
    let n_trunks = rng.gen_range(3..=6);
    let mut used_y: Vec<(i64, i64)> = Vec::new();
    for _ in 0..n_trunks {
        let width = rng.gen_range(50..=130);
        let y = rng.gen_range(0..extent - width);
        // Keep trunks from stacking exactly.
        if used_y
            .iter()
            .any(|&(a, b)| y < b + 30 && a < y + width + 30)
        {
            continue;
        }
        used_y.push((y, y + width));
        let x0 = rng.gen_range(0..extent / 3);
        let x1 = rng.gen_range(2 * extent / 3..extent);
        layout.push(Rect::new(x0, y, x1, y + width));
        // Branches.
        for _ in 0..rng.gen_range(0..=2) {
            let bw = rng.gen_range(50..=120);
            let bx = rng.gen_range(x0..(x1 - bw).max(x0 + 1));
            let blen = rng.gen_range(100..=400);
            let up = rng.gen_bool(0.5);
            let (by0, by1) = if up {
                (y + width, (y + width + blen).min(extent))
            } else {
                ((y - blen).max(0), y)
            };
            layout.push(Rect::new(bx, by0, bx + bw, by1));
        }
    }
    if layout.is_empty() {
        layout.push(Rect::new(100, 100, extent - 100, 200));
    }
    layout
}

/// Interdigitated comb fingers: two buses with fingers reaching into
/// each other's gaps — the finger tips face the opposing bus at a
/// controlled tip-to-line distance, a hotspot mode distinct from
/// tip-to-tip.
pub fn comb(rng: &mut impl Rng, extent: i64) -> Layout {
    let finger_w = rng.gen_range(60..=130);
    let gap = rng.gen_range(60..=180); // finger-to-finger spacing
    let tip_clearance = rng.gen_range(40..=200); // finger tip to opposing bus
    let bus_w = rng.gen_range(100..=160);
    let margin = rng.gen_range(20..=80);
    let mut layout = Layout::new();
    // Two horizontal buses, top and bottom.
    layout.push(Rect::new(margin, margin, extent - margin, margin + bus_w));
    layout.push(Rect::new(
        margin,
        extent - margin - bus_w,
        extent - margin,
        extent - margin,
    ));
    // Alternating fingers.
    let pitch = finger_w + gap;
    let mut x = margin + rng.gen_range(0..pitch);
    let mut from_bottom = rng.gen_bool(0.5);
    while x + finger_w <= extent - margin {
        if from_bottom {
            layout.push(Rect::new(
                x,
                margin + bus_w,
                x + finger_w,
                extent - margin - bus_w - tip_clearance,
            ));
        } else {
            layout.push(Rect::new(
                x,
                margin + bus_w + tip_clearance,
                x + finger_w,
                extent - margin - bus_w,
            ));
        }
        from_bottom = !from_bottom;
        x += pitch;
    }
    layout
}

/// A serpentine wire snaking across the clip: long parallel runs
/// joined by short turns, exercising bend-adjacent spacings.
pub fn serpentine(rng: &mut impl Rng, extent: i64) -> Layout {
    let width = rng.gen_range(60..=130);
    let spacing = rng.gen_range(50..=170);
    let margin = rng.gen_range(40..=120);
    let pitch = width + spacing;
    let mut layout = Layout::new();
    let mut y = margin;
    let mut leg = 0usize;
    while y + width <= extent - margin {
        layout.push(Rect::new(margin, y, extent - margin, y + width));
        // Vertical joint alternating sides.
        if y + pitch + width <= extent - margin {
            let x = if leg.is_multiple_of(2) {
                extent - margin - width
            } else {
                margin
            };
            layout.push(Rect::new(x, y, x + width, y + pitch + width));
        }
        y += pitch;
        leg += 1;
    }
    if layout.is_empty() {
        layout.push(Rect::new(margin, margin, extent - margin, margin + width));
    }
    layout
}

/// Vias chained by short landing bars: a sequence of square cuts each
/// connected to the next by a narrow bar, exercising enclosure-like
/// geometry.
pub fn via_chain(rng: &mut impl Rng, extent: i64) -> Layout {
    let via = rng.gen_range(60..=120);
    let bar_w = rng.gen_range(50..=100);
    let step = via + rng.gen_range(80..=240);
    let mut layout = Layout::new();
    let mut x = rng.gen_range(40..=120);
    let mut y = rng.gen_range(40..=120);
    let mut horizontal = true;
    while x + via <= extent - 40 && y + via <= extent - 40 {
        layout.push(Rect::new(x, y, x + via, y + via));
        // Landing bar toward the next via.
        let (nx, ny) = if horizontal {
            (x + step, y)
        } else {
            (x, y + step)
        };
        if nx + via <= extent - 40 && ny + via <= extent - 40 {
            if horizontal {
                let mid = y + via / 2 - bar_w / 2;
                layout.push(Rect::new(x + via, mid, nx, mid + bar_w));
            } else {
                let mid = x + via / 2 - bar_w / 2;
                layout.push(Rect::new(mid, y + via, mid + bar_w, ny));
            }
        }
        x = nx.min(extent);
        y = ny.min(extent);
        if rng.gen_bool(0.4) {
            horizontal = !horizontal;
        }
    }
    if layout.is_empty() {
        layout.push(Rect::new(100, 100, 100 + via, 100 + via));
    }
    layout
}

/// Generates one clip of the given family.
pub fn generate_family(family: PatternFamily, rng: &mut impl Rng, extent: i64) -> Layout {
    match family {
        PatternFamily::LineSpace => line_space(rng, extent),
        PatternFamily::TipToTip => tip_to_tip(rng, extent),
        PatternFamily::Jog => jog(rng, extent),
        PatternFamily::Bend => bend(rng, extent),
        PatternFamily::ViaArray => via_array(rng, extent),
        PatternFamily::RandomRoute => random_route(rng, extent),
        PatternFamily::Comb => comb(rng, extent),
        PatternFamily::Serpentine => serpentine(rng, extent),
        PatternFamily::ViaChain => via_chain(rng, extent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect as R;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EXTENT: i64 = 1280;

    fn in_bounds(layout: &Layout) -> bool {
        let window = R::new(0, 0, EXTENT, EXTENT);
        layout.iter().all(|r| window.contains_rect(r))
    }

    #[test]
    fn all_families_generate_nonempty_in_bounds() {
        for family in PatternFamily::ALL {
            for seed in 0..30u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let layout = generate_family(family, &mut rng, EXTENT);
                assert!(!layout.is_empty(), "{family:?} seed {seed} empty");
                assert!(in_bounds(&layout), "{family:?} seed {seed} out of bounds");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for family in PatternFamily::ALL {
            let a = generate_family(family, &mut StdRng::seed_from_u64(5), EXTENT);
            let b = generate_family(family, &mut StdRng::seed_from_u64(5), EXTENT);
            assert_eq!(a, b, "{family:?} not deterministic");
        }
    }

    #[test]
    fn tip_to_tip_has_a_gap() {
        // At least one generated clip must have more rects than tracks
        // (a split track produces two rects).
        let mut found_split = false;
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let layout = tip_to_tip(&mut rng, EXTENT);
            // Count tracks by distinct y-lo values.
            let mut ys: Vec<i64> = layout.iter().map(|r| r.lo().y).collect();
            ys.sort_unstable();
            ys.dedup();
            if layout.len() > ys.len() {
                found_split = true;
                break;
            }
        }
        assert!(found_split, "no tip gap found in 20 seeds");
    }

    #[test]
    fn via_array_is_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        let layout = via_array(&mut rng, EXTENT);
        // All vias are squares of the same size.
        let first = layout.rects()[0];
        for r in layout.iter() {
            assert_eq!(r.width(), r.height());
            assert_eq!(r.width(), first.width());
        }
    }

    #[test]
    fn line_space_lines_are_parallel() {
        let mut rng = StdRng::seed_from_u64(11);
        let layout = line_space(&mut rng, EXTENT);
        let horizontal = layout.rects()[0].width() >= layout.rects()[0].height();
        for r in layout.iter() {
            assert_eq!(r.width() >= r.height(), horizontal);
        }
    }

    #[test]
    fn densities_are_reasonable() {
        // Clips should be neither empty nor nearly solid.
        let window = R::new(0, 0, EXTENT, EXTENT);
        for family in PatternFamily::ALL {
            let mut total = 0.0;
            let n = 20;
            for seed in 100..100 + n as u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let layout = generate_family(family, &mut rng, EXTENT);
                total += layout.density(window);
            }
            let mean = total / n as f64;
            assert!(
                (0.01..0.8).contains(&mean),
                "{family:?} mean density {mean}"
            );
        }
    }
}
