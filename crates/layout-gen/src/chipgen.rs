//! Full-chip assembly: stitching clip patterns into a large layout
//! with embedded, labelled hotspot sites — the ground-truth substrate
//! for the streaming scanner (DESIGN.md §5j).
//!
//! A chip is a `cells_x × cells_y` grid of clip-sized cells.  Each
//! cell holds one generated clip, rasterized at the shared resolution
//! and blitted into a single chip-wide [`BitImage`]; the clip
//! geometry is translated into chip coordinates and merged into one
//! [`Layout`].  Cells designated as *hotspot sites* are
//! rejection-sampled until the caller's labelling function calls them
//! hotspots, every other cell until it calls them clean, so the chip
//! carries exact site-level ground truth for recall measurements.
//!
//! Because cells are blitted whole, the window crop at a cell origin
//! is bit-identical to the cell's own clip raster — the scanner's
//! per-window view of a site *is* the clip the oracle labelled.

use crate::clipgen::ClipGenerator;
use hotspot_geometry::{BitImage, Layout, Point, Raster, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One labelled hotspot location on a finished [`Chip`].
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotSite {
    /// Grid cell holding the hotspot clip.
    pub cell: (usize, usize),
    /// Cell origin in chip pixels.
    pub origin_px: (usize, usize),
    /// Cell centre in chip pixels.
    pub center_px: (usize, usize),
    /// The rasterized clip placed at this site.
    pub image: BitImage,
}

/// A stitched full-chip layout with scanning ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    /// The whole chip rasterized at the build resolution.
    pub image: BitImage,
    /// The stitched geometry in chip nanometre coordinates.
    pub layout: Layout,
    /// Embedded hotspot sites, in placement order.
    pub sites: Vec<HotspotSite>,
    /// Cell side in pixels.
    pub cell_px: usize,
    /// Chip width in pixels.
    pub width_px: usize,
    /// Chip height in pixels.
    pub height_px: usize,
    /// Raster pitch in nanometres per pixel.
    pub resolution: i64,
}

impl Chip {
    /// Chip area in mm² (`resolution` nm pixels).
    pub fn area_mm2(&self) -> f64 {
        let nm_w = self.width_px as f64 * self.resolution as f64;
        let nm_h = self.height_px as f64 * self.resolution as f64;
        nm_w * nm_h / 1e12
    }
}

/// Cell-by-cell chip assembler.  Use directly when the caller controls
/// clip selection (e.g. detector-filtered golden fixtures), or through
/// [`generate_chip`] for oracle-labelled random chips.
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    cells_x: usize,
    cells_y: usize,
    cell_px: usize,
    resolution: i64,
    image: BitImage,
    layout: Layout,
    sites: Vec<HotspotSite>,
}

impl ChipBuilder {
    /// An empty `cells_x × cells_y` grid of `cell_px`-pixel cells at
    /// `resolution` nm per pixel.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero or the resolution is not
    /// positive.
    pub fn new(cells_x: usize, cells_y: usize, cell_px: usize, resolution: i64) -> Self {
        assert!(cells_x > 0 && cells_y > 0, "chip grid must be non-empty");
        assert!(cell_px > 0, "cell side must be positive");
        assert!(resolution > 0, "resolution must be positive");
        ChipBuilder {
            cells_x,
            cells_y,
            cell_px,
            resolution,
            image: BitImage::new(cells_x * cell_px, cells_y * cell_px),
            layout: Layout::new(),
            sites: Vec::new(),
        }
    }

    /// Grid shape `(cells_x, cells_y)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.cells_x, self.cells_y)
    }

    /// Pixel origin of a grid cell.
    pub fn cell_origin_px(&self, cell: (usize, usize)) -> (usize, usize) {
        (cell.0 * self.cell_px, cell.1 * self.cell_px)
    }

    /// Blits a rasterized clip into `cell` and merges its geometry
    /// (translated to chip coordinates) into the chip layout.
    ///
    /// # Panics
    ///
    /// Panics when the cell is out of range or the image is not
    /// `cell_px × cell_px`.
    pub fn place(&mut self, cell: (usize, usize), image: &BitImage, layout: &Layout) {
        assert!(
            cell.0 < self.cells_x && cell.1 < self.cells_y,
            "cell {cell:?} outside {}x{} grid",
            self.cells_x,
            self.cells_y
        );
        assert_eq!(
            (image.width(), image.height()),
            (self.cell_px, self.cell_px),
            "clip raster must match the cell size"
        );
        let (ox, oy) = self.cell_origin_px(cell);
        for y in 0..self.cell_px {
            for x in 0..self.cell_px {
                if image.get(x, y) {
                    self.image.set(ox + x, oy + y, true);
                }
            }
        }
        let nm = Point::new((ox as i64) * self.resolution, (oy as i64) * self.resolution);
        self.layout.merge(&layout.translate(nm));
    }

    /// [`place`](ChipBuilder::place), additionally recording the cell
    /// as a ground-truth hotspot site.
    pub fn place_site(&mut self, cell: (usize, usize), image: &BitImage, layout: &Layout) {
        self.place(cell, image, layout);
        let origin_px = self.cell_origin_px(cell);
        self.sites.push(HotspotSite {
            cell,
            origin_px,
            center_px: (
                origin_px.0 + self.cell_px / 2,
                origin_px.1 + self.cell_px / 2,
            ),
            image: image.clone(),
        });
    }

    /// Finalizes the chip.
    pub fn finish(self) -> Chip {
        Chip {
            width_px: self.cells_x * self.cell_px,
            height_px: self.cells_y * self.cell_px,
            image: self.image,
            layout: self.layout,
            sites: self.sites,
            cell_px: self.cell_px,
            resolution: self.resolution,
        }
    }
}

/// What [`generate_chip`] should build.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSpec {
    /// Grid width in cells.
    pub cells_x: usize,
    /// Grid height in cells.
    pub cells_y: usize,
    /// Ground-truth hotspot cells to embed (placed on a half-density
    /// checkerboard so sites never touch, even diagonally).
    pub hotspot_sites: usize,
    /// Raster pitch, nm per pixel.
    pub resolution: i64,
    /// Generation seed (chips are deterministic in the spec).
    pub seed: u64,
    /// Rejection-sampling budget per cell.
    pub max_attempts: usize,
}

impl ChipSpec {
    /// A `cells × cells` chip with `hotspot_sites` sites at the
    /// default 10 nm raster.
    pub fn new(cells: usize, hotspot_sites: usize, seed: u64) -> Self {
        ChipSpec {
            cells_x: cells,
            cells_y: cells,
            hotspot_sites,
            resolution: 10,
            seed,
            max_attempts: 400,
        }
    }
}

/// Builds a chip from `spec`: hotspot sites are rejection-sampled
/// until `label` accepts them, background cells until it rejects them.
/// `label` sees each candidate clip's geometry and window — pass the
/// litho oracle's `label` for physics ground truth, or any custom
/// criterion (e.g. oracle ∧ detector for golden fixtures).
///
/// # Errors
///
/// Fails when the grid cannot hold the requested non-adjacent sites,
/// the clip extent does not divide by the resolution, or the sampling
/// budget runs out (a degenerate labelling function).
pub fn generate_chip(
    spec: &ChipSpec,
    clips: &ClipGenerator,
    mut label: impl FnMut(&Layout, Rect) -> bool,
) -> Result<Chip, String> {
    if spec.cells_x == 0 || spec.cells_y == 0 {
        return Err("chip grid must be non-empty".into());
    }
    if spec.resolution <= 0 || clips.extent() % spec.resolution != 0 {
        return Err(format!(
            "clip extent {} nm does not divide by resolution {} nm",
            clips.extent(),
            spec.resolution
        ));
    }
    let cell_px = (clips.extent() / spec.resolution) as usize;

    // Half-density checkerboard: even (x, y) cells, so no two sites
    // are adjacent (not even diagonally) and regions stay separable.
    let mut site_cells: Vec<(usize, usize)> = Vec::with_capacity(spec.hotspot_sites);
    'outer: for cy in (0..spec.cells_y).step_by(2) {
        for cx in (0..spec.cells_x).step_by(2) {
            if site_cells.len() == spec.hotspot_sites {
                break 'outer;
            }
            site_cells.push((cx, cy));
        }
    }
    if site_cells.len() < spec.hotspot_sites {
        return Err(format!(
            "{}x{} grid holds at most {} non-adjacent sites, {} requested",
            spec.cells_x,
            spec.cells_y,
            spec.cells_x.div_ceil(2) * spec.cells_y.div_ceil(2),
            spec.hotspot_sites
        ));
    }

    let raster = Raster::new(spec.resolution);
    let window = clips.window();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut builder = ChipBuilder::new(spec.cells_x, spec.cells_y, cell_px, spec.resolution);
    for cy in 0..spec.cells_y {
        for cx in 0..spec.cells_x {
            let want_hotspot = site_cells.contains(&(cx, cy));
            let mut placed = false;
            for _ in 0..spec.max_attempts.max(1) {
                let clip = clips.generate(&mut rng);
                if label(&clip.layout, window) != want_hotspot {
                    continue;
                }
                let img = raster.rasterize(&clip.layout, window);
                if want_hotspot {
                    builder.place_site((cx, cy), &img, &clip.layout);
                } else {
                    builder.place((cx, cy), &img, &clip.layout);
                }
                placed = true;
                break;
            }
            if !placed {
                return Err(format!(
                    "no {} clip found for cell ({cx}, {cy}) within {} attempts",
                    if want_hotspot { "hotspot" } else { "clean" },
                    spec.max_attempts
                ));
            }
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker_clip(cell_px: usize, res: i64, phase: bool) -> (BitImage, Layout) {
        let mut img = BitImage::new(cell_px, cell_px);
        let mut layout = Layout::new();
        for y in 0..cell_px {
            for x in 0..cell_px {
                if ((x + y) % 2 == 0) == phase {
                    img.set(x, y, true);
                    let (nx, ny) = (x as i64 * res, y as i64 * res);
                    layout.push(Rect::new(nx, ny, nx + res, ny + res));
                }
            }
        }
        (img, layout)
    }

    #[test]
    fn placed_cell_round_trips_through_the_chip_image() {
        let mut b = ChipBuilder::new(3, 2, 8, 10);
        let (img, layout) = checker_clip(8, 10, true);
        b.place((2, 1), &img, &layout);
        b.place_site((0, 0), &img, &layout);
        let chip = b.finish();
        assert_eq!((chip.width_px, chip.height_px), (24, 16));
        assert_eq!(chip.sites.len(), 1);
        assert_eq!(chip.sites[0].center_px, (4, 4));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(chip.image.get(16 + x, 8 + y), img.get(x, y));
                assert_eq!(chip.image.get(x, y), img.get(x, y));
            }
        }
        // Untouched cell stays empty.
        assert!(!chip.image.get(9, 2));
        // Geometry landed in chip nanometre coordinates.
        let bbox = chip.layout.bbox().expect("non-empty");
        assert_eq!((bbox.lo().x, bbox.lo().y), (0, 0));
        assert_eq!((bbox.hi().x, bbox.hi().y), (240, 160));
    }

    #[test]
    fn generate_chip_places_labelled_sites_on_clean_background() {
        let spec = ChipSpec::new(4, 3, 99);
        let clips = ClipGenerator::new(160);
        // Stand-in labelling: call dense clips hotspots.
        let chip = generate_chip(&spec, &clips, |layout, window| {
            layout.density(window) > 0.18
        })
        .expect("generation succeeds");
        assert_eq!(chip.sites.len(), 3);
        assert_eq!((chip.width_px, chip.height_px), (64, 64));
        // Non-adjacent site cells.
        for (i, a) in chip.sites.iter().enumerate() {
            for b in &chip.sites[i + 1..] {
                let dx = a.cell.0.abs_diff(b.cell.0);
                let dy = a.cell.1.abs_diff(b.cell.1);
                assert!(dx > 1 || dy > 1, "sites {a:?} and {b:?} touch");
            }
        }
        // The chip window at each site origin is exactly the site clip.
        for s in &chip.sites {
            for y in 0..chip.cell_px {
                for x in 0..chip.cell_px {
                    assert_eq!(
                        chip.image.get(s.origin_px.0 + x, s.origin_px.1 + y),
                        s.image.get(x, y)
                    );
                }
            }
        }
        // Determinism.
        let again = generate_chip(&spec, &clips, |layout, window| {
            layout.density(window) > 0.18
        })
        .expect("regeneration succeeds");
        assert_eq!(again, chip);
    }

    #[test]
    fn generate_chip_rejects_impossible_site_counts() {
        let spec = ChipSpec::new(2, 5, 1);
        let clips = ClipGenerator::new(160);
        let err = generate_chip(&spec, &clips, |_, _| true).unwrap_err();
        assert!(err.contains("non-adjacent"), "{err}");
    }
}
