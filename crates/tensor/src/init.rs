//! Deterministic random tensor initialisation.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Fills `t` with samples from `U(lo, hi)`.
///
/// # Panics
///
/// Panics when `lo >= hi`.
pub fn fill_uniform<R: Rng>(t: &mut Tensor, rng: &mut R, lo: f32, hi: f32) {
    assert!(lo < hi, "uniform range [{lo}, {hi}) is empty");
    let dist = Uniform::new(lo, hi);
    for v in t.as_mut_slice() {
        *v = dist.sample(rng);
    }
}

/// Fills `t` with samples from `N(mean, std²)` via Box–Muller.
pub fn fill_normal<R: Rng>(t: &mut Tensor, rng: &mut R, mean: f32, std: f32) {
    let uniform = Uniform::new(f32::EPSILON, 1.0f32);
    let mut cached: Option<f32> = None;
    for v in t.as_mut_slice() {
        let z = match cached.take() {
            Some(z) => z,
            None => {
                let u1: f32 = uniform.sample(rng);
                let u2: f32 = uniform.sample(rng);
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f32::consts::PI * u2;
                cached = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        *v = mean + std * z;
    }
}

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))` — the paper's §3.4.2 kernel
/// initialiser.
///
/// For a conv weight `[k, c, kh, kw]`, `fan_in = c·kh·kw` and
/// `fan_out = k·kh·kw`; for a dense weight `[out, in]`, `fan_in = in`
/// and `fan_out = out`.
///
/// # Panics
///
/// Panics for tensors that are not 2-D or 4-D.
pub fn xavier_uniform<R: Rng>(t: &mut Tensor, rng: &mut R) {
    let (fan_in, fan_out) = match t.shape() {
        [out, inp] => (*inp, *out),
        [k, c, kh, kw] => (c * kh * kw, k * kh * kw),
        s => panic!("xavier_uniform supports 2-D or 4-D weights, got {s:?}"),
    };
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    fill_uniform(t, rng, -a, a);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut a = Tensor::zeros(&[1000]);
        let mut rng = StdRng::seed_from_u64(7);
        fill_uniform(&mut a, &mut rng, -0.5, 0.5);
        assert!(a.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
        // Deterministic under the same seed.
        let mut b = Tensor::zeros(&[1000]);
        let mut rng2 = StdRng::seed_from_u64(7);
        fill_uniform(&mut b, &mut rng2, -0.5, 0.5);
        assert_eq!(a, b);
        // Mean near zero.
        assert!(a.mean().abs() < 0.05);
    }

    #[test]
    fn normal_statistics() {
        let mut t = Tensor::zeros(&[20_000]);
        let mut rng = StdRng::seed_from_u64(3);
        fill_normal(&mut t, &mut rng, 1.0, 2.0);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn xavier_bounds_for_conv() {
        let mut w = Tensor::zeros(&[8, 4, 3, 3]);
        let mut rng = StdRng::seed_from_u64(11);
        xavier_uniform(&mut w, &mut rng);
        let a = (6.0f32 / ((4 * 9 + 8 * 9) as f32)).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        assert!(w.max() > 0.5 * a, "should come close to the bound");
    }

    #[test]
    fn xavier_bounds_for_dense() {
        let mut w = Tensor::zeros(&[16, 64]);
        let mut rng = StdRng::seed_from_u64(13);
        xavier_uniform(&mut w, &mut rng);
        let a = (6.0f32 / 80.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    #[should_panic(expected = "2-D or 4-D")]
    fn xavier_rejects_other_ranks() {
        let mut w = Tensor::zeros(&[3]);
        let mut rng = StdRng::seed_from_u64(1);
        xavier_uniform(&mut w, &mut rng);
    }
}
