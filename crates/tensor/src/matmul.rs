//! Blocked, parallel matrix multiplication.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Multiplies `a` (`[m, k]`) by `b` (`[k, n]`), producing `[m, n]`.
///
/// The inner loops are written in `ikj` order over row slices so the
/// compiler can vectorize the `n`-dimension; rows of the output are
/// computed in parallel with rayon.
///
/// # Panics
///
/// Panics when the operands are not 2-D or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use hotspot_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.ndim(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    matmul_into(a.as_slice(), b.as_slice(), m, k, n, &mut out);
    Tensor::from_vec(&[m, n], out)
}

/// One output row of a matmul: `out_row = a_row · B`, overwriting
/// `out_row`.  `a_row` is `[k]`, `b` is `[k, n]` row-major, `out_row`
/// is `[n]`.  This is the sequential kernel both [`matmul_into`] and
/// the im2col convolution loop are built from.
pub(crate) fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    out_row.fill(0.0);
    for (p, &a_ip) in a_row.iter().enumerate() {
        if a_ip == 0.0 {
            continue;
        }
        let b_row = &b[p * n..(p + 1) * n];
        for (r, &b_pj) in out_row.iter_mut().zip(b_row) {
            *r += a_ip * b_pj;
        }
    }
}

/// Multiplies `a` (`[m, k]`) by `b` (`[k, n]`) into a caller-provided
/// `[m, n]` buffer, overwriting it.  Rows are computed in parallel;
/// the result is identical to [`matmul`] (each row's accumulation
/// order is the same).
///
/// # Panics
///
/// Panics when any slice length disagrees with the given dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    assert_eq!(out.len(), m * n, "output length mismatch");
    // Parallelize over output rows; each row is an independent
    // accumulation of k rank-1 updates.
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        matmul_row(&a[i * k..(i + 1) * k], b, n, row);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let eye = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        // Deterministic pseudo-random fill without pulling in rand here.
        let fill = |shape: &[usize], seed: u32| {
            let numel: usize = shape.iter().product();
            let mut state = seed;
            let data = (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 65536.0 - 0.5
                })
                .collect();
            Tensor::from_vec(shape, data)
        };
        let a = fill(&[7, 13], 1);
        let b = fill(&[13, 5], 2);
        let fast = matmul(&a, &b);
        let slow = naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn skips_zero_rows_correctly() {
        let a = Tensor::from_vec(&[2, 3], vec![0., 0., 0., 1., 1., 1.]);
        let b = Tensor::ones(&[3, 4]);
        let c = matmul(&a, &b);
        assert_eq!(&c.as_slice()[..4], &[0., 0., 0., 0.]);
        assert_eq!(&c.as_slice()[4..], &[3., 3., 3., 3.]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
