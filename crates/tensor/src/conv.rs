//! 2-D convolution via im2col, with analytic backward pass.

use crate::matmul::{matmul, matmul_row};
use crate::tensor::Tensor;
use crate::workspace::{global_pool, Workspace};
use rayon::prelude::*;

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient with respect to the layer input, shaped like the input.
    pub input: Tensor,
    /// Gradient with respect to the weights, shaped like the weights.
    pub weight: Tensor,
    /// Gradient with respect to the bias (`[k]`), when a bias was used.
    pub bias: Option<Tensor>,
}

/// Output spatial size of a convolution.
///
/// # Panics
///
/// Panics when the kernel (after padding) does not fit the input or the
/// stride does not evenly step the padded extent.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// Unfolds one batch item (`[c, h, w]` slice) into im2col columns:
/// a `[c * kh * kw, oh * ow]` matrix where each column is the receptive
/// field of one output pixel.
///
/// Out-of-bounds (padding) taps contribute zeros.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    item: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let oh = conv_output_size(height, kh, stride, pad);
    let ow = conv_output_size(width, kw, stride, pad);
    let rows = channels * kh * kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(item, channels, height, width, kh, kw, stride, pad, &mut out);
    Tensor::from_vec(&[rows, cols], out)
}

/// [`im2col`] into a caller-provided `[c * kh * kw, oh * ow]` buffer.
///
/// Only in-bounds taps are written; padding positions are left
/// untouched, so `out` must arrive zero-filled (a buffer fresh from
/// [`Workspace::take_f32`] is).  Reusing the same buffer across batch
/// items of identical geometry is fine without re-zeroing: every
/// in-bounds position is overwritten and every padding position stays
/// zero.
///
/// # Panics
///
/// Panics when the slice lengths disagree with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn im2col_into(
    item: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut [f32],
) {
    let oh = conv_output_size(height, kh, stride, pad);
    let ow = conv_output_size(width, kw, stride, pad);
    let cols = oh * ow;
    assert_eq!(
        item.len(),
        channels * height * width,
        "item length mismatch"
    );
    assert_eq!(
        out.len(),
        channels * kh * kw * cols,
        "im2col buffer length mismatch"
    );
    for c in 0..channels {
        let plane = &item[c * height * width..(c + 1) * height * width];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let row_buf = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= width as isize {
                            continue;
                        }
                        row_buf[oy * ow + ox] = plane[iy * width + ix as usize];
                    }
                }
            }
        }
    }
}

/// Folds im2col columns back into an image (the adjoint of [`im2col`]):
/// overlapping taps accumulate.
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols: &Tensor,
    channels: usize,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = conv_output_size(height, kh, stride, pad);
    let ow = conv_output_size(width, kw, stride, pad);
    let ncols = oh * ow;
    let data = cols.as_slice();
    let mut out = vec![0.0f32; channels * height * width];
    for c in 0..channels {
        let plane = &mut out[c * height * width..(c + 1) * height * width];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                let row_buf = &data[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= width as isize {
                            continue;
                        }
                        plane[iy * width + ix as usize] += row_buf[oy * ow + ox];
                    }
                }
            }
        }
    }
    out
}

/// Convolves `input` (`[n, c, h, w]`) with `weight` (`[k, c, kh, kw]`).
///
/// Returns `[n, k, oh, ow]`.  When `bias` (`[k]`) is given it is added to
/// every output pixel of the corresponding channel.  Batch items are
/// processed in parallel.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches, or when the kernel does
/// not fit the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(input.ndim(), 4, "conv2d input must be NCHW");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [k, c, kh, kw]");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (k, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "input has {c} channels but weight expects {wc}");
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[k], "bias must be [{k}]");
    }
    let oh = conv_output_size(h, kh, stride, pad);
    let ow = conv_output_size(w, kw, stride, pad);

    let wdata = weight.as_slice();
    let bdata = bias.map(|b| b.as_slice());
    let items: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|i| {
            // Scratch (the im2col matrix) comes from the process-wide
            // workspace pool, so repeated training steps reuse one
            // allocation per worker instead of reallocating per item.
            let mut ws = global_pool().checkout();
            let mut out = vec![0.0f32; k * oh * ow];
            conv_item_into(
                input.batch_item(i),
                wdata,
                bdata,
                (c, h, w),
                (k, kh, kw),
                stride,
                pad,
                &mut ws,
                &mut out,
            );
            global_pool().restore(ws);
            out
        })
        .collect();

    let mut data = Vec::with_capacity(n * k * oh * ow);
    for item in items {
        data.extend_from_slice(&item);
    }
    Tensor::from_vec(&[n, k, oh, ow], data)
}

/// Convolves one batch item into a caller-provided `[k, oh, ow]`
/// buffer: im2col scratch from `ws`, then a sequential row-by-row
/// matmul (bit-identical to [`conv2d`]'s per-item result).
#[allow(clippy::too_many_arguments)]
fn conv_item_into(
    item: &[f32],
    weight: &[f32],
    bias: Option<&[f32]>,
    (c, h, w): (usize, usize, usize),
    (k, kh, kw): (usize, usize, usize),
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
    out: &mut [f32],
) {
    let oh = conv_output_size(h, kh, stride, pad);
    let ow = conv_output_size(w, kw, stride, pad);
    let cols = oh * ow;
    let taps = c * kh * kw;
    assert_eq!(out.len(), k * cols, "conv output buffer length mismatch");
    let mut col_buf = ws.take_f32(taps * cols);
    im2col_into(item, c, h, w, kh, kw, stride, pad, &mut col_buf);
    for ki in 0..k {
        matmul_row(
            &weight[ki * taps..(ki + 1) * taps],
            &col_buf,
            cols,
            &mut out[ki * cols..(ki + 1) * cols],
        );
    }
    if let Some(b) = bias {
        for (ki, &bv) in b.iter().enumerate() {
            for v in &mut out[ki * cols..(ki + 1) * cols] {
                *v += bv;
            }
        }
    }
    ws.give_f32(col_buf);
}

/// [`conv2d`] into a caller-provided `[n, k, oh, ow]` buffer, with all
/// scratch drawn from `ws`: after one warm-up call with the same
/// shapes, subsequent calls perform no heap allocation.  Batch items
/// run sequentially — batch-level parallelism belongs to the caller
/// (one workspace per worker).
///
/// # Panics
///
/// Panics on the same shape mismatches as [`conv2d`], or when `out`
/// has the wrong length.
pub fn conv2d_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
    out: &mut [f32],
) {
    assert_eq!(input.ndim(), 4, "conv2d input must be NCHW");
    assert_eq!(weight.ndim(), 4, "conv2d weight must be [k, c, kh, kw]");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (k, wc, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c, wc, "input has {c} channels but weight expects {wc}");
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[k], "bias must be [{k}]");
    }
    let oh = conv_output_size(h, kh, stride, pad);
    let ow = conv_output_size(w, kw, stride, pad);
    assert_eq!(
        out.len(),
        n * k * oh * ow,
        "conv output buffer length mismatch"
    );
    let bdata = bias.map(|b| b.as_slice());
    for i in 0..n {
        conv_item_into(
            input.batch_item(i),
            weight.as_slice(),
            bdata,
            (c, h, w),
            (k, kh, kw),
            stride,
            pad,
            ws,
            &mut out[i * k * oh * ow..(i + 1) * k * oh * ow],
        );
    }
}

/// Backward pass of [`conv2d`].
///
/// Given the forward inputs and the gradient of the loss with respect to
/// the convolution output, returns the gradients with respect to the
/// input, the weights, and (when `with_bias`) the bias.
///
/// # Panics
///
/// Panics when `grad_out`'s shape does not match the forward output
/// shape implied by the other arguments.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    pad: usize,
    with_bias: bool,
) -> ConvGrads {
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (k, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let oh = conv_output_size(h, kh, stride, pad);
    let ow = conv_output_size(w, kw, stride, pad);
    assert_eq!(grad_out.shape(), &[n, k, oh, ow], "grad_out shape mismatch");

    let wmat = weight.clone().reshape(&[k, c * kh * kw]);
    // Transpose of the weight matrix, for the input gradient.
    let mut wt = vec![0.0f32; wmat.numel()];
    let rows = k;
    let cols = c * kh * kw;
    for i in 0..rows {
        for j in 0..cols {
            wt[j * rows + i] = wmat.as_slice()[i * cols + j];
        }
    }
    let wt = Tensor::from_vec(&[cols, rows], wt);

    let per_item: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let go = Tensor::from_vec(&[k, oh * ow], grad_out.batch_item(i).to_vec());
            // grad wrt columns, then fold back to the input image.
            let gcols = matmul(&wt, &go);
            let gin = col2im(&gcols, c, h, w, kh, kw, stride, pad);
            // grad wrt weights: go [k, ohw] x colsT [ohw, ckhkw].
            let icols = im2col(input.batch_item(i), c, h, w, kh, kw, stride, pad);
            // Transpose columns.
            let (r, cc) = (icols.shape()[0], icols.shape()[1]);
            let mut ict = vec![0.0f32; r * cc];
            for a in 0..r {
                for b in 0..cc {
                    ict[b * r + a] = icols.as_slice()[a * cc + b];
                }
            }
            let ict = Tensor::from_vec(&[cc, r], ict);
            let gw = matmul(&go, &ict).into_vec();
            (gin, gw)
        })
        .collect();

    let mut grad_input = Vec::with_capacity(input.numel());
    let mut grad_weight = vec![0.0f32; weight.numel()];
    for (gin, gw) in per_item {
        grad_input.extend_from_slice(&gin);
        for (acc, v) in grad_weight.iter_mut().zip(gw) {
            *acc += v;
        }
    }

    let bias = with_bias.then(|| {
        let mut gb = vec![0.0f32; k];
        for i in 0..n {
            let go = grad_out.batch_item(i);
            for (ch, slot) in gb.iter_mut().enumerate() {
                *slot += go[ch * oh * ow..(ch + 1) * oh * ow].iter().sum::<f32>();
            }
        }
        Tensor::from_vec(&[k], gb)
    });

    ConvGrads {
        input: Tensor::from_vec(input.shape(), grad_input),
        weight: Tensor::from_vec(weight.shape(), grad_weight),
        bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (no im2col) reference convolution.
    fn conv_reference(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (k, _, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        let oh = conv_output_size(h, kh, stride, pad);
        let ow = conv_output_size(w, kw, stride, pad);
        let mut out = Tensor::zeros(&[n, k, oh, ow]);
        for ni in 0..n {
            for ki in 0..k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[ki, ci, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[ni, ki, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 65536.0 - 0.5
                })
                .collect(),
        )
    }

    #[test]
    fn output_size_math() {
        assert_eq!(conv_output_size(8, 3, 1, 1), 8);
        assert_eq!(conv_output_size(8, 3, 2, 1), 4);
        assert_eq!(conv_output_size(8, 1, 1, 0), 8);
        assert_eq!(conv_output_size(7, 3, 2, 0), 3);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn kernel_too_big_panics() {
        conv_output_size(2, 5, 1, 0);
    }

    #[test]
    fn conv_matches_reference_same_pad() {
        let input = pseudo(&[2, 3, 6, 6], 7);
        let weight = pseudo(&[4, 3, 3, 3], 9);
        let fast = conv2d(&input, &weight, None, 1, 1);
        let slow = conv_reference(&input, &weight, 1, 1);
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn conv_matches_reference_strided() {
        let input = pseudo(&[1, 2, 8, 8], 3);
        let weight = pseudo(&[3, 2, 3, 3], 4);
        let fast = conv2d(&input, &weight, None, 2, 1);
        let slow = conv_reference(&input, &weight, 2, 1);
        assert_eq!(fast.shape(), &[1, 3, 4, 4]);
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        let input = pseudo(&[1, 2, 4, 4], 5);
        let weight = Tensor::from_vec(&[1, 2, 1, 1], vec![2.0, -1.0]);
        let out = conv2d(&input, &weight, None, 1, 0);
        for y in 0..4 {
            for x in 0..4 {
                let expect = 2.0 * input.at(&[0, 0, y, x]) - input.at(&[0, 1, y, x]);
                assert!((out.at(&[0, 0, y, x]) - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bias_is_added() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        let weight = Tensor::zeros(&[2, 1, 1, 1]);
        let bias = Tensor::from_vec(&[2], vec![0.5, -1.5]);
        let out = conv2d(&input, &weight, Some(&bias), 1, 0);
        assert_eq!(out.at(&[0, 0, 0, 0]), 0.5);
        assert_eq!(out.at(&[0, 1, 1, 1]), -1.5);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let input = pseudo(&[1, 2, 5, 5], 11);
        let weight = pseudo(&[2, 2, 3, 3], 13);
        // Loss = sum of outputs, so grad_out = ones.
        let out = conv2d(&input, &weight, None, 1, 1);
        let grad_out = Tensor::ones(out.shape());
        let grads = conv2d_backward(&input, &weight, &grad_out, 1, 1, true);

        let eps = 1e-3;
        // Check a scattering of weight coordinates.
        for &idx in &[0usize, 5, 10, 17, 25, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fp = conv2d(&input, &wp, None, 1, 1).sum();
            let fm = conv2d(&input, &wm, None, 1, 1).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "weight[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check a scattering of input coordinates.
        for &idx in &[0usize, 7, 12, 24, 33, 49] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let fp = conv2d(&ip, &weight, None, 1, 1).sum();
            let fm = conv2d(&im, &weight, None, 1, 1).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = grads.input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient for a sum loss is the output pixel count per channel.
        let gb = grads.bias.expect("bias grads requested");
        assert_eq!(gb.as_slice(), &[25.0, 25.0]);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // adjoint property used by the backward pass.
        let x = pseudo(&[1, 2, 4, 4], 21);
        let cols = im2col(x.batch_item(0), 2, 4, 4, 3, 3, 1, 1);
        let y = pseudo(&[cols.shape()[0], cols.shape()[1]], 22);
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let folded = col2im(&y, 2, 4, 4, 3, 3, 1, 1);
        let rhs: f32 = x
            .batch_item(0)
            .iter()
            .zip(&folded)
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
