//! Minimal little-endian binary codec shared by the persistence layer.
//!
//! The workspace builds in a fully offline environment, so on-disk
//! artifacts use this hand-rolled format instead of an external
//! serialization crate. The format is deliberately simple: fixed-width
//! little-endian scalars, length-prefixed sequences, no
//! self-description — versioning lives in the artifact header written
//! by `hotspot-core::persist`.

use crate::Tensor;
use std::fmt;

/// Decode failure: truncated or structurally invalid payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn eof<T>(what: &str) -> Result<T, WireError> {
    Err(WireError(format!("unexpected end of input reading {what}")))
}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A usize as a u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Little-endian f32 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian f64 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed f32 sequence.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Length-prefixed u64 sequence.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Length-prefixed usize sequence.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// A tensor as shape + data.
    pub fn put_tensor(&mut self, t: &Tensor) {
        self.put_usize_slice(t.shape());
        self.put_f32_slice(t.as_slice());
    }
}

/// Cursor-style decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    rest: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { rest: bytes }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.rest.len() < n {
            return eof(what);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// [`take`](WireReader::take) as a fixed-size array; the length
    /// mismatch arm is unreachable but stays a typed error so decode
    /// paths carry no panic sites.
    fn take_array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], WireError> {
        let head = self.take(N, what)?;
        <[u8; N]>::try_from(head).map_err(|_| WireError(format!("internal: {what} slice length")))
    }

    /// One byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// A bool encoded as 0/1.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError(format!("invalid bool byte {b}"))),
        }
    }

    /// Little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array("u32")?))
    }

    /// Little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array("u64")?))
    }

    /// A usize encoded as u64; rejects values that do not fit.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_u64()?).map_err(|_| WireError("usize overflow".into()))
    }

    /// A sequence length, sanity-capped against the remaining input so
    /// corrupted prefixes cannot trigger huge allocations.
    fn get_len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        if len.saturating_mul(elem_size) > self.rest.len() {
            return Err(WireError(format!(
                "sequence length {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }

    /// Reads an element count that the caller will decode item by item,
    /// rejecting any count implying more than the remaining bytes
    /// (`min_elem_size` is a lower bound on one element's encoding).
    ///
    /// Decoders of variable-size records should read their counts
    /// through this instead of [`get_usize`](WireReader::get_usize), so
    /// a corrupt or hostile prefix errors out before any allocation is
    /// sized from it.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated input or an implausible
    /// count.
    pub fn get_count(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        self.get_len(min_elem_size.max(1))
    }

    /// Little-endian f32.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take_array("f32")?))
    }

    /// Little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take_array("f64")?))
    }

    /// Length-prefixed f32 sequence.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, WireError> {
        let len = self.get_len(4)?;
        (0..len).map(|_| self.get_f32()).collect()
    }

    /// Length-prefixed u64 sequence.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Length-prefixed usize sequence.
    pub fn get_usize_vec(&mut self) -> Result<Vec<usize>, WireError> {
        let len = self.get_len(8)?;
        (0..len).map(|_| self.get_usize()).collect()
    }

    /// A tensor as shape + data.
    pub fn get_tensor(&mut self) -> Result<Tensor, WireError> {
        let shape = self.get_usize_vec()?;
        let data = self.get_f32_vec()?;
        let numel: usize = shape.iter().product();
        if shape.is_empty() || shape.contains(&0) || numel != data.len() {
            return Err(WireError(format!(
                "tensor shape {shape:?} does not match {} data elements",
                data.len()
            )));
        }
        Ok(Tensor::from_vec(&shape, data))
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
///
/// Used by the persistence layer to frame artifacts with an integrity
/// footer; implemented in-tree because the build environment is
/// offline. Matches the ubiquitous zlib/PNG/Ethernet checksum, so
/// artifacts can be verified with standard external tools.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12345);
        w.put_f32(-1.5);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn tensor_round_trip() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 3.5, 0.0, -0.25, 9.0]);
        let mut w = WireWriter::new();
        w.put_tensor(&t);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_tensor().unwrap(), t);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut w = WireWriter::new();
        w.put_f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.get_f32_vec().is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_f32_vec().is_err());
    }

    #[test]
    fn hostile_length_rejected_for_every_vec_getter() {
        // A prefix claiming ~u64::MAX elements with almost no payload
        // behind it must error cleanly in each decoder, never allocate.
        for huge in [u64::MAX, u64::MAX / 8, 1 << 40] {
            let mut w = WireWriter::new();
            w.put_u64(huge);
            w.put_u32(0); // a few trailing bytes, fewer than claimed
            let bytes = w.into_bytes();
            assert!(WireReader::new(&bytes).get_f32_vec().is_err());
            assert!(WireReader::new(&bytes).get_u64_vec().is_err());
            assert!(WireReader::new(&bytes).get_usize_vec().is_err());
            assert!(WireReader::new(&bytes).get_tensor().is_err());
            assert!(WireReader::new(&bytes).get_count(1).is_err());
        }
    }

    #[test]
    fn get_count_bounds_by_element_size() {
        let mut w = WireWriter::new();
        w.put_usize(4);
        w.put_raw(&[0u8; 12]); // room for 12 one-byte elems, not 4×4
        let bytes = w.into_bytes();
        assert_eq!(WireReader::new(&bytes).get_count(3).unwrap(), 4);
        assert!(WireReader::new(&bytes).get_count(4).is_err());
    }

    #[test]
    fn f64_round_trip() {
        let mut w = WireWriter::new();
        w.put_f64(-1.25e300);
        w.put_f64(f64::MIN_POSITIVE);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap(), -1.25e300);
        assert_eq!(r.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(r.get_f64().is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"binarized residual neural network".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.clone();
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
