//! Dense `f32` tensor substrate for the hotspot-detection workspace.
//!
//! The deep-learning crates in this workspace ([`hotspot-nn`] and
//! [`hotspot-bnn`]) are built from scratch; this crate supplies the
//! numeric kernel they share: an owned, row-major [`Tensor`] in NCHW
//! layout, blocked [`matmul()`], im2col-based [`conv2d`] with analytic
//! backward passes, pooling, and deterministic random initialisation.
//!
//! Everything is CPU-only `f32`; batch-level loops are parallelised with
//! rayon.
//!
//! # Example
//!
//! ```
//! use hotspot_tensor::{conv2d, Tensor};
//!
//! let input = Tensor::ones(&[1, 1, 4, 4]);
//! let weight = Tensor::full(&[2, 1, 3, 3], 0.5);
//! let out = conv2d(&input, &weight, None, 1, 1);
//! assert_eq!(out.shape(), &[1, 2, 4, 4]);
//! // Centre pixels see the full 3x3 kernel: 9 * 0.5.
//! assert_eq!(out.at(&[0, 0, 1, 1]), 4.5);
//! ```
//!
//! [`hotspot-nn`]: ../hotspot_nn/index.html
//! [`hotspot-bnn`]: ../hotspot_bnn/index.html

pub mod conv;
pub mod init;
pub mod matmul;
pub mod pool;
pub mod tensor;
pub mod wire;
pub mod workspace;

pub use conv::{conv2d, conv2d_backward, conv2d_into, im2col, im2col_into, ConvGrads};
pub use init::{fill_normal, fill_uniform, xavier_uniform};
pub use matmul::{matmul, matmul_into};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward,
    global_avg_pool_into, max_pool2d, max_pool2d_backward,
};
pub use tensor::Tensor;
pub use wire::{crc32, WireError, WireReader, WireWriter};
pub use workspace::{global_pool, PoolExhausted, Workspace, WorkspaceGuard, WorkspacePool};
