//! The dense tensor type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An owned, row-major, dense `f32` tensor.
///
/// Network activations use the NCHW convention: `[batch, channels,
/// height, width]`.  The type is deliberately simple — no views, no
/// broadcasting — because every consumer in this workspace operates on
/// whole, contiguous buffers.
///
/// # Example
///
/// ```
/// use hotspot_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics when the shape is empty or has a zero dimension.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive, got {shape:?}"
        );
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "buffer of {} elements does not fill shape {shape:?}",
            data.len()
        );
        assert!(!shape.is_empty(), "tensor shape must not be empty");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when `index` has the wrong rank or is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} of size {dim}"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics when the index has the wrong rank or is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape to {shape:?} changes element count"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Applies `f` to every element, in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two same-shape tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Multiplies every element by `s`, in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Adds `other * s` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Never — tensors are non-empty by construction.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L1 norm (sum of absolute values).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// L2 norm.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// For a 4-D NCHW tensor, a borrowed view of one batch item's data.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 4-D or `n` is out of range.
    pub fn batch_item(&self, n: usize) -> &[f32] {
        assert_eq!(self.ndim(), 4, "batch_item requires a 4-D tensor");
        let stride: usize = self.shape[1..].iter().product();
        assert!(n < self.shape[0], "batch index {n} out of range");
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Stacks same-shape tensors along a new leading batch axis.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * items[0].numel());
        for t in items {
            assert_eq!(t.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&inner);
        Tensor { shape, data }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }
}

impl AddAssign<&Tensor> for Tensor {
    /// Element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{:?} (min {:.4}, max {:.4}, mean {:.4})",
            self.shape,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.ndim(), 3);
        assert_eq!(t.sum(), 0.0);
        let o = Tensor::ones(&[5]);
        assert_eq!(o.sum(), 5.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not fill shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }

    #[test]
    fn indexing_row_major() {
        let t = Tensor::from_vec(&[2, 3], vec![0., 1., 2., 3., 4., 5.]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        let mut t = t;
        *t.at_mut(&[1, 1]) = 10.0;
        assert_eq!(t.at(&[1, 1]), 10.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds() {
        Tensor::zeros(&[2, 2]).at(&[0, 2]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        assert_eq!((&a + &b).as_slice(), &[11., 22., 33.]);
        assert_eq!((&b - &a).as_slice(), &[9., 18., 27.]);
        assert_eq!((&a * 2.0).as_slice(), &[2., 4., 6.]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[11., 22., 33.]);
        c.axpy(-1.0, &b);
        assert_eq!(c.as_slice(), &[1., 2., 3.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![-1., 2., -3., 4.]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.l1_norm(), 10.0);
        assert!((t.l2_norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn batch_item_views() {
        let t = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t.batch_item(0), &[0., 1., 2., 3.]);
        assert_eq!(t.batch_item(1), &[4., 5., 6., 7.]);
    }

    #[test]
    fn stack_tensors() {
        let a = Tensor::from_vec(&[2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2], vec![3., 4.]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn display_is_informative() {
        let t = Tensor::ones(&[2, 2]);
        let s = t.to_string();
        assert!(s.contains("[2, 2]"));
        assert!(s.contains("mean"));
    }
}
