//! Pooling operators with backward passes.

use crate::tensor::Tensor;

/// Max-pools `input` (`[n, c, h, w]`) with a square window and equal
/// stride, returning the pooled tensor and the flat argmax index of each
/// output element (needed by the backward pass).
///
/// # Panics
///
/// Panics when the window does not evenly tile the spatial dims.
pub fn max_pool2d(input: &Tensor, window: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = dims4(input);
    assert!(
        window > 0 && h % window == 0 && w % window == 0,
        "window {window} must tile {h}x{w}"
    );
    let (oh, ow) = (h / window, w / window);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for dy in 0..window {
                        for dx in 0..window {
                            let idx = base + (oy * window + dy) * w + ox * window + dx;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((ni * c + ci) * oh + oy) * ow + ox;
                    out.as_mut_slice()[o] = best;
                    argmax[o] = best_idx;
                }
            }
        }
    }
    (out, argmax)
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// input position that achieved the max.
pub fn max_pool2d_backward(input_shape: &[usize], grad_out: &Tensor, argmax: &[usize]) -> Tensor {
    let mut grad_in = Tensor::zeros(input_shape);
    for (o, &src) in argmax.iter().enumerate() {
        grad_in.as_mut_slice()[src] += grad_out.as_slice()[o];
    }
    grad_in
}

/// Average-pools `input` (`[n, c, h, w]`) with a square window and equal
/// stride.
///
/// # Panics
///
/// Panics when the window does not evenly tile the spatial dims.
pub fn avg_pool2d(input: &Tensor, window: usize) -> Tensor {
    let (n, c, h, w) = dims4(input);
    assert!(
        window > 0 && h % window == 0 && w % window == 0,
        "window {window} must tile {h}x{w}"
    );
    let (oh, ow) = (h / window, w / window);
    let inv = 1.0 / (window * window) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = input.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..window {
                        for dx in 0..window {
                            acc += data[base + (oy * window + dy) * w + ox * window + dx];
                        }
                    }
                    out.as_mut_slice()[((ni * c + ci) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    out
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient evenly
/// over its window.
pub fn avg_pool2d_backward(input_shape: &[usize], grad_out: &Tensor, window: usize) -> Tensor {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (oh, ow) = (h / window, w / window);
    let inv = 1.0 / (window * window) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.as_slice()[((ni * c + ci) * oh + oy) * ow + ox] * inv;
                    for dy in 0..window {
                        for dx in 0..window {
                            grad_in.as_mut_slice()
                                [base + (oy * window + dy) * w + ox * window + dx] += g;
                        }
                    }
                }
            }
        }
    }
    grad_in
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = dims4(input);
    let mut out = Tensor::zeros(&[n, c]);
    global_avg_pool_into(input.as_slice(), n, c, h, w, out.as_mut_slice());
    out
}

/// [`global_avg_pool`] on a raw NCHW slice into a caller-provided
/// `[n, c]` buffer (overwritten).
///
/// # Panics
///
/// Panics when the slice lengths disagree with the dimensions.
pub fn global_avg_pool_into(
    input: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    out: &mut [f32],
) {
    assert_eq!(input.len(), n * c * h * w, "input length mismatch");
    assert_eq!(out.len(), n * c, "output length mismatch");
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = input[base..base + h * w].iter().sum();
            out[ni * c + ci] = s * inv;
        }
    }
}

/// Backward pass of [`global_avg_pool`].
pub fn global_avg_pool_backward(input_shape: &[usize], grad_out: &Tensor) -> Tensor {
    let (n, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let inv = 1.0 / (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_shape);
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_out.as_slice()[ni * c + ci] * inv;
            let base = (ni * c + ci) * h * w;
            for v in &mut grad_in.as_mut_slice()[base..base + h * w] {
                *v = g;
            }
        }
    }
    grad_in
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.ndim(),
        4,
        "expected a 4-D NCHW tensor, got {:?}",
        t.shape()
    );
    (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_max_and_routes_grad() {
        let input = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                9., 1., 0., 0., //
                1., 1., 0., 7.,
            ],
        );
        let (out, argmax) = max_pool2d(&input, 2);
        assert_eq!(out.as_slice(), &[4., 5., 9., 7.]);
        let grad_out = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let grad_in = max_pool2d_backward(input.shape(), &grad_out, &argmax);
        assert_eq!(grad_in.at(&[0, 0, 1, 0]), 1.0); // 4 at (1,0)
        assert_eq!(grad_in.at(&[0, 0, 0, 2]), 2.0); // 5 at (0,2)
        assert_eq!(grad_in.at(&[0, 0, 2, 0]), 3.0); // 9 at (2,0)
        assert_eq!(grad_in.at(&[0, 0, 3, 3]), 4.0); // 7 at (3,3)
        assert_eq!(grad_in.sum(), 10.0);
    }

    #[test]
    fn avg_pool_and_backward() {
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 3., 5., 7.]);
        let out = avg_pool2d(&input, 2);
        assert_eq!(out.as_slice(), &[4.0]);
        let grad = avg_pool2d_backward(
            input.shape(),
            &Tensor::from_vec(&[1, 1, 1, 1], vec![8.0]),
            2,
        );
        assert_eq!(grad.as_slice(), &[2., 2., 2., 2.]);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let input = Tensor::from_vec(&[1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let out = global_avg_pool(&input);
        assert_eq!(out.as_slice(), &[2.5, 10.0]);
        let grad =
            global_avg_pool_backward(input.shape(), &Tensor::from_vec(&[1, 2], vec![4.0, 8.0]));
        assert_eq!(grad.as_slice(), &[1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    fn multi_batch_channels() {
        let input = Tensor::from_vec(&[2, 1, 2, 2], vec![1., 2., 3., 4., -1., -2., -3., -4.]);
        let (out, _) = max_pool2d(&input, 2);
        assert_eq!(out.as_slice(), &[4.0, -1.0]);
        let avg = avg_pool2d(&input, 2);
        assert_eq!(avg.as_slice(), &[2.5, -2.5]);
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn window_must_tile() {
        max_pool2d(&Tensor::zeros(&[1, 1, 5, 5]), 2);
    }
}
