//! Reusable scratch-buffer arenas for allocation-free inference.
//!
//! A [`Workspace`] owns free lists of `f32`, `i32` and `u64` buffers.
//! Kernels *take* a buffer of the length they need (reusing a pooled
//! allocation when one is large enough) and *give* it back when done;
//! after a warm-up pass every take is served from the free list and the
//! steady state performs no heap allocation.  See DESIGN.md §"Workspace
//! and execution plan".
//!
//! A [`WorkspacePool`] is the `Sync` wrapper used by batch-parallel
//! callers: each worker checks a whole `Workspace` out, runs any number
//! of kernels with it, and returns it when the batch chunk is done.
//!
//! # Example
//!
//! ```
//! use hotspot_tensor::Workspace;
//!
//! let mut ws = Workspace::new();
//! let mut buf = ws.take_f32(1024); // zeroed, len == 1024
//! buf[0] = 1.0;
//! ws.give_f32(buf); // capacity returns to the pool
//! let again = ws.take_f32(512); // served from the pooled allocation
//! assert_eq!(again.len(), 512);
//! assert!(again.iter().all(|&v| v == 0.0));
//! ```

use std::sync::Mutex;

/// A growable arena of reusable scratch buffers (see module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    f32_bufs: Vec<Vec<f32>>,
    i32_bufs: Vec<Vec<i32>>,
    u64_bufs: Vec<Vec<u64>>,
    f64_bufs: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are allocated on first use
    /// and reused afterwards.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Total pooled capacity in bytes (diagnostic).
    pub fn pooled_bytes(&self) -> usize {
        self.f32_bufs
            .iter()
            .map(|b| b.capacity() * 4)
            .sum::<usize>()
            + self
                .i32_bufs
                .iter()
                .map(|b| b.capacity() * 4)
                .sum::<usize>()
            + self
                .u64_bufs
                .iter()
                .map(|b| b.capacity() * 8)
                .sum::<usize>()
            + self
                .f64_bufs
                .iter()
                .map(|b| b.capacity() * 8)
                .sum::<usize>()
    }

    /// Number of idle pooled buffers per element type, as
    /// `[f32, i32, u64, f64]` (diagnostic).  The steady-state count is
    /// the number of concurrently-live scratch buffers a workload
    /// needs, so regression tests can pin a kernel's working-set shape.
    pub fn pooled_buffer_counts(&self) -> [usize; 4] {
        [
            self.f32_bufs.len(),
            self.i32_bufs.len(),
            self.u64_bufs.len(),
            self.f64_bufs.len(),
        ]
    }
}

macro_rules! workspace_pool {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        impl Workspace {
            /// Takes a zeroed buffer of exactly `len` elements, reusing
            /// a pooled allocation when one with enough capacity
            /// exists.  Give it back with the matching `give_*` so the
            /// allocation is reused.
            pub fn $take(&mut self, len: usize) -> Vec<$t> {
                let mut buf = match self.$field.iter().position(|b| b.capacity() >= len) {
                    Some(i) => self.$field.swap_remove(i),
                    // Nothing fits: grow the largest pooled buffer (so
                    // repeated takes converge on one allocation per
                    // concurrent buffer) or start fresh.
                    None => {
                        match (0..self.$field.len()).max_by_key(|&i| self.$field[i].capacity()) {
                            Some(i) => self.$field.swap_remove(i),
                            None => Vec::new(),
                        }
                    }
                };
                buf.clear();
                buf.resize(len, 0 as $t);
                buf
            }

            /// Returns a buffer's allocation to the pool for reuse.
            pub fn $give(&mut self, buf: Vec<$t>) {
                if buf.capacity() > 0 {
                    self.$field.push(buf);
                }
            }
        }
    };
}

workspace_pool!(take_f32, give_f32, f32_bufs, f32);
workspace_pool!(take_i32, give_i32, i32_bufs, i32);
workspace_pool!(take_u64, give_u64, u64_bufs, u64);
workspace_pool!(take_f64, give_f64, f64_bufs, f64);

/// A shared pool of [`Workspace`]s for batch-parallel inference: each
/// worker checks one out, runs its chunk, and returns it, so the warm
/// buffers survive across batches without any per-thread state.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    inner: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Checks a workspace out (a warm one when available).
    pub fn checkout(&self) -> Workspace {
        self.inner
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a workspace to the pool.
    pub fn restore(&self, ws: Workspace) {
        self.inner.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.inner.lock().expect("workspace pool poisoned").len()
    }

    /// Checks a workspace out behind a guard that returns it to the
    /// pool on drop.  This is the shape `for_each_init`-style parallel
    /// loops need: each worker creates one guard up front, uses it for
    /// every item it processes, and the warm workspace flows back to
    /// the pool when the worker retires.
    pub fn checkout_guard(&self) -> WorkspaceGuard<'_> {
        WorkspaceGuard {
            ws: Some(self.checkout()),
            pool: self,
        }
    }
}

/// A checked-out [`Workspace`] that restores itself to its
/// [`WorkspacePool`] when dropped (see
/// [`WorkspacePool::checkout_guard`]).
#[derive(Debug)]
pub struct WorkspaceGuard<'p> {
    ws: Option<Workspace>,
    pool: &'p WorkspacePool,
}

impl std::ops::Deref for WorkspaceGuard<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for WorkspaceGuard<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for WorkspaceGuard<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.restore(ws);
        }
    }
}

/// The process-wide pool used by the allocating convenience wrappers
/// (`conv2d`, `PackedBnn::forward`, …) so even the non-`_into` API
/// reuses scratch memory across calls.
pub fn global_pool() -> &'static WorkspacePool {
    static POOL: std::sync::OnceLock<WorkspacePool> = std::sync::OnceLock::new();
    POOL.get_or_init(WorkspacePool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_give() {
        let mut ws = Workspace::new();
        let mut b = ws.take_f32(8);
        b.iter_mut().for_each(|v| *v = 7.0);
        ws.give_f32(b);
        let b = ws.take_f32(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuses_allocation_when_capacity_suffices() {
        let mut ws = Workspace::new();
        let b = ws.take_f32(1000);
        let ptr = b.as_ptr();
        ws.give_f32(b);
        let b = ws.take_f32(500);
        assert_eq!(b.as_ptr(), ptr, "smaller take must reuse the pooled buffer");
        ws.give_f32(b);
        let b = ws.take_f32(1000);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn growing_take_recycles_largest_instead_of_accumulating() {
        let mut ws = Workspace::new();
        let b = ws.take_u64(16);
        ws.give_u64(b);
        let b = ws.take_u64(64); // must grow, not add a second pool entry
        ws.give_u64(b);
        assert_eq!(ws.u64_bufs.len(), 1);
        assert!(ws.u64_bufs[0].capacity() >= 64);
    }

    #[test]
    fn distinct_concurrent_takes_get_distinct_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take_i32(10);
        let b = ws.take_i32(10);
        assert_ne!(a.as_ptr(), b.as_ptr());
        ws.give_i32(a);
        ws.give_i32(b);
    }

    #[test]
    fn guard_restores_on_drop() {
        let pool = WorkspacePool::new();
        {
            let mut guard = pool.checkout_guard();
            let b = guard.take_f64(16);
            assert_eq!(b.len(), 16);
            assert!(b.iter().all(|&v| v == 0.0));
            guard.give_f64(b);
            assert_eq!(pool.idle(), 0, "guard holds the workspace");
        }
        assert_eq!(pool.idle(), 1, "drop returned the workspace");
        let ws = pool.checkout();
        assert_eq!(ws.pooled_buffer_counts(), [0, 0, 0, 1]);
        assert!(ws.pooled_bytes() >= 16 * 8, "warm f64 buffer came back");
        pool.restore(ws);
    }

    #[test]
    fn pool_checkout_restore_round_trip() {
        let pool = WorkspacePool::new();
        let mut ws = pool.checkout();
        assert_eq!(pool.idle(), 0);
        let b = ws.take_f32(32);
        ws.give_f32(b);
        pool.restore(ws);
        assert_eq!(pool.idle(), 1);
        let ws = pool.checkout();
        assert!(ws.pooled_bytes() >= 32 * 4, "warm workspace came back");
        pool.restore(ws);
    }
}
