//! Reusable scratch-buffer arenas for allocation-free inference.
//!
//! A [`Workspace`] owns free lists of `f32`, `i32` and `u64` buffers.
//! Kernels *take* a buffer of the length they need (reusing a pooled
//! allocation when one is large enough) and *give* it back when done;
//! after a warm-up pass every take is served from the free list and the
//! steady state performs no heap allocation.  See DESIGN.md §"Workspace
//! and execution plan".
//!
//! A [`WorkspacePool`] is the `Sync` wrapper used by batch-parallel
//! callers: each worker checks a whole `Workspace` out, runs any number
//! of kernels with it, and returns it when the batch chunk is done.
//!
//! # Example
//!
//! ```
//! use hotspot_tensor::Workspace;
//!
//! let mut ws = Workspace::new();
//! let mut buf = ws.take_f32(1024); // zeroed, len == 1024
//! buf[0] = 1.0;
//! ws.give_f32(buf); // capacity returns to the pool
//! let again = ws.take_f32(512); // served from the pooled allocation
//! assert_eq!(again.len(), 512);
//! assert!(again.iter().all(|&v| v == 0.0));
//! ```

use std::error::Error;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A growable arena of reusable scratch buffers (see module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    f32_bufs: Vec<Vec<f32>>,
    i32_bufs: Vec<Vec<i32>>,
    u64_bufs: Vec<Vec<u64>>,
    f64_bufs: Vec<Vec<f64>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are allocated on first use
    /// and reused afterwards.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Total pooled capacity in bytes (diagnostic).
    pub fn pooled_bytes(&self) -> usize {
        self.f32_bufs
            .iter()
            .map(|b| b.capacity() * 4)
            .sum::<usize>()
            + self
                .i32_bufs
                .iter()
                .map(|b| b.capacity() * 4)
                .sum::<usize>()
            + self
                .u64_bufs
                .iter()
                .map(|b| b.capacity() * 8)
                .sum::<usize>()
            + self
                .f64_bufs
                .iter()
                .map(|b| b.capacity() * 8)
                .sum::<usize>()
    }

    /// Number of idle pooled buffers per element type, as
    /// `[f32, i32, u64, f64]` (diagnostic).  The steady-state count is
    /// the number of concurrently-live scratch buffers a workload
    /// needs, so regression tests can pin a kernel's working-set shape.
    pub fn pooled_buffer_counts(&self) -> [usize; 4] {
        [
            self.f32_bufs.len(),
            self.i32_bufs.len(),
            self.u64_bufs.len(),
            self.f64_bufs.len(),
        ]
    }
}

macro_rules! workspace_pool {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        impl Workspace {
            /// Takes a zeroed buffer of exactly `len` elements, reusing
            /// a pooled allocation when one with enough capacity
            /// exists.  Give it back with the matching `give_*` so the
            /// allocation is reused.
            pub fn $take(&mut self, len: usize) -> Vec<$t> {
                let mut buf = match self.$field.iter().position(|b| b.capacity() >= len) {
                    Some(i) => self.$field.swap_remove(i),
                    // Nothing fits: grow the largest pooled buffer (so
                    // repeated takes converge on one allocation per
                    // concurrent buffer) or start fresh.
                    None => {
                        match (0..self.$field.len()).max_by_key(|&i| self.$field[i].capacity()) {
                            Some(i) => self.$field.swap_remove(i),
                            None => Vec::new(),
                        }
                    }
                };
                buf.clear();
                buf.resize(len, 0 as $t);
                buf
            }

            /// Returns a buffer's allocation to the pool for reuse.
            pub fn $give(&mut self, buf: Vec<$t>) {
                if buf.capacity() > 0 {
                    self.$field.push(buf);
                }
            }
        }
    };
}

workspace_pool!(take_f32, give_f32, f32_bufs, f32);
workspace_pool!(take_i32, give_i32, i32_bufs, i32);
workspace_pool!(take_u64, give_u64, u64_bufs, u64);
workspace_pool!(take_f64, give_f64, f64_bufs, f64);

/// Checkout from a bounded [`WorkspacePool`] timed out: every
/// workspace stayed checked out for the whole wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolExhausted {
    /// The pool's checkout bound.
    pub max_outstanding: usize,
    /// How long the caller waited before giving up.
    pub waited: Duration,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workspace pool exhausted: all {} workspaces stayed checked out for {:?}",
            self.max_outstanding, self.waited
        )
    }
}

impl Error for PoolExhausted {}

#[derive(Debug, Default)]
struct PoolState {
    idle: Vec<Workspace>,
    /// Workspaces currently checked out (bounded pools only track this
    /// to enforce the cap; it is maintained for diagnostics either way).
    outstanding: usize,
}

/// A shared pool of [`Workspace`]s for batch-parallel inference: each
/// worker checks one out, runs its chunk, and returns it, so the warm
/// buffers survive across batches without any per-thread state.
///
/// By default the pool is *unbounded*: [`checkout`](Self::checkout)
/// never blocks and simply creates a fresh workspace when none is
/// idle.  A pool built with [`bounded`](Self::bounded) caps the number
/// of concurrently checked-out workspaces instead — under contention
/// `checkout` blocks until one is restored, and
/// [`checkout_timeout`](Self::checkout_timeout) returns a typed
/// [`PoolExhausted`] error rather than growing the working set without
/// limit.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    inner: Mutex<PoolState>,
    returned: Condvar,
    max_outstanding: Option<usize>,
}

impl WorkspacePool {
    /// Creates an empty, unbounded pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// Creates an empty pool capped at `max` concurrent checkouts.
    ///
    /// # Panics
    ///
    /// Panics when `max` is zero (such a pool could never serve a
    /// checkout).
    pub fn bounded(max: usize) -> Self {
        assert!(max > 0, "a bounded pool needs at least one workspace");
        WorkspacePool {
            inner: Mutex::new(PoolState::default()),
            returned: Condvar::new(),
            max_outstanding: Some(max),
        }
    }

    /// The checkout cap, or `None` for an unbounded pool.
    pub fn capacity(&self) -> Option<usize> {
        self.max_outstanding
    }

    /// Locks the pool state, recovering from poison: the state is a
    /// plain free list plus a counter, both valid at every instruction
    /// boundary, so a panic in another thread must not wedge every
    /// inference worker behind a poisoned mutex.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Checks a workspace out (a warm one when available).  On an
    /// unbounded pool this never blocks; on a bounded pool it waits —
    /// without limit — for a workspace to be restored once the cap is
    /// reached.  Serving-style callers that need a deadline should use
    /// [`checkout_timeout`](Self::checkout_timeout).
    pub fn checkout(&self) -> Workspace {
        let mut state = self.lock_state();
        if let Some(max) = self.max_outstanding {
            while state.idle.is_empty() && state.outstanding >= max {
                state = self.returned.wait(state).unwrap_or_else(|p| p.into_inner());
            }
        }
        state.outstanding += 1;
        state.idle.pop().unwrap_or_default()
    }

    /// Checks a workspace out, waiting at most `timeout` when a bounded
    /// pool is at its cap.
    ///
    /// # Errors
    ///
    /// Returns [`PoolExhausted`] when the cap held for the whole wait.
    /// On an unbounded pool this never fails.
    pub fn checkout_timeout(&self, timeout: Duration) -> Result<Workspace, PoolExhausted> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock_state();
        if let Some(max) = self.max_outstanding {
            while state.idle.is_empty() && state.outstanding >= max {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(PoolExhausted {
                        max_outstanding: max,
                        waited: timeout,
                    });
                }
                let (guard, _) = self
                    .returned
                    .wait_timeout(state, left)
                    .unwrap_or_else(|p| p.into_inner());
                state = guard;
            }
        }
        state.outstanding += 1;
        Ok(state.idle.pop().unwrap_or_default())
    }

    /// Returns a workspace to the pool and wakes one blocked checkout.
    pub fn restore(&self, ws: Workspace) {
        let mut state = self.lock_state();
        state.outstanding = state.outstanding.saturating_sub(1);
        state.idle.push(ws);
        drop(state);
        self.returned.notify_one();
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.lock_state().idle.len()
    }

    /// Number of workspaces currently checked out.
    pub fn outstanding(&self) -> usize {
        self.lock_state().outstanding
    }

    /// Checks a workspace out behind a guard that returns it to the
    /// pool on drop.  This is the shape `for_each_init`-style parallel
    /// loops need: each worker creates one guard up front, uses it for
    /// every item it processes, and the warm workspace flows back to
    /// the pool when the worker retires.
    pub fn checkout_guard(&self) -> WorkspaceGuard<'_> {
        WorkspaceGuard {
            ws: Some(self.checkout()),
            pool: self,
        }
    }
}

/// A checked-out [`Workspace`] that restores itself to its
/// [`WorkspacePool`] when dropped (see
/// [`WorkspacePool::checkout_guard`]).
#[derive(Debug)]
pub struct WorkspaceGuard<'p> {
    ws: Option<Workspace>,
    pool: &'p WorkspacePool,
}

impl std::ops::Deref for WorkspaceGuard<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for WorkspaceGuard<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for WorkspaceGuard<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.restore(ws);
        }
    }
}

/// The process-wide pool used by the allocating convenience wrappers
/// (`conv2d`, `PackedBnn::forward`, …) so even the non-`_into` API
/// reuses scratch memory across calls.
pub fn global_pool() -> &'static WorkspacePool {
    static POOL: std::sync::OnceLock<WorkspacePool> = std::sync::OnceLock::new();
    POOL.get_or_init(WorkspacePool::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_give() {
        let mut ws = Workspace::new();
        let mut b = ws.take_f32(8);
        b.iter_mut().for_each(|v| *v = 7.0);
        ws.give_f32(b);
        let b = ws.take_f32(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuses_allocation_when_capacity_suffices() {
        let mut ws = Workspace::new();
        let b = ws.take_f32(1000);
        let ptr = b.as_ptr();
        ws.give_f32(b);
        let b = ws.take_f32(500);
        assert_eq!(b.as_ptr(), ptr, "smaller take must reuse the pooled buffer");
        ws.give_f32(b);
        let b = ws.take_f32(1000);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn growing_take_recycles_largest_instead_of_accumulating() {
        let mut ws = Workspace::new();
        let b = ws.take_u64(16);
        ws.give_u64(b);
        let b = ws.take_u64(64); // must grow, not add a second pool entry
        ws.give_u64(b);
        assert_eq!(ws.u64_bufs.len(), 1);
        assert!(ws.u64_bufs[0].capacity() >= 64);
    }

    #[test]
    fn distinct_concurrent_takes_get_distinct_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take_i32(10);
        let b = ws.take_i32(10);
        assert_ne!(a.as_ptr(), b.as_ptr());
        ws.give_i32(a);
        ws.give_i32(b);
    }

    #[test]
    fn guard_restores_on_drop() {
        let pool = WorkspacePool::new();
        {
            let mut guard = pool.checkout_guard();
            let b = guard.take_f64(16);
            assert_eq!(b.len(), 16);
            assert!(b.iter().all(|&v| v == 0.0));
            guard.give_f64(b);
            assert_eq!(pool.idle(), 0, "guard holds the workspace");
        }
        assert_eq!(pool.idle(), 1, "drop returned the workspace");
        let ws = pool.checkout();
        assert_eq!(ws.pooled_buffer_counts(), [0, 0, 0, 1]);
        assert!(ws.pooled_bytes() >= 16 * 8, "warm f64 buffer came back");
        pool.restore(ws);
    }

    #[test]
    fn bounded_pool_times_out_with_typed_error_instead_of_growing() {
        let pool = WorkspacePool::bounded(1);
        assert_eq!(pool.capacity(), Some(1));
        let ws = pool.checkout();
        assert_eq!(pool.outstanding(), 1);
        // The cap is reached: a second checkout must fail with the
        // typed error rather than minting workspace #2.
        let err = pool
            .checkout_timeout(Duration::from_millis(10))
            .expect_err("cap must hold");
        assert_eq!(err.max_outstanding, 1);
        assert!(err.to_string().contains("exhausted"));
        assert_eq!(pool.outstanding(), 1, "failed checkout must not leak");
        pool.restore(ws);
        // After a restore the same call succeeds.
        let ws = pool
            .checkout_timeout(Duration::from_millis(10))
            .expect("restored workspace is available");
        pool.restore(ws);
    }

    #[test]
    fn bounded_pool_blocking_checkout_wakes_on_restore() {
        let pool = std::sync::Arc::new(WorkspacePool::bounded(1));
        let ws = pool.checkout();
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                // Blocks until the main thread restores.
                let ws = pool.checkout();
                pool.restore(ws);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        pool.restore(ws);
        waiter.join().expect("waiter must finish after restore");
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn unbounded_checkout_timeout_never_fails() {
        let pool = WorkspacePool::new();
        let a = pool.checkout_timeout(Duration::ZERO).expect("unbounded");
        let b = pool.checkout_timeout(Duration::ZERO).expect("unbounded");
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one workspace")]
    fn bounded_pool_rejects_zero_capacity() {
        let _ = WorkspacePool::bounded(0);
    }

    #[test]
    fn pool_recovers_from_poisoned_lock() {
        let pool = std::sync::Arc::new(WorkspacePool::bounded(2));
        // Poison the internal mutex: a thread panics while holding it.
        let p = pool.clone();
        let _ = std::thread::spawn(move || {
            let _guard = p.inner.lock().unwrap();
            panic!("poison the pool lock");
        })
        .join();
        assert!(pool.inner.is_poisoned(), "setup: lock must be poisoned");
        // Every entry point still works: the free list is valid at any
        // instruction boundary, so checkout/restore recover.
        let mut ws = pool.checkout();
        let buf = ws.take_f32(8);
        ws.give_f32(buf);
        pool.restore(ws);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.outstanding(), 0);
        let ws = pool
            .checkout_timeout(Duration::from_millis(5))
            .expect("poisoned pool must still serve checkouts");
        pool.restore(ws);
    }

    #[test]
    fn pool_checkout_restore_round_trip() {
        let pool = WorkspacePool::new();
        let mut ws = pool.checkout();
        assert_eq!(pool.idle(), 0);
        let b = ws.take_f32(32);
        ws.give_f32(b);
        pool.restore(ws);
        assert_eq!(pool.idle(), 1);
        let ws = pool.checkout();
        assert!(ws.pooled_bytes() >= 32 * 4, "warm workspace came back");
        pool.restore(ws);
    }
}
