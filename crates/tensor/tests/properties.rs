//! Property-based tests for the tensor substrate.

use hotspot_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward, global_avg_pool,
    global_avg_pool_backward, matmul, max_pool2d, max_pool2d_backward, Tensor,
};
use proptest::prelude::*;

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let numel: usize = shape.iter().product();
    prop::collection::vec(-2.0f32..2.0, numel).prop_map(move |v| Tensor::from_vec(shape, v))
}

proptest! {
    /// Matmul distributes over addition: (A + B)C == AC + BC.
    #[test]
    fn matmul_distributes(
        a in arb_tensor(&[4, 5]),
        b in arb_tensor(&[4, 5]),
        c in arb_tensor(&[5, 3]),
    ) {
        let lhs = matmul(&(&a + &b), &c);
        let rhs = &matmul(&a, &c) + &matmul(&b, &c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    /// Matmul is associative: (AB)C == A(BC).
    #[test]
    fn matmul_associates(
        a in arb_tensor(&[3, 4]),
        b in arb_tensor(&[4, 2]),
        c in arb_tensor(&[2, 5]),
    ) {
        let lhs = matmul(&matmul(&a, &b), &c);
        let rhs = matmul(&a, &matmul(&b, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    /// Convolution is linear in its input.
    #[test]
    fn conv_linear_in_input(
        x in arb_tensor(&[1, 2, 5, 5]),
        y in arb_tensor(&[1, 2, 5, 5]),
        w in arb_tensor(&[3, 2, 3, 3]),
        s in 0.1f32..3.0,
    ) {
        let combined = conv2d(&(&(&x * s) + &y), &w, None, 1, 1);
        let separate = &(&conv2d(&x, &w, None, 1, 1) * s) + &conv2d(&y, &w, None, 1, 1);
        for (a, b) in combined.as_slice().iter().zip(separate.as_slice()) {
            prop_assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
    }

    /// The conv backward pass is the adjoint of the forward pass:
    /// <conv(x), g> == <x, conv_backward(g).input>.
    #[test]
    fn conv_backward_is_adjoint(
        x in arb_tensor(&[1, 2, 5, 5]),
        w in arb_tensor(&[3, 2, 3, 3]),
        g in arb_tensor(&[1, 3, 5, 5]),
    ) {
        let out = conv2d(&x, &w, None, 1, 1);
        let lhs: f32 = out.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let grads = conv2d_backward(&x, &w, &g, 1, 1, false);
        let rhs: f32 = x.as_slice().iter().zip(grads.input.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 0.05 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Max pool output dominates avg pool output element-wise.
    #[test]
    fn max_dominates_avg(x in arb_tensor(&[2, 2, 4, 4])) {
        let (mx, _) = max_pool2d(&x, 2);
        let av = avg_pool2d(&x, 2);
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            prop_assert!(m >= a);
        }
    }

    /// Pooling backward passes conserve total gradient mass
    /// (sum of grad_in == sum of grad_out for max/avg/global-avg).
    #[test]
    fn pool_backward_conserves_mass(
        x in arb_tensor(&[1, 2, 4, 4]),
        g in arb_tensor(&[1, 2, 2, 2]),
        gg in arb_tensor(&[1, 2]),
    ) {
        let (_, argmax) = max_pool2d(&x, 2);
        let gi = max_pool2d_backward(x.shape(), &g, &argmax);
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-3);

        let gi2 = avg_pool2d_backward(x.shape(), &g, 2);
        prop_assert!((gi2.sum() - g.sum()).abs() < 1e-3);

        let _ = global_avg_pool(&x);
        let gi3 = global_avg_pool_backward(x.shape(), &gg);
        prop_assert!((gi3.sum() - gg.sum()).abs() < 1e-3);
    }

    /// Stack then batch_item round-trips.
    #[test]
    fn stack_batch_item_round_trip(
        a in arb_tensor(&[2, 3, 3]),
        b in arb_tensor(&[2, 3, 3]),
    ) {
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        prop_assert_eq!(s.shape(), &[2, 2, 3, 3]);
        prop_assert_eq!(s.batch_item(0), a.as_slice());
        prop_assert_eq!(s.batch_item(1), b.as_slice());
    }

    /// Norm identities: l1 >= l2, scaling is homogeneous.
    #[test]
    fn norm_identities(x in arb_tensor(&[16]), s in 0.0f32..4.0) {
        prop_assert!(x.l1_norm() + 1e-6 >= x.l2_norm());
        let scaled = &x * s;
        prop_assert!((scaled.l1_norm() - s * x.l1_norm()).abs() < 1e-3);
        prop_assert!((scaled.l2_norm() - s * x.l2_norm()).abs() < 1e-3);
    }
}
