//! AVX-512 kernels: native per-lane popcount via `vpopcntdq`.
//!
//! Unlike the SSSE3/AVX2 backends, which emulate popcount with a
//! `pshufb` nibble lookup plus `psadbw`, the `avx512vpopcntdq`
//! extension counts all eight `u64` lanes of a 512-bit register in a
//! single instruction.  The backend therefore requires **both**
//! `avx512f` and `avx512vpopcntdq`; CPUs with AVX-512 foundation but no
//! vector popcount (e.g. Skylake-X) fall back to AVX2, where the lookup
//! popcount is already well matched to the hardware.
//!
//! Every function is `unsafe` + `#[target_feature]`: callers (the
//! dispatchers in `kernels::mod` / `kernels::gemm`) must have verified
//! the features with `is_x86_feature_detected!`.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// # Safety
///
/// Requires AVX-512F + AVX-512VPOPCNTDQ (checked by the dispatcher).
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub unsafe fn xor_popcount_avx512(x: &[u64], y: &[u64]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    let mut total = _mm512_setzero_si512();
    let xc = x.chunks_exact(8);
    let yc = y.chunks_exact(8);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        let va = _mm512_loadu_si512(a.as_ptr() as *const __m512i);
        let vb = _mm512_loadu_si512(b.as_ptr() as *const __m512i);
        total = _mm512_add_epi64(total, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
    }
    let mut sum = _mm512_reduce_add_epi64(total) as u32;
    for (&a, &b) in xr.iter().zip(yr) {
        sum += (a ^ b).count_ones();
    }
    sum
}

/// Narrows eight u64 lane counts to eight i32 and adds them into `acc`.
///
/// # Safety
///
/// Requires AVX-512F; `acc` must have at least 8 elements.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn add_counts8_avx512(acc: *mut i32, cnt: __m512i) {
    let packed = _mm512_cvtepi64_epi32(cnt);
    let av = _mm256_loadu_si256(acc as *const __m256i);
    _mm256_storeu_si256(acc as *mut __m256i, _mm256_add_epi32(av, packed));
}

/// # Safety
///
/// Requires AVX-512F + AVX-512VPOPCNTDQ (checked by the dispatcher).
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub unsafe fn accum_xor_popcount_avx512(acc: &mut [i32], src: &[u64], w: u64) {
    debug_assert_eq!(acc.len(), src.len());
    let wv = _mm512_set1_epi64(w as i64);
    let sc = src.chunks_exact(8);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        let v = _mm512_loadu_si512(s.as_ptr() as *const __m512i);
        let cnt = _mm512_popcnt_epi64(_mm512_xor_si512(v, wv));
        add_counts8_avx512(acc.as_mut_ptr().add(done), cnt);
        done += 8;
    }
    for (a, &s) in acc[done..].iter_mut().zip(sr) {
        *a += (s ^ w).count_ones() as i32;
    }
}

/// # Safety
///
/// Requires AVX-512F + AVX-512VPOPCNTDQ (checked by the dispatcher).
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub unsafe fn accum_xor_popcount_x4_avx512(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    debug_assert!(a0.len() == src.len() && a1.len() == src.len());
    debug_assert!(a2.len() == src.len() && a3.len() == src.len());
    let wv = [
        _mm512_set1_epi64(ws[0] as i64),
        _mm512_set1_epi64(ws[1] as i64),
        _mm512_set1_epi64(ws[2] as i64),
        _mm512_set1_epi64(ws[3] as i64),
    ];
    let sc = src.chunks_exact(8);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        // One load feeds all four filters.
        let v = _mm512_loadu_si512(s.as_ptr() as *const __m512i);
        add_counts8_avx512(
            a0.as_mut_ptr().add(done),
            _mm512_popcnt_epi64(_mm512_xor_si512(v, wv[0])),
        );
        add_counts8_avx512(
            a1.as_mut_ptr().add(done),
            _mm512_popcnt_epi64(_mm512_xor_si512(v, wv[1])),
        );
        add_counts8_avx512(
            a2.as_mut_ptr().add(done),
            _mm512_popcnt_epi64(_mm512_xor_si512(v, wv[2])),
        );
        add_counts8_avx512(
            a3.as_mut_ptr().add(done),
            _mm512_popcnt_epi64(_mm512_xor_si512(v, wv[3])),
        );
        done += 8;
    }
    for (i, &s) in sr.iter().enumerate() {
        a0[done + i] += (s ^ ws[0]).count_ones() as i32;
        a1[done + i] += (s ^ ws[1]).count_ones() as i32;
        a2[done + i] += (s ^ ws[2]).count_ones() as i32;
        a3[done + i] += (s ^ ws[3]).count_ones() as i32;
    }
}

/// Register-blocked popcount-GEMM microkernel: for `FB ≤ 4` filters,
/// `acc[f*np + p] += Σ_j popcount(a[f*kwords + j] ^ b[j*np + p])`.
///
/// Processes 16 tile columns per outer iteration (two zmm registers
/// per filter), holding all `2·FB` accumulators in registers across the
/// whole `kwords` reduction — the B tile is streamed once per filter
/// block instead of being re-walked per reduction word.
///
/// # Safety
///
/// Requires AVX-512F + AVX-512VPOPCNTDQ; slice bounds as in
/// `PopcountGemm::gemm_block`.
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn gemm_block_fb_avx512<const FB: usize>(
    acc: &mut [i32],
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    let mut p = 0usize;
    while p + 16 <= np {
        let mut c0 = [_mm512_setzero_si512(); FB];
        let mut c1 = [_mm512_setzero_si512(); FB];
        for j in 0..kwords {
            let bp = b.as_ptr().add(j * np + p);
            let b0 = _mm512_loadu_si512(bp as *const __m512i);
            let b1 = _mm512_loadu_si512(bp.add(8) as *const __m512i);
            for f in 0..FB {
                let wv = _mm512_set1_epi64(*a.get_unchecked(f * kwords + j) as i64);
                c0[f] = _mm512_add_epi64(c0[f], _mm512_popcnt_epi64(_mm512_xor_si512(b0, wv)));
                c1[f] = _mm512_add_epi64(c1[f], _mm512_popcnt_epi64(_mm512_xor_si512(b1, wv)));
            }
        }
        for f in 0..FB {
            let ap = acc.as_mut_ptr().add(f * np + p);
            add_counts8_avx512(ap, c0[f]);
            add_counts8_avx512(ap.add(8), c1[f]);
        }
        p += 16;
    }
    if p + 8 <= np {
        let mut c0 = [_mm512_setzero_si512(); FB];
        for j in 0..kwords {
            let b0 = _mm512_loadu_si512(b.as_ptr().add(j * np + p) as *const __m512i);
            for (f, cf) in c0.iter_mut().enumerate() {
                let wv = _mm512_set1_epi64(*a.get_unchecked(f * kwords + j) as i64);
                *cf = _mm512_add_epi64(*cf, _mm512_popcnt_epi64(_mm512_xor_si512(b0, wv)));
            }
        }
        for (f, &cf) in c0.iter().enumerate() {
            add_counts8_avx512(acc.as_mut_ptr().add(f * np + p), cf);
        }
        p += 8;
    }
    while p < np {
        for f in 0..FB {
            let mut s = 0u32;
            for j in 0..kwords {
                s += (a[f * kwords + j] ^ b[j * np + p]).count_ones();
            }
            acc[f * np + p] += s as i32;
        }
        p += 1;
    }
}

/// Runtime-`fb` front for [`gemm_block_fb_avx512`].
///
/// # Safety
///
/// Requires AVX-512F + AVX-512VPOPCNTDQ (checked by the dispatcher).
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
pub unsafe fn gemm_block_avx512(
    acc: &mut [i32],
    fb: usize,
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    match fb {
        4 => gemm_block_fb_avx512::<4>(acc, a, b, np, kwords),
        3 => gemm_block_fb_avx512::<3>(acc, a, b, np, kwords),
        2 => gemm_block_fb_avx512::<2>(acc, a, b, np, kwords),
        _ => gemm_block_fb_avx512::<1>(acc, a, b, np, kwords),
    }
}

/// One channel of the fused affine + sign-pack + |v| mean pass
/// (`bitpack::pack_affine_mean_into`, single-word-channel layout):
/// per pixel `v = s·x + b`, OR `(v >= 0) << bit` into `data[p]`, add
/// `|v|` into `mean[p]`.  Sixteen pixels per iteration; the scalar
/// tail replays the identical op sequence, so results are bit-exact
/// against the portable loop (separate multiply and add — no FMA
/// contraction — and `_CMP_GE_OQ` matches Rust's `>=` on NaN and
/// `-0.0`).
///
/// # Safety
///
/// Requires AVX-512F (checked by the dispatcher); slices must share
/// one plane length.
#[target_feature(enable = "avx512f")]
pub unsafe fn pack_affine_channel_avx512(
    src: &[f32],
    s: f32,
    b: f32,
    bit: u32,
    data: &mut [u64],
    mean: &mut [f32],
) {
    debug_assert_eq!(src.len(), data.len());
    debug_assert_eq!(src.len(), mean.len());
    let plane = src.len();
    let sv = _mm512_set1_ps(s);
    let bv = _mm512_set1_ps(b);
    let absmask = _mm512_set1_epi32(0x7fff_ffff);
    let bitv = _mm512_set1_epi64(1i64 << bit);
    let zero = _mm512_setzero_ps();
    let mut p = 0usize;
    while p + 16 <= plane {
        let x = _mm512_loadu_ps(src.as_ptr().add(p));
        let v = _mm512_add_ps(_mm512_mul_ps(x, sv), bv);
        let va = _mm512_castsi512_ps(_mm512_and_si512(_mm512_castps_si512(v), absmask));
        let m = _mm512_loadu_ps(mean.as_ptr().add(p));
        _mm512_storeu_ps(mean.as_mut_ptr().add(p), _mm512_add_ps(m, va));
        let ge: u16 = _mm512_cmp_ps_mask(v, zero, _CMP_GE_OQ);
        let d0 = data.as_mut_ptr().add(p) as *mut __m512i;
        let d1 = data.as_mut_ptr().add(p + 8) as *mut __m512i;
        let w0 = _mm512_loadu_si512(d0 as *const __m512i);
        let w1 = _mm512_loadu_si512(d1 as *const __m512i);
        _mm512_storeu_si512(
            d0,
            _mm512_or_si512(w0, _mm512_maskz_mov_epi64((ge & 0xff) as u8, bitv)),
        );
        _mm512_storeu_si512(
            d1,
            _mm512_or_si512(w1, _mm512_maskz_mov_epi64((ge >> 8) as u8, bitv)),
        );
        p += 16;
    }
    while p < plane {
        let v = s * src[p] + b;
        data[p] |= ((v >= 0.0) as u64) << bit;
        mean[p] += v.abs();
        p += 1;
    }
}
