//! x86-64 SIMD kernels: `pshufb` nibble-lookup popcount.
//!
//! The popcount of a byte is the sum of the popcounts of its two
//! nibbles, and a 16-entry nibble→count table fits exactly in one
//! `pshufb` shuffle register.  Per vector: mask out the low nibbles,
//! shift+mask the high nibbles, look both up, add, then `psadbw`
//! against zero horizontally sums the byte counts into one u64 per
//! 64-bit lane.  This is the standard Muła lookup popcount; AVX2
//! processes four `u64` words per iteration, SSSE3 two.
//!
//! Every function is `unsafe` + `#[target_feature]`: callers (the
//! dispatchers in `kernels::mod`) must have verified the feature with
//! `is_x86_feature_detected!`.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Per-lane popcount of a 256-bit vector: returns four u64 counts.
///
/// # Safety
///
/// Requires AVX2.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcnt_epi64_avx2(v: __m256i) -> __m256i {
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low_mask);
    let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(cnt, _mm256_setzero_si256())
}

/// Per-lane popcount of a 128-bit vector: returns two u64 counts.
///
/// # Safety
///
/// Requires SSSE3.
#[inline]
#[target_feature(enable = "ssse3")]
unsafe fn popcnt_epi64_ssse3(v: __m128i) -> __m128i {
    let lut = _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    let low_mask = _mm_set1_epi8(0x0f);
    let lo = _mm_and_si128(v, low_mask);
    let hi = _mm_and_si128(_mm_srli_epi16(v, 4), low_mask);
    let cnt = _mm_add_epi8(_mm_shuffle_epi8(lut, lo), _mm_shuffle_epi8(lut, hi));
    _mm_sad_epu8(cnt, _mm_setzero_si128())
}

/// # Safety
///
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn xor_popcount_avx2(x: &[u64], y: &[u64]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    let mut total = _mm256_setzero_si256();
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr() as *const __m256i);
        total = _mm256_add_epi64(total, popcnt_epi64_avx2(_mm256_xor_si256(va, vb)));
    }
    let mut sum = (_mm256_extract_epi64(total, 0)
        + _mm256_extract_epi64(total, 1)
        + _mm256_extract_epi64(total, 2)
        + _mm256_extract_epi64(total, 3)) as u32;
    for (&a, &b) in xr.iter().zip(yr) {
        sum += (a ^ b).count_ones();
    }
    sum
}

/// # Safety
///
/// Requires SSSE3 (checked by the dispatcher).
#[target_feature(enable = "ssse3")]
pub unsafe fn xor_popcount_ssse3(x: &[u64], y: &[u64]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    let mut total = _mm_setzero_si128();
    let xc = x.chunks_exact(2);
    let yc = y.chunks_exact(2);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        let va = _mm_loadu_si128(a.as_ptr() as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr() as *const __m128i);
        total = _mm_add_epi64(total, popcnt_epi64_ssse3(_mm_xor_si128(va, vb)));
    }
    let lo = _mm_cvtsi128_si64(total) as u64;
    let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(total, total)) as u64;
    let mut sum = (lo + hi) as u32;
    for (&a, &b) in xr.iter().zip(yr) {
        sum += (a ^ b).count_ones();
    }
    sum
}

/// Narrows four u64 lane counts to four i32 and adds them into `acc`.
///
/// # Safety
///
/// Requires AVX2; `acc` must have at least 4 elements.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn add_counts4_avx2(acc: *mut i32, cnt: __m256i) {
    // Counts are < 2^32, so the low dword of each u64 lane carries the
    // whole value; gather dwords 0,2,4,6 into the low 128 bits.
    let idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    let packed = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(cnt, idx));
    let av = _mm_loadu_si128(acc as *const __m128i);
    _mm_storeu_si128(acc as *mut __m128i, _mm_add_epi32(av, packed));
}

/// Narrows two u64 lane counts to two i32 and adds them into `acc`.
///
/// # Safety
///
/// Requires SSSE3 (SSE2 suffices); `acc` must have at least 2 elements.
#[inline]
#[target_feature(enable = "ssse3")]
unsafe fn add_counts2_ssse3(acc: *mut i32, cnt: __m128i) {
    // Dwords [c0, 0, c1, 0] -> [c0, c1, _, _]; add the low 64 bits.
    let packed = _mm_shuffle_epi32(cnt, 0b00_00_10_00);
    let av = _mm_loadl_epi64(acc as *const __m128i);
    _mm_storel_epi64(acc as *mut __m128i, _mm_add_epi32(av, packed));
}

/// # Safety
///
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn accum_xor_popcount_avx2(acc: &mut [i32], src: &[u64], w: u64) {
    debug_assert_eq!(acc.len(), src.len());
    let wv = _mm256_set1_epi64x(w as i64);
    let sc = src.chunks_exact(4);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        let v = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
        let cnt = popcnt_epi64_avx2(_mm256_xor_si256(v, wv));
        add_counts4_avx2(acc.as_mut_ptr().add(done), cnt);
        done += 4;
    }
    for (a, &s) in acc[done..].iter_mut().zip(sr) {
        *a += (s ^ w).count_ones() as i32;
    }
}

/// # Safety
///
/// Requires SSSE3 (checked by the dispatcher).
#[target_feature(enable = "ssse3")]
pub unsafe fn accum_xor_popcount_ssse3(acc: &mut [i32], src: &[u64], w: u64) {
    debug_assert_eq!(acc.len(), src.len());
    let wv = _mm_set1_epi64x(w as i64);
    let sc = src.chunks_exact(2);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        let v = _mm_loadu_si128(s.as_ptr() as *const __m128i);
        let cnt = popcnt_epi64_ssse3(_mm_xor_si128(v, wv));
        add_counts2_ssse3(acc.as_mut_ptr().add(done), cnt);
        done += 2;
    }
    for (a, &s) in acc[done..].iter_mut().zip(sr) {
        *a += (s ^ w).count_ones() as i32;
    }
}

/// # Safety
///
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn accum_xor_popcount_x4_avx2(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    debug_assert!(a0.len() == src.len() && a1.len() == src.len());
    debug_assert!(a2.len() == src.len() && a3.len() == src.len());
    let wv = [
        _mm256_set1_epi64x(ws[0] as i64),
        _mm256_set1_epi64x(ws[1] as i64),
        _mm256_set1_epi64x(ws[2] as i64),
        _mm256_set1_epi64x(ws[3] as i64),
    ];
    let sc = src.chunks_exact(4);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        // One load feeds all four filters.
        let v = _mm256_loadu_si256(s.as_ptr() as *const __m256i);
        add_counts4_avx2(
            a0.as_mut_ptr().add(done),
            popcnt_epi64_avx2(_mm256_xor_si256(v, wv[0])),
        );
        add_counts4_avx2(
            a1.as_mut_ptr().add(done),
            popcnt_epi64_avx2(_mm256_xor_si256(v, wv[1])),
        );
        add_counts4_avx2(
            a2.as_mut_ptr().add(done),
            popcnt_epi64_avx2(_mm256_xor_si256(v, wv[2])),
        );
        add_counts4_avx2(
            a3.as_mut_ptr().add(done),
            popcnt_epi64_avx2(_mm256_xor_si256(v, wv[3])),
        );
        done += 4;
    }
    for (i, &s) in sr.iter().enumerate() {
        a0[done + i] += (s ^ ws[0]).count_ones() as i32;
        a1[done + i] += (s ^ ws[1]).count_ones() as i32;
        a2[done + i] += (s ^ ws[2]).count_ones() as i32;
        a3[done + i] += (s ^ ws[3]).count_ones() as i32;
    }
}

/// Register-blocked popcount-GEMM microkernel: for `FB ≤ 4` filters,
/// `acc[f*np + p] += Σ_j popcount(a[f*kwords + j] ^ b[j*np + p])`.
///
/// Processes 8 tile columns per outer iteration (two ymm registers per
/// filter), holding all `2·FB` u64-lane accumulators in registers
/// across the whole `kwords` reduction — the B tile is streamed once
/// per filter block instead of the accumulator row being re-loaded per
/// reduction word.
///
/// # Safety
///
/// Requires AVX2; slice bounds as in `PopcountGemm::gemm_block`.
#[target_feature(enable = "avx2")]
unsafe fn gemm_block_fb_avx2<const FB: usize>(
    acc: &mut [i32],
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    let mut p = 0usize;
    while p + 8 <= np {
        let mut c0 = [_mm256_setzero_si256(); FB];
        let mut c1 = [_mm256_setzero_si256(); FB];
        for j in 0..kwords {
            let bp = b.as_ptr().add(j * np + p);
            let b0 = _mm256_loadu_si256(bp as *const __m256i);
            let b1 = _mm256_loadu_si256(bp.add(4) as *const __m256i);
            for f in 0..FB {
                let wv = _mm256_set1_epi64x(*a.get_unchecked(f * kwords + j) as i64);
                c0[f] = _mm256_add_epi64(c0[f], popcnt_epi64_avx2(_mm256_xor_si256(b0, wv)));
                c1[f] = _mm256_add_epi64(c1[f], popcnt_epi64_avx2(_mm256_xor_si256(b1, wv)));
            }
        }
        for f in 0..FB {
            let ap = acc.as_mut_ptr().add(f * np + p);
            add_counts4_avx2(ap, c0[f]);
            add_counts4_avx2(ap.add(4), c1[f]);
        }
        p += 8;
    }
    if p + 4 <= np {
        let mut c0 = [_mm256_setzero_si256(); FB];
        for j in 0..kwords {
            let b0 = _mm256_loadu_si256(b.as_ptr().add(j * np + p) as *const __m256i);
            for (f, cf) in c0.iter_mut().enumerate() {
                let wv = _mm256_set1_epi64x(*a.get_unchecked(f * kwords + j) as i64);
                *cf = _mm256_add_epi64(*cf, popcnt_epi64_avx2(_mm256_xor_si256(b0, wv)));
            }
        }
        for (f, &cf) in c0.iter().enumerate() {
            add_counts4_avx2(acc.as_mut_ptr().add(f * np + p), cf);
        }
        p += 4;
    }
    while p < np {
        for f in 0..FB {
            let mut s = 0u32;
            for j in 0..kwords {
                s += (a[f * kwords + j] ^ b[j * np + p]).count_ones();
            }
            acc[f * np + p] += s as i32;
        }
        p += 1;
    }
}

/// Runtime-`fb` front for [`gemm_block_fb_avx2`].
///
/// # Safety
///
/// Requires AVX2 (checked by the dispatcher).
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_block_avx2(
    acc: &mut [i32],
    fb: usize,
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    match fb {
        4 => gemm_block_fb_avx2::<4>(acc, a, b, np, kwords),
        3 => gemm_block_fb_avx2::<3>(acc, a, b, np, kwords),
        2 => gemm_block_fb_avx2::<2>(acc, a, b, np, kwords),
        _ => gemm_block_fb_avx2::<1>(acc, a, b, np, kwords),
    }
}

/// # Safety
///
/// Requires SSSE3 (checked by the dispatcher).
#[target_feature(enable = "ssse3")]
pub unsafe fn accum_xor_popcount_x4_ssse3(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    debug_assert!(a0.len() == src.len() && a1.len() == src.len());
    debug_assert!(a2.len() == src.len() && a3.len() == src.len());
    let wv = [
        _mm_set1_epi64x(ws[0] as i64),
        _mm_set1_epi64x(ws[1] as i64),
        _mm_set1_epi64x(ws[2] as i64),
        _mm_set1_epi64x(ws[3] as i64),
    ];
    let sc = src.chunks_exact(2);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        let v = _mm_loadu_si128(s.as_ptr() as *const __m128i);
        add_counts2_ssse3(
            a0.as_mut_ptr().add(done),
            popcnt_epi64_ssse3(_mm_xor_si128(v, wv[0])),
        );
        add_counts2_ssse3(
            a1.as_mut_ptr().add(done),
            popcnt_epi64_ssse3(_mm_xor_si128(v, wv[1])),
        );
        add_counts2_ssse3(
            a2.as_mut_ptr().add(done),
            popcnt_epi64_ssse3(_mm_xor_si128(v, wv[2])),
        );
        add_counts2_ssse3(
            a3.as_mut_ptr().add(done),
            popcnt_epi64_ssse3(_mm_xor_si128(v, wv[3])),
        );
        done += 2;
    }
    for (i, &s) in sr.iter().enumerate() {
        a0[done + i] += (s ^ ws[0]).count_ones() as i32;
        a1[done + i] += (s ^ ws[1]).count_ones() as i32;
        a2[done + i] += (s ^ ws[2]).count_ones() as i32;
        a3[done + i] += (s ^ ws[3]).count_ones() as i32;
    }
}

/// One channel of the fused affine + sign-pack + |v| mean pass
/// (`bitpack::pack_affine_mean_into`, single-word-channel layout):
/// per pixel `v = s·x + b`, OR `(v >= 0) << bit` into `data[p]`, add
/// `|v|` into `mean[p]`.  Eight pixels per iteration — the `>= 0`
/// compare mask widens to two quadword halves via `vpmovsxdq` — and
/// the scalar tail replays the identical op sequence, so results are
/// bit-exact against the portable loop (separate multiply and add —
/// no FMA contraction — and `_CMP_GE_OQ` matches Rust's `>=` on NaN
/// and `-0.0`).
///
/// # Safety
///
/// Requires AVX2 (checked by the dispatcher); slices must share one
/// plane length.
#[target_feature(enable = "avx2")]
pub unsafe fn pack_affine_channel_avx2(
    src: &[f32],
    s: f32,
    b: f32,
    bit: u32,
    data: &mut [u64],
    mean: &mut [f32],
) {
    debug_assert_eq!(src.len(), data.len());
    debug_assert_eq!(src.len(), mean.len());
    let plane = src.len();
    let sv = _mm256_set1_ps(s);
    let bv = _mm256_set1_ps(b);
    let absmask = _mm256_set1_epi32(0x7fff_ffff);
    let bitv = _mm256_set1_epi64x(1i64 << bit);
    let zero = _mm256_setzero_ps();
    let mut p = 0usize;
    while p + 8 <= plane {
        let x = _mm256_loadu_ps(src.as_ptr().add(p));
        let v = _mm256_add_ps(_mm256_mul_ps(x, sv), bv);
        let va = _mm256_castsi256_ps(_mm256_and_si256(_mm256_castps_si256(v), absmask));
        let m = _mm256_loadu_ps(mean.as_ptr().add(p));
        _mm256_storeu_ps(mean.as_mut_ptr().add(p), _mm256_add_ps(m, va));
        // 8 lanes of all-ones/zero from the ordered >= compare, sign-
        // extended to u64 and ANDed with the channel bit.
        let ge = _mm256_castps_si256(_mm256_cmp_ps(v, zero, _CMP_GE_OQ));
        let lo = _mm256_and_si256(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(ge)), bitv);
        let hi = _mm256_and_si256(_mm256_cvtepi32_epi64(_mm256_extracti128_si256(ge, 1)), bitv);
        let d0 = data.as_mut_ptr().add(p) as *mut __m256i;
        let d1 = data.as_mut_ptr().add(p + 4) as *mut __m256i;
        let w0 = _mm256_loadu_si256(d0 as *const __m256i);
        let w1 = _mm256_loadu_si256(d1 as *const __m256i);
        _mm256_storeu_si256(d0, _mm256_or_si256(w0, lo));
        _mm256_storeu_si256(d1, _mm256_or_si256(w1, hi));
        p += 8;
    }
    while p < plane {
        let v = s * src[p] + b;
        data[p] |= ((v >= 0.0) as u64) << bit;
        mean[p] += v.abs();
        p += 1;
    }
}
