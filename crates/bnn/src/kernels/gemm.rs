//! The `PopcountGemm` backend trait: bit-sliced XNOR-GEMM blocks.
//!
//! The batched execution tier (see `packed::xnor_conv_gemm_levels`)
//! reshapes the binary convolution interior as a matrix product over
//! GF(2)-packed words: the **A** matrix holds each filter's
//! receptive-field bits densely repacked to `kwords` `u64`s per filter
//! (one row per filter × residual level), and the **B** matrix holds
//! `np` output pixels' densely repacked input windows, laid out
//! column-major by reduction word (`b[j*np + p]`) so one SIMD load
//! covers consecutive pixels.  A GEMM "block" computes
//!
//! ```text
//! acc[f*np + p] += Σ_{j < kwords} popcount(a[f*kwords + j] ^ b[j*np + p])
//! ```
//!
//! for a small filter block `fb ≤ 4` — the mismatch counts that the
//! caller's epilogue turns into `±1` dot products and fuses with the
//! per-channel affine/sign finalize.
//!
//! The trait has a correct default implementation in terms of the
//! span kernels ([`accum_xor_popcount_x4`] / [`accum_xor_popcount`]),
//! which the scalar, SWAR and SSSE3 backends use as-is.  AVX2, AVX-512
//! and NEON override [`PopcountGemm::gemm_block`] with register-blocked
//! microkernels that hold all `2·fb` vector accumulators in registers
//! across the whole `kwords` reduction instead of re-loading the
//! accumulator row once per reduction word.
//!
//! Backend selection piggybacks on [`KernelBackend`]: [`gemm_backend`]
//! maps the dispatched span backend to its GEMM counterpart, so
//! `HOTSPOT_KERNEL_BACKEND` forces both tiers together and the
//! bit-identity property tests cover the GEMM path for every backend.

use super::{accum_xor_popcount, accum_xor_popcount_x4, KernelBackend};

/// A popcount-GEMM implementation (one per [`KernelBackend`]).
///
/// All implementations compute identical integer counts; the property
/// tests in this module compare every available backend against a
/// plain triple loop.
pub trait PopcountGemm: Sync + Send {
    /// The span-kernel backend this GEMM tier belongs to (reporting).
    fn backend(&self) -> KernelBackend;

    /// `acc[f*np + p] += Σ_{j < kwords} popcount(a[f*kwords + j] ^
    /// b[j*np + p])` for `f < fb`.
    ///
    /// `fb` must be in `1..=4`; `acc` must hold at least `fb * np`
    /// elements, `a` at least `fb * kwords`, and `b` at least
    /// `kwords * np`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when a slice is shorter than the bounds above.
    fn gemm_block(
        &self,
        acc: &mut [i32],
        fb: usize,
        a: &[u64],
        b: &[u64],
        np: usize,
        kwords: usize,
    ) {
        debug_assert!((1..=4).contains(&fb));
        debug_assert!(acc.len() >= fb * np);
        debug_assert!(a.len() >= fb * kwords);
        debug_assert!(b.len() >= kwords * np);
        let backend = self.backend();
        if fb == 4 {
            let block = &mut acc[..4 * np];
            let (r0, rest) = block.split_at_mut(np);
            let (r1, rest) = rest.split_at_mut(np);
            let (r2, r3) = rest.split_at_mut(np);
            for j in 0..kwords {
                let src = &b[j * np..(j + 1) * np];
                let ws = [a[j], a[kwords + j], a[2 * kwords + j], a[3 * kwords + j]];
                accum_xor_popcount_x4(
                    backend,
                    [&mut r0[..], &mut r1[..], &mut r2[..], &mut r3[..]],
                    src,
                    ws,
                );
            }
        } else {
            for f in 0..fb {
                let row = &mut acc[f * np..(f + 1) * np];
                for j in 0..kwords {
                    accum_xor_popcount(backend, row, &b[j * np..(j + 1) * np], a[f * kwords + j]);
                }
            }
        }
    }
}

/// Reference GEMM: default impl over the scalar span kernels.
pub struct ScalarGemm;
impl PopcountGemm for ScalarGemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Scalar
    }
}

/// SWAR GEMM: default impl over the SWAR span kernels.
pub struct SwarGemm;
impl PopcountGemm for SwarGemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Swar
    }
}

/// SSSE3 GEMM: default impl over the SSSE3 span kernels.
#[cfg(target_arch = "x86_64")]
pub struct Ssse3Gemm;
#[cfg(target_arch = "x86_64")]
impl PopcountGemm for Ssse3Gemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Ssse3
    }
}

/// AVX2 GEMM: register-blocked microkernel (8 px × ≤4 filters).
#[cfg(target_arch = "x86_64")]
pub struct Avx2Gemm;
#[cfg(target_arch = "x86_64")]
impl PopcountGemm for Avx2Gemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Avx2
    }

    fn gemm_block(
        &self,
        acc: &mut [i32],
        fb: usize,
        a: &[u64],
        b: &[u64],
        np: usize,
        kwords: usize,
    ) {
        debug_assert!((1..=4).contains(&fb));
        debug_assert!(acc.len() >= fb * np);
        debug_assert!(a.len() >= fb * kwords);
        debug_assert!(b.len() >= kwords * np);
        // SAFETY: this struct is only handed out by `gemm_backend` for
        // a backend that passed `is_supported()` (AVX2 detected).
        unsafe { super::x86::gemm_block_avx2(acc, fb, a, b, np, kwords) }
    }
}

/// AVX-512 GEMM: native `vpopcntdq` microkernel (16 px × ≤4 filters).
#[cfg(target_arch = "x86_64")]
pub struct Avx512Gemm;
#[cfg(target_arch = "x86_64")]
impl PopcountGemm for Avx512Gemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Avx512
    }

    fn gemm_block(
        &self,
        acc: &mut [i32],
        fb: usize,
        a: &[u64],
        b: &[u64],
        np: usize,
        kwords: usize,
    ) {
        debug_assert!((1..=4).contains(&fb));
        debug_assert!(acc.len() >= fb * np);
        debug_assert!(a.len() >= fb * kwords);
        debug_assert!(b.len() >= kwords * np);
        // SAFETY: see `Avx2Gemm` — AVX-512F + AVX-512VPOPCNTDQ detected.
        unsafe { super::avx512::gemm_block_avx512(acc, fb, a, b, np, kwords) }
    }
}

/// NEON GEMM: `vcntq_u8` microkernel (4 px × ≤4 filters).
#[cfg(target_arch = "aarch64")]
pub struct NeonGemm;
#[cfg(target_arch = "aarch64")]
impl PopcountGemm for NeonGemm {
    fn backend(&self) -> KernelBackend {
        KernelBackend::Neon
    }

    fn gemm_block(
        &self,
        acc: &mut [i32],
        fb: usize,
        a: &[u64],
        b: &[u64],
        np: usize,
        kwords: usize,
    ) {
        debug_assert!((1..=4).contains(&fb));
        debug_assert!(acc.len() >= fb * np);
        debug_assert!(a.len() >= fb * kwords);
        debug_assert!(b.len() >= kwords * np);
        // SAFETY: NEON is baseline on AArch64.
        unsafe { super::neon::gemm_block_neon(acc, fb, a, b, np, kwords) }
    }
}

/// The GEMM tier for a dispatched span backend.
///
/// Total over all [`KernelBackend`] values; variants compiled out on
/// this architecture fall back to the scalar reference (they can never
/// be dispatched anyway, since `is_supported()` is false for them).
pub fn gemm_backend(backend: KernelBackend) -> &'static dyn PopcountGemm {
    match backend {
        KernelBackend::Scalar => &ScalarGemm,
        KernelBackend::Swar => &SwarGemm,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Ssse3 => &Ssse3Gemm,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => &Avx2Gemm,
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => &Avx512Gemm,
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => &NeonGemm,
        #[allow(unreachable_patterns)]
        _ => &ScalarGemm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s ^ (s >> 31)
            })
            .collect()
    }

    /// Plain triple-loop reference for `gemm_block`.
    fn reference(acc: &mut [i32], fb: usize, a: &[u64], b: &[u64], np: usize, kwords: usize) {
        for f in 0..fb {
            for p in 0..np {
                let mut s = 0u32;
                for j in 0..kwords {
                    s += (a[f * kwords + j] ^ b[j * np + p]).count_ones();
                }
                acc[f * np + p] += s as i32;
            }
        }
    }

    #[test]
    fn gemm_backends_match_reference() {
        // np values cover the vector widths and every tail length:
        // 16/8/4/2-lane main loops plus 1..3 scalar remainders.
        for &np in &[1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64] {
            for &kwords in &[1usize, 2, 3, 5, 9] {
                for fb in 1..=4usize {
                    let a = words(fb as u64 * 31 + kwords as u64, fb * kwords);
                    let b = words(np as u64 * 7 + 1, kwords * np);
                    let mut expect = vec![3i32; fb * np];
                    reference(&mut expect, fb, &a, &b, np, kwords);
                    for backend in KernelBackend::available() {
                        let gemm = gemm_backend(backend);
                        assert_eq!(gemm.backend(), backend);
                        let mut acc = vec![3i32; fb * np];
                        gemm.gemm_block(&mut acc, fb, &a, &b, np, kwords);
                        assert_eq!(
                            acc,
                            expect,
                            "{} np={np} kwords={kwords} fb={fb}",
                            backend.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_backend_is_total_over_all_backends() {
        for backend in [
            KernelBackend::Scalar,
            KernelBackend::Swar,
            KernelBackend::Ssse3,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ] {
            // Must not panic even for unsupported/foreign backends.
            let _ = gemm_backend(backend);
        }
    }
}
