//! AArch64 NEON kernels: byte-wise popcount via `vcntq_u8`.
//!
//! NEON has no per-`u64` popcount, but `CNT` counts every byte of a
//! 128-bit register at once; three pairwise widening adds
//! (`vpaddlq_u8 → u16`, `→ u32`, `→ u64`) collapse the byte counts back
//! into one count per `u64` lane.  For the span-total form the byte
//! counts accumulate in a `u16×8` register (each lane gains at most 16
//! per step, so thousands of iterations fit) and reduce once at the
//! end.
//!
//! NEON is baseline on AArch64, so this backend is always supported
//! there and never compiled elsewhere.  Every function still follows
//! the crate's `unsafe` + `#[target_feature]` kernel idiom.

#![cfg(target_arch = "aarch64")]

use std::arch::aarch64::*;

/// Per-`u64`-lane popcount of a 128-bit vector.
///
/// # Safety
///
/// Requires NEON (baseline on AArch64).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn popcnt_u64x2(v: uint8x16_t) -> uint64x2_t {
    vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))))
}

/// # Safety
///
/// Requires NEON (baseline on AArch64).
#[target_feature(enable = "neon")]
pub unsafe fn xor_popcount_neon(x: &[u64], y: &[u64]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc16 = vdupq_n_u16(0);
    let xc = x.chunks_exact(2);
    let yc = y.chunks_exact(2);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        let va = vld1q_u64(a.as_ptr());
        let vb = vld1q_u64(b.as_ptr());
        let cnt = vcntq_u8(vreinterpretq_u8_u64(veorq_u64(va, vb)));
        acc16 = vpadalq_u8(acc16, cnt);
    }
    let mut sum = vaddlvq_u16(acc16);
    for (&a, &b) in xr.iter().zip(yr) {
        sum += (a ^ b).count_ones();
    }
    sum
}

/// # Safety
///
/// Requires NEON (baseline on AArch64).
#[target_feature(enable = "neon")]
pub unsafe fn accum_xor_popcount_neon(acc: &mut [i32], src: &[u64], w: u64) {
    debug_assert_eq!(acc.len(), src.len());
    let wv = vdupq_n_u64(w);
    let sc = src.chunks_exact(2);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        let v = veorq_u64(vld1q_u64(s.as_ptr()), wv);
        let cnt = popcnt_u64x2(vreinterpretq_u8_u64(v));
        acc[done] += vgetq_lane_u64(cnt, 0) as i32;
        acc[done + 1] += vgetq_lane_u64(cnt, 1) as i32;
        done += 2;
    }
    for (a, &s) in acc[done..].iter_mut().zip(sr) {
        *a += (s ^ w).count_ones() as i32;
    }
}

/// # Safety
///
/// Requires NEON (baseline on AArch64).
#[target_feature(enable = "neon")]
pub unsafe fn accum_xor_popcount_x4_neon(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    debug_assert!(a0.len() == src.len() && a1.len() == src.len());
    debug_assert!(a2.len() == src.len() && a3.len() == src.len());
    let wv = [
        vdupq_n_u64(ws[0]),
        vdupq_n_u64(ws[1]),
        vdupq_n_u64(ws[2]),
        vdupq_n_u64(ws[3]),
    ];
    let sc = src.chunks_exact(2);
    let sr = sc.remainder();
    let mut done = 0;
    for s in sc {
        // One load feeds all four filters.
        let v = vld1q_u64(s.as_ptr());
        let c0 = popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(v, wv[0])));
        a0[done] += vgetq_lane_u64(c0, 0) as i32;
        a0[done + 1] += vgetq_lane_u64(c0, 1) as i32;
        let c1 = popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(v, wv[1])));
        a1[done] += vgetq_lane_u64(c1, 0) as i32;
        a1[done + 1] += vgetq_lane_u64(c1, 1) as i32;
        let c2 = popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(v, wv[2])));
        a2[done] += vgetq_lane_u64(c2, 0) as i32;
        a2[done + 1] += vgetq_lane_u64(c2, 1) as i32;
        let c3 = popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(v, wv[3])));
        a3[done] += vgetq_lane_u64(c3, 0) as i32;
        a3[done + 1] += vgetq_lane_u64(c3, 1) as i32;
        done += 2;
    }
    for (i, &s) in sr.iter().enumerate() {
        a0[done + i] += (s ^ ws[0]).count_ones() as i32;
        a1[done + i] += (s ^ ws[1]).count_ones() as i32;
        a2[done + i] += (s ^ ws[2]).count_ones() as i32;
        a3[done + i] += (s ^ ws[3]).count_ones() as i32;
    }
}

/// Register-blocked popcount-GEMM microkernel: for `FB ≤ 4` filters,
/// `acc[f*np + p] += Σ_j popcount(a[f*kwords + j] ^ b[j*np + p])`.
///
/// Processes 4 tile columns per outer iteration (two q registers per
/// filter), holding all `2·FB` `u64×2` accumulators in registers across
/// the whole `kwords` reduction.
///
/// # Safety
///
/// Requires NEON; slice bounds as in `PopcountGemm::gemm_block`.
#[target_feature(enable = "neon")]
unsafe fn gemm_block_fb_neon<const FB: usize>(
    acc: &mut [i32],
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    let mut p = 0usize;
    while p + 4 <= np {
        let mut c0 = [vdupq_n_u64(0); FB];
        let mut c1 = [vdupq_n_u64(0); FB];
        for j in 0..kwords {
            let bp = b.as_ptr().add(j * np + p);
            let b0 = vld1q_u64(bp);
            let b1 = vld1q_u64(bp.add(2));
            for f in 0..FB {
                let wv = vdupq_n_u64(*a.get_unchecked(f * kwords + j));
                c0[f] = vaddq_u64(c0[f], popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(b0, wv))));
                c1[f] = vaddq_u64(c1[f], popcnt_u64x2(vreinterpretq_u8_u64(veorq_u64(b1, wv))));
            }
        }
        for f in 0..FB {
            let base = f * np + p;
            acc[base] += vgetq_lane_u64(c0[f], 0) as i32;
            acc[base + 1] += vgetq_lane_u64(c0[f], 1) as i32;
            acc[base + 2] += vgetq_lane_u64(c1[f], 0) as i32;
            acc[base + 3] += vgetq_lane_u64(c1[f], 1) as i32;
        }
        p += 4;
    }
    while p < np {
        for f in 0..FB {
            let mut s = 0u32;
            for j in 0..kwords {
                s += (a[f * kwords + j] ^ b[j * np + p]).count_ones();
            }
            acc[f * np + p] += s as i32;
        }
        p += 1;
    }
}

/// Runtime-`fb` front for [`gemm_block_fb_neon`].
///
/// # Safety
///
/// Requires NEON (baseline on AArch64).
#[target_feature(enable = "neon")]
pub unsafe fn gemm_block_neon(
    acc: &mut [i32],
    fb: usize,
    a: &[u64],
    b: &[u64],
    np: usize,
    kwords: usize,
) {
    match fb {
        4 => gemm_block_fb_neon::<4>(acc, a, b, np, kwords),
        3 => gemm_block_fb_neon::<3>(acc, a, b, np, kwords),
        2 => gemm_block_fb_neon::<2>(acc, a, b, np, kwords),
        _ => gemm_block_fb_neon::<1>(acc, a, b, np, kwords),
    }
}
