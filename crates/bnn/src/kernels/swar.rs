//! Portable SWAR kernels: explicit bit-twiddling popcount with four
//! independent accumulator chains per iteration.
//!
//! Baseline x86-64 (no `-C target-cpu`) has no hardware `popcnt`, so
//! `u64::count_ones` already lowers to a SWAR sequence — the win here
//! comes from unrolling four words per iteration so the dependency
//! chains interleave (instruction-level parallelism), plus keeping the
//! byte-wise counts in registers.

/// Classic SWAR population count (exact for all inputs).
#[inline(always)]
fn popcnt64(x: u64) -> u32 {
    let x = x - ((x >> 1) & 0x5555_5555_5555_5555);
    let x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    let x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    (x.wrapping_mul(0x0101_0101_0101_0101) >> 56) as u32
}

pub fn xor_popcount(x: &[u64], y: &[u64]) -> u32 {
    let mut c0 = 0u32;
    let mut c1 = 0u32;
    let mut c2 = 0u32;
    let mut c3 = 0u32;
    let xc = x.chunks_exact(4);
    let yc = y.chunks_exact(4);
    let xr = xc.remainder();
    let yr = yc.remainder();
    for (a, b) in xc.zip(yc) {
        c0 += popcnt64(a[0] ^ b[0]);
        c1 += popcnt64(a[1] ^ b[1]);
        c2 += popcnt64(a[2] ^ b[2]);
        c3 += popcnt64(a[3] ^ b[3]);
    }
    for (&a, &b) in xr.iter().zip(yr) {
        c0 += popcnt64(a ^ b);
    }
    c0 + c1 + c2 + c3
}

pub fn accum_xor_popcount(acc: &mut [i32], src: &[u64], w: u64) {
    let ac = acc.chunks_exact_mut(4);
    let sc = src.chunks_exact(4);
    let sr = sc.remainder();
    let mut tail = 0;
    for (a, s) in ac.zip(sc) {
        a[0] += popcnt64(s[0] ^ w) as i32;
        a[1] += popcnt64(s[1] ^ w) as i32;
        a[2] += popcnt64(s[2] ^ w) as i32;
        a[3] += popcnt64(s[3] ^ w) as i32;
        tail += 4;
    }
    for (a, &s) in acc[tail..].iter_mut().zip(sr) {
        *a += popcnt64(s ^ w) as i32;
    }
}

pub fn accum_xor_popcount_x4(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    for (i, &s) in src.iter().enumerate() {
        a0[i] += popcnt64(s ^ ws[0]) as i32;
        a1[i] += popcnt64(s ^ ws[1]) as i32;
        a2[i] += popcnt64(s ^ ws[2]) as i32;
        a3[i] += popcnt64(s ^ ws[3]) as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::popcnt64;

    #[test]
    fn popcnt_matches_count_ones() {
        for x in [
            0u64,
            !0u64,
            1,
            1 << 63,
            0x5555_5555_5555_5555,
            0xdead_beef_f00d_cafe,
            0x8000_0000_0000_0001,
        ] {
            assert_eq!(popcnt64(x), x.count_ones());
        }
    }
}
