//! Reference kernels: one `u64` word at a time via `count_ones`.
//!
//! Always correct on every platform; the other backends are pinned to
//! these loops by the equivalence tests.

pub fn xor_popcount(x: &[u64], y: &[u64]) -> u32 {
    x.iter().zip(y).map(|(&a, &b)| (a ^ b).count_ones()).sum()
}

pub fn accum_xor_popcount(acc: &mut [i32], src: &[u64], w: u64) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += (s ^ w).count_ones() as i32;
    }
}

pub fn accum_xor_popcount_x4(acc: [&mut [i32]; 4], src: &[u64], ws: [u64; 4]) {
    let [a0, a1, a2, a3] = acc;
    for (i, &s) in src.iter().enumerate() {
        a0[i] += (s ^ ws[0]).count_ones() as i32;
        a1[i] += (s ^ ws[1]).count_ones() as i32;
        a2[i] += (s ^ ws[2]).count_ones() as i32;
        a3[i] += (s ^ ws[3]).count_ones() as i32;
    }
}
