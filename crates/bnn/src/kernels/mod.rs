//! Runtime-dispatched XNOR+popcount inner loops.
//!
//! The packed convolution spends essentially all of its time in two
//! tiny primitives over channel-packed `u64` words:
//!
//! * [`xor_popcount`] — total mismatch count between two equal-length
//!   word spans (the per-pixel inner product for multi-word channels);
//! * [`accum_xor_popcount`] / [`accum_xor_popcount_x4`] — for a run of
//!   stride-1 output pixels, `acc[i] += popcount(src[i] ^ w)` against a
//!   broadcast filter word (the single-word-per-pixel fast path; the
//!   `_x4` form reuses each loaded input word across four output
//!   filters).
//!
//! Six implementations exist, selected **once** per
//! [`ExecPlan`](crate::plan::ExecPlan) compile (not per call):
//!
//! * [`KernelBackend::Scalar`] — the always-correct reference:
//!   one-word-at-a-time `u64::count_ones` (compiles to hardware
//!   `popcnt` where available).
//! * [`KernelBackend::Swar`] — portable SWAR popcount, four
//!   independent accumulator chains per iteration for instruction-level
//!   parallelism.  Works on every architecture, but benches at parity
//!   with (or below) the scalar loop on CPUs with hardware popcount,
//!   so it is **never auto-detected** — it exists as a forceable
//!   portability fallback and test subject only.
//! * [`KernelBackend::Ssse3`] — `pshufb` nibble-lookup popcount on
//!   128-bit lanes (`std::arch`, gated by `is_x86_feature_detected!`).
//! * [`KernelBackend::Avx2`] — the same lookup on 256-bit lanes, four
//!   `u64` words per iteration.
//! * [`KernelBackend::Avx512`] — native per-lane popcount
//!   (`vpopcntdq`) on 512-bit lanes, eight `u64` words per iteration;
//!   requires both `avx512f` and `avx512vpopcntdq`.
//! * [`KernelBackend::Neon`] — AArch64 `vcntq_u8` byte popcount with
//!   pairwise widening reduction, two `u64` words per iteration.
//!
//! Each backend also carries a batched bit-sliced GEMM tier behind the
//! [`gemm::PopcountGemm`] trait (see `kernels/gemm.rs`): the forced /
//! detected [`KernelBackend`] selects both the span kernels below and
//! the GEMM microkernel together.
//!
//! All backends compute identical integer counts, so every backend
//! produces **bit-identical logits** (enforced by the
//! `kernel_backends_*` property tests).  [`active_backend`] picks the
//! best supported backend at first use; the `HOTSPOT_KERNEL_BACKEND`
//! environment variable
//! (`scalar`/`swar`/`ssse3`/`avx2`/`avx512`/`neon`) overrides the
//! choice for benchmarking and CI equivalence runs.

#[cfg(target_arch = "x86_64")]
mod avx512;
pub mod gemm;
pub mod geom;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;
mod swar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use gemm::{gemm_backend, PopcountGemm};
pub use geom::ConvGeometry;

use std::sync::OnceLock;

/// One of the compiled-in XNOR kernel implementations (see module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// One-word-at-a-time reference loop.
    Scalar,
    /// Portable SWAR popcount, 4 `u64` lanes per iteration for ILP.
    Swar,
    /// SSE `pshufb` nibble-lookup popcount (x86-64 only).
    Ssse3,
    /// AVX2 nibble-lookup popcount, 4 `u64` words per vector
    /// (x86-64 only).
    Avx2,
    /// AVX-512 native `vpopcntdq` popcount, 8 `u64` words per vector
    /// (x86-64 only; needs `avx512f` + `avx512vpopcntdq`).
    Avx512,
    /// AArch64 NEON `vcntq_u8` byte popcount, 2 `u64` words per vector
    /// (aarch64 only).
    Neon,
}

impl KernelBackend {
    /// Stable lowercase name (also the `HOTSPOT_KERNEL_BACKEND`
    /// spelling).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Swar => "swar",
            KernelBackend::Ssse3 => "ssse3",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Neon => "neon",
        }
    }

    /// Parses a backend name as spelled by [`KernelBackend::name`].
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "swar" => Some(KernelBackend::Swar),
            "ssse3" => Some(KernelBackend::Ssse3),
            "avx2" => Some(KernelBackend::Avx2),
            "avx512" => Some(KernelBackend::Avx512),
            "neon" => Some(KernelBackend::Neon),
            _ => None,
        }
    }

    /// `u64` words processed per inner-loop iteration (reporting).
    pub fn u64_lanes(self) -> usize {
        match self {
            KernelBackend::Scalar => 1,
            KernelBackend::Swar | KernelBackend::Avx2 => 4,
            KernelBackend::Ssse3 | KernelBackend::Neon => 2,
            KernelBackend::Avx512 => 8,
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar | KernelBackend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every backend the current CPU supports, reference first.
    pub fn available() -> Vec<KernelBackend> {
        [
            KernelBackend::Scalar,
            KernelBackend::Swar,
            KernelBackend::Ssse3,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ]
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
    }

    /// The best supported backend on this CPU.
    ///
    /// Preference order: AVX-512 > AVX2 > SSSE3 > NEON > scalar.  SWAR
    /// is deliberately absent — it benches at or below the scalar loop
    /// on hardware with native popcount (see BENCH_kernels.json), so
    /// auto-detection never picks it; it remains forceable via
    /// `HOTSPOT_KERNEL_BACKEND=swar`.
    pub fn detect() -> KernelBackend {
        [
            KernelBackend::Avx512,
            KernelBackend::Avx2,
            KernelBackend::Ssse3,
            KernelBackend::Neon,
        ]
        .into_iter()
        .find(|b| b.is_supported())
        .unwrap_or(KernelBackend::Scalar)
    }
}

/// Resolves a `HOTSPOT_KERNEL_BACKEND` override (`None` = unset) to
/// the backend to dispatch, falling back to [`KernelBackend::detect`]
/// on an unusable value.  Every fallback is reported twice: as a
/// structured `kernels.backend_fallback` telemetry event (so headless
/// runs surface the misconfiguration to whatever subscriber is
/// installed) and as a stderr line for interactive use.
fn resolve_backend(requested: Option<&str>) -> KernelBackend {
    let Some(name) = requested else {
        return KernelBackend::detect();
    };
    let fallback = |reason: &'static str| {
        let detected = KernelBackend::detect();
        hotspot_telemetry::trace::dispatch_event(
            "kernels.backend_fallback",
            &[
                ("requested", hotspot_telemetry::Value::from(name)),
                ("reason", hotspot_telemetry::Value::from(reason)),
                ("using", hotspot_telemetry::Value::from(detected.name())),
            ],
        );
        detected
    };
    match KernelBackend::parse(name) {
        Some(b) if b.is_supported() => b,
        Some(b) => {
            let detected = fallback("unsupported_on_cpu");
            eprintln!(
                "HOTSPOT_KERNEL_BACKEND={} not supported on this CPU; using {}",
                b.name(),
                detected.name()
            );
            detected
        }
        None => {
            let detected = fallback("unrecognized_value");
            eprintln!(
                "unknown HOTSPOT_KERNEL_BACKEND={name:?}; using {}",
                detected.name()
            );
            detected
        }
    }
}

/// The process-wide dispatched backend: `HOTSPOT_KERNEL_BACKEND` when
/// set to a supported backend name, otherwise [`KernelBackend::detect`]
/// — resolved once and cached.  An unrecognized or unsupported value
/// emits a `kernels.backend_fallback` telemetry event instead of being
/// silently replaced by auto-detection.
pub fn active_backend() -> KernelBackend {
    static ACTIVE: OnceLock<KernelBackend> = OnceLock::new();
    *ACTIVE.get_or_init(|| resolve_backend(std::env::var("HOTSPOT_KERNEL_BACKEND").ok().as_deref()))
}

/// Total popcount of `x[i] ^ y[i]` over two equal-length word spans.
///
/// # Panics
///
/// Panics (debug) when the lengths differ.
#[inline]
pub fn xor_popcount(backend: KernelBackend, x: &[u64], y: &[u64]) -> u32 {
    debug_assert_eq!(x.len(), y.len());
    match backend {
        KernelBackend::Scalar => scalar::xor_popcount(x, y),
        KernelBackend::Swar => swar::xor_popcount(x, y),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: backends are only selected when
        // `is_x86_feature_detected!` confirmed the feature.
        KernelBackend::Ssse3 => unsafe { x86::xor_popcount_ssse3(x, y) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe { x86::xor_popcount_avx2(x, y) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe { avx512::xor_popcount_avx512(x, y) },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::xor_popcount_neon(x, y) },
        // Foreign-architecture variants can never be dispatched
        // (`is_supported()` is false); keep the match total.
        #[allow(unreachable_patterns)]
        _ => scalar::xor_popcount(x, y),
    }
}

/// `acc[i] += popcount(src[i] ^ w)` over a run of stride-1 pixels.
///
/// # Panics
///
/// Panics (debug) when the lengths differ.
#[inline]
pub fn accum_xor_popcount(backend: KernelBackend, acc: &mut [i32], src: &[u64], w: u64) {
    debug_assert_eq!(acc.len(), src.len());
    match backend {
        KernelBackend::Scalar => scalar::accum_xor_popcount(acc, src, w),
        KernelBackend::Swar => swar::accum_xor_popcount(acc, src, w),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `xor_popcount`.
        KernelBackend::Ssse3 => unsafe { x86::accum_xor_popcount_ssse3(acc, src, w) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe { x86::accum_xor_popcount_avx2(acc, src, w) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe { avx512::accum_xor_popcount_avx512(acc, src, w) },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::accum_xor_popcount_neon(acc, src, w) },
        #[allow(unreachable_patterns)]
        _ => scalar::accum_xor_popcount(acc, src, w),
    }
}

/// Four-filter form of [`accum_xor_popcount`]: each loaded input word
/// is XNOR-accumulated against four filter words into four accumulator
/// rows (the filter-blocked interior loop).
///
/// # Panics
///
/// Panics (debug) when any accumulator length differs from `src`.
#[inline]
pub fn accum_xor_popcount_x4(
    backend: KernelBackend,
    acc: [&mut [i32]; 4],
    src: &[u64],
    ws: [u64; 4],
) {
    debug_assert!(acc.iter().all(|a| a.len() == src.len()));
    match backend {
        KernelBackend::Scalar => scalar::accum_xor_popcount_x4(acc, src, ws),
        KernelBackend::Swar => swar::accum_xor_popcount_x4(acc, src, ws),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: see `xor_popcount`.
        KernelBackend::Ssse3 => unsafe { x86::accum_xor_popcount_x4_ssse3(acc, src, ws) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx2 => unsafe { x86::accum_xor_popcount_x4_avx2(acc, src, ws) },
        #[cfg(target_arch = "x86_64")]
        KernelBackend::Avx512 => unsafe { avx512::accum_xor_popcount_x4_avx512(acc, src, ws) },
        #[cfg(target_arch = "aarch64")]
        KernelBackend::Neon => unsafe { neon::accum_xor_popcount_x4_neon(acc, src, ws) },
        #[allow(unreachable_patterns)]
        _ => scalar::accum_xor_popcount_x4(acc, src, ws),
    }
}

/// Backend-dispatched form of
/// [`pack_affine_mean_into`](crate::bitpack::pack_affine_mean_into):
/// the fused batch-norm affine + sign-pack + `|v|` channel-mean pass
/// that fronts every scaled packed convolution.  On AVX2/AVX-512 with
/// single-word channels (`c <= 64`) the per-pixel loop runs 8/16 f32
/// lanes wide; every other backend or layout falls through to the
/// portable loop.
///
/// Bit-exact by construction: the channel loop stays outer and
/// in-order (each pixel's mean accumulates channels ascending, as the
/// portable pass does), the vector bodies use separate multiply and
/// add (no FMA contraction), `|v|` is the same sign-bit clear, and the
/// `>= 0` compare is ordered-quiet — so packed words and mean f32s are
/// identical to the scalar reference on every input including NaN and
/// `-0.0` (covered by the `pack_affine_mean_backends_bit_identical`
/// test).
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn pack_affine_mean(
    backend: KernelBackend,
    item: &[f32],
    c: usize,
    h: usize,
    w: usize,
    scale: &[f32],
    shift: &[f32],
    data: &mut [u64],
    mean: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if c <= 64 && matches!(backend, KernelBackend::Avx2 | KernelBackend::Avx512) {
        let plane = h * w;
        assert_eq!(item.len(), c * plane, "source length mismatch");
        assert_eq!(data.len(), plane, "packed buffer length mismatch");
        assert_eq!(mean.len(), plane, "mean buffer length mismatch");
        assert!(
            scale.len() == c && shift.len() == c,
            "one affine per channel"
        );
        data.fill(0);
        mean.fill(0.0);
        for ci in 0..c {
            let src = &item[ci * plane..(ci + 1) * plane];
            // SAFETY: backends are only selected when
            // `is_x86_feature_detected!` confirmed the feature.
            match backend {
                KernelBackend::Avx512 => unsafe {
                    avx512::pack_affine_channel_avx512(
                        src, scale[ci], shift[ci], ci as u32, data, mean,
                    )
                },
                _ => unsafe {
                    x86::pack_affine_channel_avx2(src, scale[ci], shift[ci], ci as u32, data, mean)
                },
            }
        }
        let inv_c = 1.0 / c as f32;
        for m in mean.iter_mut() {
            *m *= inv_c;
        }
        return;
    }
    let _ = backend;
    crate::bitpack::pack_affine_mean_into(item, c, h, w, scale, shift, data, mean);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s ^ (s >> 31)
            })
            .collect()
    }

    #[test]
    fn resolve_backend_reports_bad_values_via_telemetry() {
        use hotspot_telemetry::{trace, CollectingSubscriber, Record};
        use std::sync::Arc;

        // Unset and valid values resolve silently.
        assert_eq!(resolve_backend(None), KernelBackend::detect());
        assert_eq!(resolve_backend(Some("scalar")), KernelBackend::Scalar);

        let sink = Arc::new(CollectingSubscriber::new());
        let prev = trace::set_subscriber(sink.clone());
        let resolved = resolve_backend(Some("quantum"));
        match prev {
            Some(p) => {
                trace::set_subscriber(p);
            }
            None => {
                trace::clear_subscriber();
            }
        }
        assert_eq!(resolved, KernelBackend::detect());
        let fallback_events: Vec<_> = sink
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event { name, fields, .. } if name == "kernels.backend_fallback" => {
                    Some(fields)
                }
                _ => None,
            })
            .collect();
        assert_eq!(fallback_events.len(), 1, "exactly one fallback event");
        let fields = &fallback_events[0];
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| format!("{v:?}"))
                .unwrap_or_default()
        };
        assert!(get("requested").contains("quantum"), "{fields:?}");
        assert!(get("reason").contains("unrecognized_value"), "{fields:?}");
    }

    #[test]
    fn backends_match_scalar_on_random_spans() {
        let x = words(1, 257);
        let y = words(2, 257);
        let expect = xor_popcount(KernelBackend::Scalar, &x, &y);
        for backend in KernelBackend::available() {
            for len in [0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 255, 257] {
                let e = xor_popcount(KernelBackend::Scalar, &x[..len], &y[..len]);
                assert_eq!(
                    xor_popcount(backend, &x[..len], &y[..len]),
                    e,
                    "{} len {len}",
                    backend.name()
                );
            }
            assert_eq!(xor_popcount(backend, &x, &y), expect, "{}", backend.name());
        }
    }

    #[test]
    fn accum_backends_match_scalar() {
        let src = words(3, 133);
        let w = 0xdead_beef_f00d_cafe;
        let mut expect = vec![5i32; src.len()];
        accum_xor_popcount(KernelBackend::Scalar, &mut expect, &src, w);
        for backend in KernelBackend::available() {
            let mut acc = vec![5i32; src.len()];
            accum_xor_popcount(backend, &mut acc, &src, w);
            assert_eq!(acc, expect, "{}", backend.name());
        }
    }

    #[test]
    fn accum_x4_matches_four_single_accums() {
        let src = words(4, 67);
        let ws4 = [1u64, !0u64, 0x5555_5555_5555_5555, 0x0123_4567_89ab_cdef];
        let mut expect = vec![vec![0i32; src.len()]; 4];
        for (f, e) in expect.iter_mut().enumerate() {
            accum_xor_popcount(KernelBackend::Scalar, e, &src, ws4[f]);
        }
        for backend in KernelBackend::available() {
            let mut acc = vec![vec![0i32; src.len()]; 4];
            let [a0, a1, a2, a3] = &mut acc[..] else {
                unreachable!()
            };
            accum_xor_popcount_x4(backend, [a0, a1, a2, a3], &src, ws4);
            assert_eq!(acc, expect, "{}", backend.name());
        }
    }

    #[test]
    fn pack_affine_mean_backends_bit_identical() {
        // Shapes chosen to exercise the vector body, the scalar tail
        // (plane % 16 != 0), the channel-bit sweep, and the multi-word
        // fallback (c > 64); values cross zero and include -0.0 and
        // exact zeros so the ordered >= compare is pinned down.
        for (c, h, w) in [(1, 7, 9), (3, 16, 16), (8, 13, 5), (64, 4, 5), (65, 3, 3)] {
            let plane = h * w;
            let mut s = 0x9e3779b97f4a7c15u64;
            let mut nextf = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as i32 % 1000) as f32 / 250.0 - 2.0
            };
            let mut item: Vec<f32> = (0..c * plane).map(|_| nextf()).collect();
            item[0] = -0.0;
            item[plane / 2] = 0.0;
            let scale: Vec<f32> = (0..c).map(|_| nextf().abs() + 0.1).collect();
            let shift: Vec<f32> = (0..c).map(|_| nextf() * 0.2).collect();
            let wpp = c.div_ceil(64);
            let mut edata = vec![!0u64; plane * wpp];
            let mut emean = vec![9.0f32; plane];
            crate::bitpack::pack_affine_mean_into(
                &item, c, h, w, &scale, &shift, &mut edata, &mut emean,
            );
            for backend in KernelBackend::available() {
                let mut data = vec![!0u64; plane * wpp];
                let mut mean = vec![9.0f32; plane];
                pack_affine_mean(
                    backend, &item, c, h, w, &scale, &shift, &mut data, &mut mean,
                );
                assert_eq!(data, edata, "{} c={c} {h}x{w} words", backend.name());
                let eb: Vec<u32> = emean.iter().map(|v| v.to_bits()).collect();
                let mb: Vec<u32> = mean.iter().map(|v| v.to_bits()).collect();
                assert_eq!(mb, eb, "{} c={c} {h}x{w} mean", backend.name());
            }
        }
    }

    #[test]
    fn detect_is_supported_and_named() {
        let b = KernelBackend::detect();
        assert!(b.is_supported());
        assert_eq!(KernelBackend::parse(b.name()), Some(b));
        assert!(KernelBackend::available().contains(&KernelBackend::Scalar));
        assert!(active_backend().is_supported());
        assert!(b.u64_lanes() >= 1);
    }
}
