//! Precomputed, geometry-only convolution tables.
//!
//! Everything in here depends only on the shapes `(c, h, w, kh, kw,
//! stride, pad)` — never on weights or activations — so a
//! [`ConvGeometry`] is computed once per `Step::Conv` at plan-compile
//! time and shared across every batch item, filter, and forward call.
//! Previously `xnor_plane` rebuilt the `taps_hit` table and the
//! per-tap output ranges on every single (batch, filter) plane.

/// The output rectangle whose every pixel sees all `kh·kw` taps in
/// bounds (no padding).  Half-open: rows `oy0..oy1`, cols `ox0..ox1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interior {
    pub oy0: usize,
    pub oy1: usize,
    pub ox0: usize,
    pub ox1: usize,
}

/// Per-tap valid output range: tap `(ky, kx)` touches an in-bounds
/// input pixel exactly for `oy` in `oy_lo..oy_hi` and `ox` in
/// `ox_lo..ox_hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapRange {
    pub oy_lo: usize,
    pub oy_hi: usize,
    pub ox_lo: usize,
    pub ox_hi: usize,
}

/// Shape-derived tables for one packed convolution (see module docs).
#[derive(Debug, Clone)]
pub struct ConvGeometry {
    pub c: usize,
    pub h: usize,
    pub w: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
    pub oh: usize,
    pub ow: usize,
    /// Packed words per pixel: `c.div_ceil(64)`.
    pub wpp: usize,
    taps_hit: Vec<i32>,
    tap_ranges: Vec<TapRange>,
    interior: Option<Interior>,
}

impl ConvGeometry {
    /// Builds the tables for one conv shape.
    ///
    /// # Panics
    ///
    /// Panics when `stride == 0`, when a kernel dimension is zero, or
    /// when the padded input is smaller than the kernel.
    pub fn new(
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(kh > 0 && kw > 0, "kernel dims must be positive");
        assert!(
            h + 2 * pad >= kh && w + 2 * pad >= kw,
            "kernel larger than padded input"
        );
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (w + 2 * pad - kw) / stride + 1;

        // Per-tap valid output ranges: oy*stride + ky - pad in [0, h).
        let range = |k: usize, dim: usize, out: usize| {
            let lo = pad.saturating_sub(k).div_ceil(stride);
            let hi = if dim + pad > k {
                ((dim + pad - k - 1) / stride + 1).min(out)
            } else {
                0
            };
            (lo, hi.max(lo))
        };
        let mut tap_ranges = Vec::with_capacity(kh * kw);
        for ky in 0..kh {
            let (oy_lo, oy_hi) = range(ky, h, oh);
            for kx in 0..kw {
                let (ox_lo, ox_hi) = range(kx, w, ow);
                tap_ranges.push(TapRange {
                    oy_lo,
                    oy_hi,
                    ox_lo,
                    ox_hi,
                });
            }
        }

        // taps_hit is separable: (valid ky count) x (valid kx count).
        let valid = |k_dim: usize, dim: usize, o: usize| -> i32 {
            (0..k_dim)
                .filter(|&k| {
                    let i = o * stride + k;
                    i >= pad && i - pad < dim
                })
                .count() as i32
        };
        let vy: Vec<i32> = (0..oh).map(|oy| valid(kh, h, oy)).collect();
        let vx: Vec<i32> = (0..ow).map(|ox| valid(kw, w, ox)).collect();
        let mut taps_hit = Vec::with_capacity(oh * ow);
        for &y in &vy {
            for &x in &vx {
                taps_hit.push(y * x);
            }
        }

        // Interior: oy*stride >= pad and oy*stride + kh - pad <= h.
        let axis = |k_dim: usize, dim: usize, o: usize| {
            let lo = pad.div_ceil(stride);
            let hi = if dim + pad >= k_dim {
                ((dim + pad - k_dim) / stride + 1).min(o)
            } else {
                0
            };
            (lo, hi)
        };
        let (oy0, oy1) = axis(kh, h, oh);
        let (ox0, ox1) = axis(kw, w, ow);
        let interior = (oy0 < oy1 && ox0 < ox1).then_some(Interior { oy0, oy1, ox0, ox1 });

        ConvGeometry {
            c,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
            oh,
            ow,
            wpp: c.div_ceil(64),
            taps_hit,
            tap_ranges,
            interior,
        }
    }

    /// Number of in-bounds taps for every output pixel (`oh*ow`).
    pub fn taps_hit(&self) -> &[i32] {
        &self.taps_hit
    }

    /// Valid output range of tap `(ky, kx)`.
    pub fn tap_range(&self, ky: usize, kx: usize) -> TapRange {
        self.tap_ranges[ky * self.kw + kx]
    }

    /// The fully-in-bounds output rectangle, when non-empty.
    pub fn interior(&self) -> Option<Interior> {
        self.interior
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference for every derived table.
    fn check(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) {
        let g = ConvGeometry::new(c, h, w, k, k, stride, pad);
        assert_eq!(g.oh, (h + 2 * pad - k) / stride + 1);
        assert_eq!(g.ow, (w + 2 * pad - k) / stride + 1);
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let mut hits = 0;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let inb = iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w;
                        if inb {
                            hits += 1;
                        }
                        let r = g.tap_range(ky, kx);
                        assert_eq!(
                            inb,
                            (r.oy_lo..r.oy_hi).contains(&oy) && (r.ox_lo..r.ox_hi).contains(&ox),
                            "tap range ({ky},{kx}) at ({oy},{ox}) h={h} w={w} k={k} s={stride} p={pad}"
                        );
                    }
                }
                assert_eq!(g.taps_hit()[oy * g.ow + ox], hits);
                let interior_says = g
                    .interior()
                    .map(|i| (i.oy0..i.oy1).contains(&oy) && (i.ox0..i.ox1).contains(&ox))
                    .unwrap_or(false);
                assert_eq!(
                    interior_says,
                    hits == (k * k) as i32,
                    "interior at ({oy},{ox}) h={h} w={w} k={k} s={stride} p={pad}"
                );
            }
        }
    }

    #[test]
    fn tables_match_brute_force() {
        for (h, w) in [(1, 1), (3, 5), (4, 4), (7, 3), (8, 8), (9, 2)] {
            for k in 1..=3usize {
                for stride in 1..=2 {
                    for pad in 0..=1 {
                        if h + 2 * pad >= k && w + 2 * pad >= k {
                            check(3, h, w, k, stride, pad);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn no_pad_is_all_interior() {
        let g = ConvGeometry::new(8, 6, 6, 3, 3, 1, 0);
        assert_eq!(
            g.interior(),
            Some(Interior {
                oy0: 0,
                oy1: 4,
                ox0: 0,
                ox1: 4
            })
        );
        assert!(g.taps_hit().iter().all(|&t| t == 9));
    }
}
