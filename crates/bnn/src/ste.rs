//! The sign non-linearity and its straight-through estimator.

use hotspot_tensor::Tensor;

/// Element-wise `sign(x)` with the BNN convention `sign(0) = +1`, so the
/// output is exactly `{−1, +1}`.
///
/// # Example
///
/// ```
/// use hotspot_bnn::sign_tensor;
/// use hotspot_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[3], vec![-0.5, 0.0, 2.0]);
/// assert_eq!(sign_tensor(&t).as_slice(), &[-1.0, 1.0, 1.0]);
/// ```
pub fn sign_tensor(x: &Tensor) -> Tensor {
    x.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
}

/// The straight-through estimator of Eq. 10–11: the pass-through mask
/// `1_{|x| < 1}` applied to an upstream gradient.
///
/// `grad_out` is the gradient flowing into `sign(x)`; the returned
/// tensor is the gradient with respect to `x`, with saturation taken
/// into account (gradients are killed where `|x| ≥ 1`).
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn ste_grad(x: &Tensor, grad_out: &Tensor) -> Tensor {
    x.zip(grad_out, |xi, g| if xi.abs() < 1.0 { g } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_is_plus_minus_one() {
        let x = Tensor::from_vec(&[5], vec![-3.0, -0.0, 0.0, 0.1, 7.0]);
        let s = sign_tensor(&x);
        assert_eq!(s.as_slice(), &[-1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(s.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn ste_passes_inside_unit_interval() {
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 1.0]);
        let g = Tensor::from_vec(&[4], vec![10.0, 10.0, 10.0, 10.0]);
        let out = ste_grad(&x, &g);
        assert_eq!(out.as_slice(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    fn ste_boundary_is_exclusive() {
        // |x| < 1 strictly: exactly ±1 saturates.
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.999, 1.0]);
        let g = Tensor::ones(&[3]);
        assert_eq!(ste_grad(&x, &g).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn sign_idempotent_through_ste_shapes() {
        let x = Tensor::from_vec(&[2, 2], vec![0.2, -0.2, 3.0, -3.0]);
        let g = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = ste_grad(&x, &g);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 0.0, 0.0]);
    }
}
