//! The sign non-linearity and its straight-through estimator.

use hotspot_tensor::Tensor;

/// Element-wise `sign(x)` with the BNN convention `sign(0) = +1`, so the
/// output is exactly `{−1, +1}`.
///
/// # Example
///
/// ```
/// use hotspot_bnn::sign_tensor;
/// use hotspot_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[3], vec![-0.5, 0.0, 2.0]);
/// assert_eq!(sign_tensor(&t).as_slice(), &[-1.0, 1.0, 1.0]);
/// ```
pub fn sign_tensor(x: &Tensor) -> Tensor {
    x.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
}

/// The straight-through estimator of Eq. 10–11: the pass-through mask
/// `1_{|x| < 1}` applied to an upstream gradient.
///
/// `grad_out` is the gradient flowing into `sign(x)`; the returned
/// tensor is the gradient with respect to `x`, with saturation taken
/// into account (gradients are killed where `|x| ≥ 1`).
///
/// # Panics
///
/// Panics when the shapes differ.
pub fn ste_grad(x: &Tensor, grad_out: &Tensor) -> Tensor {
    x.zip(grad_out, |xi, g| if xi.abs() < 1.0 { g } else { 0.0 })
}

/// Residual-of-residual binarization of a whole tensor (ReBNet): level
/// 0 is `(sign(x), mean |x|)`, and each further level binarizes what
/// the previous levels left over, `r_{ℓ+1} = r_ℓ − γ_ℓ · sign(r_ℓ)`
/// with `γ_ℓ = mean |r_ℓ|`, giving `x ≈ Σ_ℓ γ_ℓ · sign(r_ℓ)`.
///
/// This is the scalar-scale form used in the STE forward's M-level
/// weight approximation (the per-filter variant lives in
/// [`crate::residual_weight_levels`]); the scales are *estimated* from
/// the data each call, so during training they track the master
/// weights exactly like the single-level `α_W` always has.
///
/// # Panics
///
/// Panics when `levels == 0` or `x` is empty.
///
/// # Example
///
/// ```
/// use hotspot_bnn::residual_binarize;
/// use hotspot_tensor::Tensor;
///
/// let x = Tensor::from_vec(&[4], vec![0.9, -0.1, 0.4, -0.6]);
/// let lv = residual_binarize(&x, 2);
/// assert_eq!(lv.len(), 2);
/// // The two-level reconstruction is closer than one level alone.
/// let err = |m: usize| -> f32 {
///     let lv = residual_binarize(&x, m);
///     x.as_slice().iter().enumerate().map(|(i, &v)| {
///         let approx: f32 = lv.iter().map(|(b, g)| g * b.as_slice()[i]).sum();
///         (v - approx).powi(2)
///     }).sum()
/// };
/// assert!(err(2) < err(1));
/// ```
pub fn residual_binarize(x: &Tensor, levels: usize) -> Vec<(Tensor, f32)> {
    assert!(levels >= 1, "at least one binarization level");
    assert!(x.numel() > 0, "cannot binarize an empty tensor");
    let inv_n = 1.0 / x.numel() as f32;
    let mut out = Vec::with_capacity(levels);
    let mut residual = x.clone();
    for level in 0..levels {
        let signs = sign_tensor(&residual);
        let gamma = residual.as_slice().iter().map(|v| v.abs()).sum::<f32>() * inv_n;
        if level + 1 < levels {
            residual = residual.zip(&signs, |r, s| r - gamma * s);
        }
        out.push((signs, gamma));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_is_plus_minus_one() {
        let x = Tensor::from_vec(&[5], vec![-3.0, -0.0, 0.0, 0.1, 7.0]);
        let s = sign_tensor(&x);
        assert_eq!(s.as_slice(), &[-1.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(s.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn ste_passes_inside_unit_interval() {
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 1.0]);
        let g = Tensor::from_vec(&[4], vec![10.0, 10.0, 10.0, 10.0]);
        let out = ste_grad(&x, &g);
        assert_eq!(out.as_slice(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    fn ste_boundary_is_exclusive() {
        // |x| < 1 strictly: exactly ±1 saturates.
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.999, 1.0]);
        let g = Tensor::ones(&[3]);
        assert_eq!(ste_grad(&x, &g).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn residual_binarize_single_level_is_plain_sign() {
        let x = Tensor::from_vec(&[4], vec![0.5, -1.5, 2.0, -0.25]);
        let lv = residual_binarize(&x, 1);
        assert_eq!(lv.len(), 1);
        assert_eq!(&lv[0].0, &sign_tensor(&x));
        assert!((lv[0].1 - (0.5 + 1.5 + 2.0 + 0.25) / 4.0).abs() < 1e-6);
    }

    #[test]
    fn residual_binarize_levels_monotonically_improve() {
        let mut state = 3u32;
        let x = Tensor::from_vec(
            &[64],
            (0..64)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        );
        let err = |m: usize| -> f32 {
            let lv = residual_binarize(&x, m);
            x.as_slice()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let approx: f32 = lv.iter().map(|(b, g)| g * b.as_slice()[i]).sum();
                    (v - approx).powi(2)
                })
                .sum()
        };
        let errs: Vec<f32> = (1..=4).map(err).collect();
        for pair in errs.windows(2) {
            assert!(pair[1] < pair[0], "errors not decreasing: {errs:?}");
        }
    }

    #[test]
    fn sign_idempotent_through_ste_shapes() {
        let x = Tensor::from_vec(&[2, 2], vec![0.2, -0.2, 3.0, -3.0]);
        let g = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let out = ste_grad(&x, &g);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 0.0, 0.0]);
    }
}
