//! BNN blocks and binary residual blocks (paper Fig. 2 and Fig. 3).

use crate::layer::BinConv2d;
use crate::scaling::ScalingMode;
use hotspot_nn::{BatchNorm2d, Layer, Param};
use hotspot_tensor::Tensor;
use rand::Rng;

/// One convolution block of Fig. 3: **BatchNorm → Binarize →
/// BinaryConv**.
///
/// Following XNOR-Net practice (and the paper's §3.1), batch
/// normalization precedes the binarization to reduce the information
/// lost to the sign; the binarize step itself lives inside
/// [`BinConv2d`].
pub struct BnnBlock {
    bn: BatchNorm2d,
    conv: BinConv2d,
}

impl BnnBlock {
    /// Creates a block with a square `k × k` binary convolution.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        mode: ScalingMode,
        rng: &mut R,
    ) -> Self {
        BnnBlock {
            bn: BatchNorm2d::new(in_channels),
            conv: BinConv2d::new(in_channels, out_channels, k, stride, pad, mode, rng),
        }
    }

    /// The binary convolution inside the block.
    pub fn conv(&self) -> &BinConv2d {
        &self.conv
    }

    /// The batch-norm stage of the block.
    pub fn batch_norm(&self) -> &BatchNorm2d {
        &self.bn
    }

    /// Sets the residual binarization level count of the inner
    /// convolution (see [`BinConv2d::set_levels`]).
    pub fn set_levels(&mut self, levels: usize) {
        self.conv.set_levels(levels);
    }
}

impl Layer for BnnBlock {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let normed = self.bn.forward(input, training);
        self.conv.forward(&normed, training)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.conv.backward(grad_out);
        self.bn.backward(&g)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.bn.for_each_param(f);
        self.conv.for_each_param(f);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.bn.for_each_state(f);
        self.conv.for_each_state(f);
    }

    fn describe(&self) -> String {
        format!("[{} → {}]", self.bn.describe(), self.conv.describe())
    }
}

/// A binarized residual block: two 3×3 [`BnnBlock`]s on the main path
/// plus a shortcut connection (paper §3.1).
///
/// When the input and output tensors have the same shape the shortcut
/// is the identity; otherwise a 1×1 binary convolution block adapts the
/// shape, exactly as in Fig. 2.
pub struct BinaryResidualBlock {
    block1: BnnBlock,
    block2: BnnBlock,
    shortcut: Option<BnnBlock>,
    cached_shapes: Option<(Vec<usize>, Vec<usize>)>,
}

impl BinaryResidualBlock {
    /// Creates a residual block.  `stride > 1` (or
    /// `in_channels != out_channels`) inserts the 1×1 shortcut
    /// convolution.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        mode: ScalingMode,
        rng: &mut R,
    ) -> Self {
        let block1 = BnnBlock::new(in_channels, out_channels, 3, stride, 1, mode, rng);
        let block2 = BnnBlock::new(out_channels, out_channels, 3, 1, 1, mode, rng);
        let shortcut = (stride != 1 || in_channels != out_channels)
            .then(|| BnnBlock::new(in_channels, out_channels, 1, stride, 0, mode, rng));
        BinaryResidualBlock {
            block1,
            block2,
            shortcut,
            cached_shapes: None,
        }
    }

    /// `true` when the shortcut path carries a 1×1 convolution.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }

    /// The blocks on the main path.
    pub fn main_path(&self) -> (&BnnBlock, &BnnBlock) {
        (&self.block1, &self.block2)
    }

    /// The projection shortcut, when present.
    pub fn projection(&self) -> Option<&BnnBlock> {
        self.shortcut.as_ref()
    }

    /// Sets the residual binarization level count on every convolution
    /// in the block (main path and projection shortcut alike).
    pub fn set_levels(&mut self, levels: usize) {
        self.block1.set_levels(levels);
        self.block2.set_levels(levels);
        if let Some(s) = self.shortcut.as_mut() {
            s.set_levels(levels);
        }
    }
}

impl Layer for BinaryResidualBlock {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let main = self
            .block2
            .forward(&self.block1.forward(input, training), training);
        let short = match self.shortcut.as_mut() {
            Some(s) => s.forward(input, training),
            None => input.clone(),
        };
        self.cached_shapes = Some((input.shape().to_vec(), main.shape().to_vec()));
        &main + &short
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let _ = self
            .cached_shapes
            .take()
            .expect("BinaryResidualBlock::backward before forward");
        let g_main = self.block1.backward(&self.block2.backward(grad_out));
        let g_short = match self.shortcut.as_mut() {
            Some(s) => s.backward(grad_out),
            None => grad_out.clone(),
        };
        &g_main + &g_short
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.block1.for_each_param(f);
        self.block2.for_each_param(f);
        if let Some(s) = self.shortcut.as_mut() {
            s.for_each_param(f);
        }
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.block1.for_each_state(f);
        self.block2.for_each_state(f);
        if let Some(s) = self.shortcut.as_mut() {
            s.for_each_state(f);
        }
    }

    fn describe(&self) -> String {
        let sc = if self.shortcut.is_some() {
            "1x1-proj"
        } else {
            "identity"
        };
        format!(
            "res{{{} ; {} | {}}}",
            self.block1.describe(),
            self.block2.describe(),
            sc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    }

    #[test]
    fn block_composes_bn_then_conv() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = BnnBlock::new(2, 4, 3, 1, 1, ScalingMode::PerChannel, &mut rng);
        let x = pseudo(&[2, 2, 6, 6], 3);
        let y = b.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 6, 6]);
        let gx = b.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
        // Params: bn gamma+beta + conv weight.
        let mut n = 0;
        b.for_each_param(&mut |_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn identity_residual_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = BinaryResidualBlock::new(4, 4, 1, ScalingMode::PerChannel, &mut rng);
        assert!(!r.has_projection());
        let x = pseudo(&[1, 4, 8, 8], 5);
        let y = r.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
        let gx = r.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn projection_residual_changes_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = BinaryResidualBlock::new(4, 8, 2, ScalingMode::PerChannel, &mut rng);
        assert!(r.has_projection());
        let x = pseudo(&[1, 4, 8, 8], 7);
        let y = r.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let gx = r.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn identity_shortcut_passes_gradient_through() {
        // With an identity shortcut, the input gradient includes the
        // output gradient verbatim as one additive term.
        let mut rng = StdRng::seed_from_u64(4);
        let mut r = BinaryResidualBlock::new(2, 2, 1, ScalingMode::PlainSign, &mut rng);
        let x = pseudo(&[1, 2, 4, 4], 9);
        let y = r.forward(&x, true);
        let g = Tensor::full(y.shape(), 0.25);
        let gx = r.backward(&g);
        // The main path may add or subtract, but the shortcut term is
        // exactly 0.25 everywhere; the result cannot be the zero tensor.
        assert!(gx.l1_norm() > 0.0);
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn describe_mentions_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = BinaryResidualBlock::new(2, 4, 2, ScalingMode::PerChannel, &mut rng);
        let d = r.describe();
        assert!(d.contains("binconv3x3"));
        assert!(d.contains("1x1-proj"));
        let r2 = BinaryResidualBlock::new(4, 4, 1, ScalingMode::PerChannel, &mut rng);
        assert!(r2.describe().contains("identity"));
    }
}
