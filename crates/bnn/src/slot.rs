//! A swap-safe handle to the serving model.
//!
//! [`ModelSlot`] holds the `Arc<PackedBnn>` a long-running service
//! classifies with and lets a background thread replace it atomically:
//! readers grab a cheap `Arc` clone per batch and keep using the model
//! they started with, while [`swap`](ModelSlot::swap) publishes a new
//! one for every *subsequent* batch.  Each successful swap bumps a
//! monotonically increasing generation counter so callers can attribute
//! work (and failures) to the exact model that produced it — the hook
//! the serving layer's post-swap rollback monitor hangs off.
//!
//! The slot recovers from lock poisoning by construction: the guarded
//! state is an `Arc` plus a counter, both valid at every instruction
//! boundary, so a panicking reader can never wedge the service.

use crate::packed::PackedBnn;
use hotspot_telemetry::{Clock, MonotonicClock};
use std::sync::{Arc, RwLock};

struct Entry {
    model: Arc<PackedBnn>,
    generation: u64,
    /// Clock reading when this model was published (construction for
    /// generation 1, the `swap` call otherwise) — the anchor for
    /// "how long has this model been serving" observability queries.
    published_at_ns: u64,
}

/// An atomically swappable, generation-counted model handle (see the
/// module docs).
pub struct ModelSlot {
    inner: RwLock<Entry>,
    clock: Arc<dyn Clock>,
}

impl ModelSlot {
    /// Wraps a model as generation 1.
    pub fn new(model: PackedBnn) -> Self {
        Self::from_arc(Arc::new(model))
    }

    /// Wraps an already-shared model as generation 1.
    pub fn from_arc(model: Arc<PackedBnn>) -> Self {
        Self::from_arc_with_clock(model, Arc::new(MonotonicClock))
    }

    /// As [`from_arc`](ModelSlot::from_arc) with an injected clock, so
    /// tests can pin the publish timestamps deterministically.
    pub fn from_arc_with_clock(model: Arc<PackedBnn>, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now_ns();
        ModelSlot {
            inner: RwLock::new(Entry {
                model,
                generation: 1,
                published_at_ns: now,
            }),
            clock,
        }
    }

    /// The current model and its generation.  The returned `Arc` stays
    /// valid across concurrent swaps — a worker mid-batch keeps the
    /// model it started with.
    pub fn current(&self) -> (Arc<PackedBnn>, u64) {
        let entry = self.inner.read().unwrap_or_else(|p| p.into_inner());
        (entry.model.clone(), entry.generation)
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .generation
    }

    /// Clock reading at which the current model was published:
    /// construction time for generation 1, the most recent
    /// [`swap`](ModelSlot::swap) otherwise.
    pub fn last_swap_ns(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .published_at_ns
    }

    /// Nanoseconds the current model has been serving, measured on the
    /// slot's own clock.
    pub fn model_age_ns(&self) -> u64 {
        let published = self.last_swap_ns();
        self.clock.now_ns().saturating_sub(published)
    }

    /// Publishes `model` as the new current model, returning
    /// `(previous model, new generation)`.  The previous `Arc` is handed
    /// back so a rollback monitor can restore it without reloading from
    /// disk.
    pub fn swap(&self, model: Arc<PackedBnn>) -> (Arc<PackedBnn>, u64) {
        let now = self.clock.now_ns();
        let mut entry = self.inner.write().unwrap_or_else(|p| p.into_inner());
        entry.generation += 1;
        entry.published_at_ns = now;
        let prev = std::mem::replace(&mut entry.model, model);
        (prev, entry.generation)
    }
}

impl std::fmt::Debug for ModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entry = self.inner.read().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("ModelSlot")
            .field("generation", &entry.generation)
            .field("levels", &entry.model.levels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BnnResNet, NetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn packed(seed: u64) -> PackedBnn {
        let mut rng = StdRng::seed_from_u64(seed);
        PackedBnn::compile(&BnnResNet::new(&NetConfig::tiny(16), &mut rng))
    }

    #[test]
    fn swap_bumps_generation_and_returns_previous() {
        let slot = ModelSlot::new(packed(1));
        let (first, g1) = slot.current();
        assert_eq!(g1, 1);
        let (prev, g2) = slot.swap(Arc::new(packed(2)));
        assert_eq!(g2, 2);
        assert!(Arc::ptr_eq(&prev, &first), "swap hands the old model back");
        let (cur, g) = slot.current();
        assert_eq!(g, 2);
        assert!(!Arc::ptr_eq(&cur, &first));
        assert_eq!(slot.generation(), 2);
    }

    #[test]
    fn readers_keep_their_model_across_a_swap() {
        let slot = ModelSlot::new(packed(3));
        let (held, _) = slot.current();
        let held_fp = held.arch_fingerprint();
        slot.swap(Arc::new(packed(4)));
        // The held Arc is unaffected by the swap.
        assert_eq!(held.arch_fingerprint(), held_fp);
    }

    #[test]
    fn swap_timestamps_come_from_the_injected_clock() {
        let clock = Arc::new(hotspot_telemetry::MockClock::new());
        clock.advance(1_000);
        let slot = ModelSlot::from_arc_with_clock(Arc::new(packed(7)), clock.clone());
        assert_eq!(slot.last_swap_ns(), 1_000, "generation 1 stamps creation");
        clock.advance(4_000);
        assert_eq!(slot.model_age_ns(), 4_000);
        slot.swap(Arc::new(packed(8)));
        assert_eq!(slot.last_swap_ns(), 5_000, "swap re-stamps");
        assert_eq!(slot.model_age_ns(), 0);
        clock.advance(250);
        assert_eq!(slot.model_age_ns(), 250);
    }

    #[test]
    fn slot_recovers_from_poisoned_lock() {
        let slot = std::sync::Arc::new(ModelSlot::new(packed(5)));
        let s = slot.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s.inner.write().unwrap();
            panic!("poison the slot lock");
        })
        .join();
        assert!(slot.inner.is_poisoned(), "setup: lock must be poisoned");
        let (_, g) = slot.current();
        assert_eq!(g, 1);
        let (_, g) = slot.swap(Arc::new(packed(6)));
        assert_eq!(g, 2, "swap still works after poisoning");
    }
}
