//! Bit-packed XNOR inference engine.
//!
//! [`xnor_conv2d`] is the fast kernel: for each output pixel and kernel
//! tap, one `XOR` + `popcount` per 64 channels replaces 64 float
//! multiply–accumulates.  [`PackedBnn`] compiles a trained
//! [`BnnResNet`] into this representation, folding
//! each block's batch normalization into a per-channel affine and
//! factoring the activation scaling out of the convolution XNOR-Net
//! style (the standard inference-time approximation of the per-channel
//! training scaling; see DESIGN.md).
//!
//! [`BnnResNet`]: crate::model::BnnResNet

use crate::bitpack::{pack_signs_into, BitFilter, BitTensor};
use crate::block::{BinaryResidualBlock, BnnBlock};
use crate::model::BnnResNet;
use crate::scaling::{output_scale_shared_into, weight_scale, ScalingMode};
use hotspot_tensor::workspace::{global_pool, Workspace};
use hotspot_tensor::Tensor;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Binary convolution on bit-packed operands.
///
/// Computes, for every output pixel, the ±1 inner product
/// `Σ_c Σ_taps sign(x)·sign(w)` via XNOR + popcount.  Taps that fall
/// outside the input contribute zero, matching a float convolution of
/// the sign tensors with zero padding.
///
/// # Panics
///
/// Panics when the channel counts disagree.
pub fn xnor_conv2d(input: &BitTensor, filter: &BitFilter, stride: usize, pad: usize) -> Tensor {
    let (n, c, h, w) = input.dims();
    let (k, fc, kh, kw) = filter.dims();
    assert_eq!(c, fc, "input has {c} channels, filter expects {fc}");
    assert!(stride > 0, "stride must be positive");
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let in_words = input.as_words();

    let mut out = vec![0.0f32; n * k * oh * ow];
    // Parallelize over (batch, filter) pairs; each worker draws its
    // integer scratch from the process-wide workspace pool.
    out.par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(chunk, plane)| {
            let ni = chunk / k;
            let ki = chunk % k;
            let mut ws = global_pool().checkout();
            let mut acc = ws.take_i32(oh * ow);
            let mut taps_hit = ws.take_i32(oh * ow);
            xnor_plane(
                in_words,
                (c, h, w),
                filter,
                stride,
                pad,
                ni,
                ki,
                &mut acc,
                &mut taps_hit,
                plane,
            );
            ws.give_i32(taps_hit);
            ws.give_i32(acc);
            global_pool().restore(ws);
        });
    Tensor::from_vec(&[n, k, oh, ow], out)
}

/// Binary convolution on raw [`BitTensor`]-layout words into a
/// caller-provided `[n, k, oh, ow]` buffer, with caller-provided
/// integer scratch — the sequential, allocation-free core behind
/// [`xnor_conv2d`] and the [`crate::plan::ExecPlan`] engine.
///
/// `acc` and `taps_hit` must each hold `oh * ow` elements (contents
/// ignored).  Every element of `out` is overwritten.
///
/// # Panics
///
/// Panics when the channel counts disagree or a buffer length does not
/// match the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn xnor_conv2d_into(
    in_words: &[u64],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    filter: &BitFilter,
    stride: usize,
    pad: usize,
    acc: &mut [i32],
    taps_hit: &mut [i32],
    out: &mut [f32],
) {
    let (k, fc, kh, kw) = filter.dims();
    assert_eq!(c, fc, "input has {c} channels, filter expects {fc}");
    assert!(stride > 0, "stride must be positive");
    let wpp = c.div_ceil(64);
    assert_eq!(
        in_words.len(),
        n * h * w * wpp,
        "packed input length mismatch"
    );
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    assert_eq!(acc.len(), oh * ow, "acc scratch length mismatch");
    assert_eq!(taps_hit.len(), oh * ow, "taps scratch length mismatch");
    assert_eq!(out.len(), n * k * oh * ow, "output length mismatch");
    for chunk in 0..n * k {
        let plane = &mut out[chunk * oh * ow..(chunk + 1) * oh * ow];
        let ni = chunk / k;
        let ki = chunk % k;
        xnor_plane(
            in_words,
            (c, h, w),
            filter,
            stride,
            pad,
            ni,
            ki,
            acc,
            taps_hit,
            plane,
        );
    }
}

/// One output plane (batch item `ni`, filter `ki`) of a binary
/// convolution.  Kernel taps iterate in the outer loops so the
/// innermost loop is a tight run over contiguous output pixels with no
/// bounds checks.
#[allow(clippy::too_many_arguments)]
fn xnor_plane(
    in_words: &[u64],
    (c, h, w): (usize, usize, usize),
    filter: &BitFilter,
    stride: usize,
    pad: usize,
    ni: usize,
    ki: usize,
    acc: &mut [i32],
    taps_hit: &mut [i32],
    plane: &mut [f32],
) {
    let (_, _, kh, kw) = filter.dims();
    let wpt = filter.words_per_tap();
    let wpp = c.div_ceil(64);
    let f_words = filter.as_words();
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    debug_assert_eq!(wpp, wpt);
    {
        acc.fill(0);
        taps_hit.fill(0);
        for ky in 0..kh {
            for kx in 0..kw {
                let tap_base = ((ki * kh + ky) * kw + kx) * wpt;
                // Valid output ranges where the tap lands in bounds:
                // iy = oy*stride + ky - pad ∈ [0, h).
                let oy_lo = pad.saturating_sub(ky).div_ceil(stride);
                let oy_hi = if h + pad > ky {
                    (((h + pad - ky - 1) / stride) + 1).min(oh)
                } else {
                    0
                };
                let ox_lo = pad.saturating_sub(kx).div_ceil(stride);
                let ox_hi = if w + pad > kx {
                    (((w + pad - kx - 1) / stride) + 1).min(ow)
                } else {
                    0
                };
                if oy_lo >= oy_hi || ox_lo >= ox_hi {
                    continue;
                }
                if wpp == 1 {
                    let wword = f_words[tap_base];
                    for oy in oy_lo..oy_hi {
                        let iy = oy * stride + ky - pad;
                        let row = &in_words[(ni * h + iy) * w..(ni * h + iy + 1) * w];
                        let arow = &mut acc[oy * ow..oy * ow + ow];
                        let trow = &mut taps_hit[oy * ow..oy * ow + ow];
                        if stride == 1 {
                            let ix0 = ox_lo + kx - pad;
                            for (i, (a, t)) in arow[ox_lo..ox_hi]
                                .iter_mut()
                                .zip(&mut trow[ox_lo..ox_hi])
                                .enumerate()
                            {
                                *a += (row[ix0 + i] ^ wword).count_ones() as i32;
                                *t += 1;
                            }
                        } else {
                            for ox in ox_lo..ox_hi {
                                let ix = ox * stride + kx - pad;
                                arow[ox] += (row[ix] ^ wword).count_ones() as i32;
                                trow[ox] += 1;
                            }
                        }
                    }
                } else {
                    let wtap = &f_words[tap_base..tap_base + wpt];
                    for oy in oy_lo..oy_hi {
                        let iy = oy * stride + ky - pad;
                        for ox in ox_lo..ox_hi {
                            let ix = ox * stride + kx - pad;
                            let base = ((ni * h + iy) * w + ix) * wpp;
                            let mut mism = 0u32;
                            for (a, b) in in_words[base..base + wpp].iter().zip(wtap) {
                                mism += (a ^ b).count_ones();
                            }
                            acc[oy * ow + ox] += mism as i32;
                            taps_hit[oy * ow + ox] += 1;
                        }
                    }
                }
            }
        }
        // dot = Σ_taps (c − 2·mismatches) = taps·c − 2·total_mismatches.
        for ((o, &mism), &taps) in plane.iter_mut().zip(acc.iter()).zip(taps_hit.iter()) {
            *o = (taps * c as i32 - 2 * mism) as f32;
        }
    }
}

/// A compiled binary convolution block: batch-norm affine + packed
/// weights + output scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedConv {
    bn_scale: Vec<f32>,
    bn_shift: Vec<f32>,
    filter: BitFilter,
    alpha_w: Vec<f32>,
    stride: usize,
    pad: usize,
    kernel: usize,
    scaling: ScalingMode,
}

impl PackedConv {
    /// Compiles one training-path [`BnnBlock`] into packed form, using
    /// the block's running batch-norm statistics.
    pub fn compile(block: &BnnBlock) -> Self {
        let bn = block.batch_norm();
        let conv = block.conv();
        let c = bn.gamma().value.numel();
        let mut bn_scale = Vec::with_capacity(c);
        let mut bn_shift = Vec::with_capacity(c);
        for ci in 0..c {
            let inv_std = 1.0 / (bn.running_var()[ci] + bn.epsilon()).sqrt();
            let g = bn.gamma().value.as_slice()[ci];
            let b = bn.beta().value.as_slice()[ci];
            bn_scale.push(g * inv_std);
            bn_shift.push(b - g * bn.running_mean()[ci] * inv_std);
        }
        let w = &conv.weight().value;
        let scaling = conv.scaling_mode();
        let alpha_w = match scaling {
            ScalingMode::PlainSign => vec![1.0; w.shape()[0]],
            _ => weight_scale(w),
        };
        PackedConv {
            bn_scale,
            bn_shift,
            filter: BitFilter::from_tensor(w),
            alpha_w,
            stride: conv.stride(),
            pad: conv.pad(),
            kernel: w.shape()[2],
            scaling,
        }
    }

    /// Rebuilds a packed conv from its parts (wire codec + tests).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        bn_scale: Vec<f32>,
        bn_shift: Vec<f32>,
        filter: BitFilter,
        alpha_w: Vec<f32>,
        stride: usize,
        pad: usize,
        kernel: usize,
        scaling: ScalingMode,
    ) -> Self {
        PackedConv {
            bn_scale,
            bn_shift,
            filter,
            alpha_w,
            stride,
            pad,
            kernel,
            scaling,
        }
    }

    /// Folded batch-norm scale per input channel.
    pub fn bn_scale(&self) -> &[f32] {
        &self.bn_scale
    }

    /// Folded batch-norm shift per input channel.
    pub fn bn_shift(&self) -> &[f32] {
        &self.bn_shift
    }

    /// The bit-packed weights.
    pub fn filter(&self) -> &BitFilter {
        &self.filter
    }

    /// Per-filter weight scale `α_W`.
    pub fn alpha_w(&self) -> &[f32] {
        &self.alpha_w
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Square kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The activation-scaling mode this conv was compiled with.
    pub fn scaling(&self) -> ScalingMode {
        self.scaling
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.alpha_w.len()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.bn_scale.len()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.kernel) / self.stride + 1,
            (w + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }

    /// Runs the block on a real-valued NCHW activation.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.bn_scale.len(), "channel mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let mut out = vec![0.0f32; n * self.alpha_w.len() * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, self.alpha_w.len(), oh, ow], out)
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), with every intermediate —
    /// batch-norm fold, packed sign words, integer popcount scratch,
    /// scale maps — drawn from `ws`.  After one warm-up call with the
    /// same shapes, subsequent calls perform no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let c = self.bn_scale.len();
        let plane = h * w;
        assert_eq!(x.len(), n * c * plane, "input length mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let ko = self.alpha_w.len();
        assert_eq!(out.len(), n * ko * oh * ow, "output length mismatch");

        // Fold batch norm.
        let mut normed = ws.take_f32(n * c * plane);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                let (s, b) = (self.bn_scale[ci], self.bn_shift[ci]);
                for (dst, src) in normed[base..base + plane]
                    .iter_mut()
                    .zip(&x[base..base + plane])
                {
                    *dst = s * src + b;
                }
            }
        }

        // XNOR core on sign-packed words.
        let wpp = c.div_ceil(64);
        let mut words = ws.take_u64(n * plane * wpp);
        pack_signs_into(&normed, n, c, h, w, &mut words);
        let mut acc = ws.take_i32(oh * ow);
        let mut taps_hit = ws.take_i32(oh * ow);
        xnor_conv2d_into(
            &words,
            n,
            c,
            h,
            w,
            &self.filter,
            self.stride,
            self.pad,
            &mut acc,
            &mut taps_hit,
            out,
        );
        ws.give_i32(taps_hit);
        ws.give_i32(acc);
        ws.give_u64(words);

        if !matches!(self.scaling, ScalingMode::PlainSign) {
            // Factored activation scale: the exact same map the float
            // Shared path multiplies into its output, so compiled
            // inference reproduces the training-path function.
            // Networks trained with PerChannel scaling are
            // approximated by this shared map at inference (see crate
            // docs).
            let mut smap = ws.take_f32(n * oh * ow);
            let mut mean = ws.take_f32(plane);
            output_scale_shared_into(
                &normed,
                n,
                c,
                h,
                w,
                self.kernel,
                self.stride,
                self.pad,
                &mut mean,
                &mut smap,
            );
            for ni in 0..n {
                let splane = &smap[ni * oh * ow..(ni + 1) * oh * ow];
                for ki in 0..ko {
                    let alpha = self.alpha_w[ki];
                    let base = (ni * ko + ki) * oh * ow;
                    for (v, s) in out[base..base + oh * ow].iter_mut().zip(splane) {
                        *v *= alpha * s;
                    }
                }
            }
            ws.give_f32(mean);
            ws.give_f32(smap);
        }
        ws.give_f32(normed);
    }
}

/// A compiled residual block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedResidual {
    conv1: PackedConv,
    conv2: PackedConv,
    shortcut: Option<PackedConv>,
}

impl PackedResidual {
    /// Compiles a training-path residual block.
    pub fn compile(block: &BinaryResidualBlock) -> Self {
        let (b1, b2) = block.main_path();
        PackedResidual {
            conv1: PackedConv::compile(b1),
            conv2: PackedConv::compile(b2),
            shortcut: block.projection().map(PackedConv::compile),
        }
    }

    /// Rebuilds a residual block from its parts (wire codec + tests).
    pub fn from_raw_parts(
        conv1: PackedConv,
        conv2: PackedConv,
        shortcut: Option<PackedConv>,
    ) -> Self {
        PackedResidual {
            conv1,
            conv2,
            shortcut,
        }
    }

    /// First main-path conv (stride/channel change happens here).
    pub fn conv1(&self) -> &PackedConv {
        &self.conv1
    }

    /// Second main-path conv (stride 1).
    pub fn conv2(&self) -> &PackedConv {
        &self.conv2
    }

    /// The 1×1 projection shortcut, when the block reshapes.
    pub fn shortcut(&self) -> Option<&PackedConv> {
        self.shortcut.as_ref()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        self.conv2.output_hw(h1, w1)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Runs the block.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, _, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let ko = self.out_channels();
        let mut out = vec![0.0f32; n * ko * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, ko, oh, ow], out)
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), drawing every
    /// intermediate activation from `ws`.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        let mut mid = ws.take_f32(n * self.conv1.out_channels() * h1 * w1);
        self.conv1.forward_into(x, n, h, w, ws, &mut mid);
        self.conv2.forward_into(&mid, n, h1, w1, ws, out);
        match &self.shortcut {
            Some(s) => {
                let mut short = ws.take_f32(out.len());
                s.forward_into(x, n, h, w, ws, &mut short);
                for (o, v) in out.iter_mut().zip(&short) {
                    *o += v;
                }
                ws.give_f32(short);
            }
            None => {
                assert_eq!(x.len(), out.len(), "identity shortcut shape mismatch");
                for (o, v) in out.iter_mut().zip(x) {
                    *o += v;
                }
            }
        }
        ws.give_f32(mid);
    }
}

/// A trained [`BnnResNet`] compiled for bit-packed XNOR inference.
///
/// # Example
///
/// ```
/// use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// use hotspot_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let packed = PackedBnn::compile(&net);
/// let logits = packed.forward(&Tensor::ones(&[1, 1, 16, 16]));
/// assert_eq!(logits.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedBnn {
    stem: PackedConv,
    blocks: Vec<PackedResidual>,
    fc_weight: Tensor,
    fc_bias: Tensor,
}

impl PackedBnn {
    /// Compiles a trained network (run at least one training batch
    /// first so the batch-norm running statistics are meaningful).
    pub fn compile(net: &BnnResNet) -> Self {
        // The final dense stays full precision, as in the paper.
        let fcw = net_fc_weight(net);
        PackedBnn {
            stem: PackedConv::compile(net.stem()),
            blocks: net.blocks().iter().map(PackedResidual::compile).collect(),
            fc_weight: fcw.0,
            fc_bias: fcw.1,
        }
    }

    /// Rebuilds a model from its parts (wire codec + tests).
    pub fn from_raw_parts(
        stem: PackedConv,
        blocks: Vec<PackedResidual>,
        fc_weight: Tensor,
        fc_bias: Tensor,
    ) -> Self {
        PackedBnn {
            stem,
            blocks,
            fc_weight,
            fc_bias,
        }
    }

    /// The compiled stem conv.
    pub fn stem(&self) -> &PackedConv {
        &self.stem
    }

    /// The compiled residual blocks, in execution order.
    pub fn blocks(&self) -> &[PackedResidual] {
        &self.blocks
    }

    /// Full-precision classifier weight `[2, c]`.
    pub fn fc_weight(&self) -> &Tensor {
        &self.fc_weight
    }

    /// Full-precision classifier bias `[2]`.
    pub fn fc_bias(&self) -> &Tensor {
        &self.fc_bias
    }

    /// Classifies a batch of clips (`[n, 1, h, w]` ±1 tensors),
    /// returning `[n, 2]` logits.
    ///
    /// Compiles a one-shot [`ExecPlan`](crate::plan::ExecPlan) for the
    /// clip resolution and runs it with a pooled workspace.  Callers on
    /// a hot path should compile the plan once and call
    /// [`ExecPlan::run_into`](crate::plan::ExecPlan::run_into) instead.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "packed forward expects NCHW input");
        let plan = self.plan((x.shape()[2], x.shape()[3]));
        let mut ws = global_pool().checkout();
        let logits = plan.run(x, &mut ws);
        global_pool().restore(ws);
        logits
    }
}

fn net_fc_weight(net: &BnnResNet) -> (Tensor, Tensor) {
    // BnnResNet exposes its dense layer parameters through the summary
    // API; here we reach the actual tensors via the public accessors.
    (net.fc_weight().clone(), net.fc_bias().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ste::sign_tensor;
    use hotspot_nn::Layer;
    use hotspot_tensor::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    }

    #[test]
    fn xnor_matches_float_sign_conv() {
        // The packed kernel must agree exactly with a float convolution
        // of the sign tensors (zero padding).
        for (cin, k, stride, pad, seed) in [
            (3usize, 2usize, 1usize, 1usize, 1u32),
            (64, 3, 1, 1, 2),
            (70, 2, 2, 0, 3), // crosses the word boundary
            (1, 3, 1, 1, 4),
        ] {
            let x = pseudo(&[2, cin, 6, 6], seed);
            let w = pseudo(&[4, cin, k, k], seed + 100);
            let sx = sign_tensor(&x);
            let sw = sign_tensor(&w);
            let expect = conv2d(&sx, &sw, None, stride, pad);
            let got = xnor_conv2d(
                &BitTensor::from_tensor(&x),
                &BitFilter::from_tensor(&w),
                stride,
                pad,
            );
            assert_eq!(got.shape(), expect.shape());
            for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
                assert!((a - b).abs() < 1e-3, "cin={cin} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packed_block_matches_float_block_plain_sign() {
        // With PlainSign scaling the packed path reproduces the float
        // eval path exactly (same BN affine, same sign conv).
        let mut rng = StdRng::seed_from_u64(9);
        let mut block = BnnBlock::new(3, 4, 3, 1, 1, ScalingMode::PlainSign, &mut rng);
        // Drive BN running stats with a few training batches.
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 3, 6, 6], 50 + i), true);
        }
        let x = pseudo(&[2, 3, 6, 6], 99);
        let expect = block.forward(&x, false);
        let packed = PackedConv::compile(&block);
        let got = packed.forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_block_matches_float_block_exactly() {
        // Shared scaling is factored output-side in the float path, so
        // the packed engine computes the identical function in eval
        // mode (same BN affine, same sign conv, same scale map).
        let mut rng = StdRng::seed_from_u64(10);
        let mut block = BnnBlock::new(2, 3, 3, 1, 1, ScalingMode::Shared, &mut rng);
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 2, 8, 8], 70 + i), true);
        }
        let x = pseudo(&[1, 2, 8, 8], 199);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_strided_block_matches_exactly() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut block = BnnBlock::new(3, 4, 3, 2, 1, ScalingMode::Shared, &mut rng);
        for i in 0..4 {
            let _ = block.forward(&pseudo(&[2, 3, 8, 8], 80 + i), true);
        }
        let x = pseudo(&[2, 3, 8, 8], 301);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_model_runs_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = crate::BnnResNet::new(&crate::NetConfig::tiny(16), &mut rng);
        // Warm BN stats.
        let _ = net.forward(&pseudo(&[4, 1, 16, 16], 1), true);
        let packed = PackedBnn::compile(&net);
        let x = pseudo(&[3, 1, 16, 16], 2);
        let a = packed.forward(&x);
        let b = packed.forward(&x);
        assert_eq!(a, b);
        assert_eq!(a.shape(), &[3, 2]);
    }

    #[test]
    fn bitpacking_shrinks_weight_storage() {
        // 64 channels of 3x3 weights: 64*9 floats = 2304 bytes vs 9 u64
        // words = 72 bytes per filter.
        let w = pseudo(&[1, 64, 3, 3], 5);
        let f = BitFilter::from_tensor(&w);
        let packed_words: usize = 9; // one word per tap
        assert_eq!(f.dims(), (1, 64, 3, 3));
        assert_eq!(f.tap_words(0, 0, 0).len(), 1);
        let float_bytes = w.numel() * 4;
        let packed_bytes = packed_words * 8;
        assert!(float_bytes >= 32 * packed_bytes);
    }
}
