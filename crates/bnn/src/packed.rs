//! Bit-packed XNOR inference engine.
//!
//! [`xnor_conv2d`] is the fast kernel: for each output pixel and kernel
//! tap, one `XOR` + `popcount` per 64 channels replaces 64 float
//! multiply–accumulates.  [`PackedBnn`] compiles a trained
//! [`BnnResNet`] into this representation, folding
//! each block's batch normalization into a per-channel affine and
//! factoring the activation scaling out of the convolution XNOR-Net
//! style (the standard inference-time approximation of the per-channel
//! training scaling; see DESIGN.md).
//!
//! [`BnnResNet`]: crate::model::BnnResNet

use crate::bitpack::{
    exact_sign_rule, pack_affine_mean_into, pack_rules_into, BitFilter, BitTensor, SignRule,
};
use crate::block::{BinaryResidualBlock, BnnBlock};
use crate::kernels::geom::Interior;
use crate::kernels::{self, active_backend, ConvGeometry, KernelBackend};
use crate::model::BnnResNet;
use crate::scaling::{box_filter_sliding_into, residual_weight_levels, ScalingMode};
use hotspot_tensor::workspace::{global_pool, Workspace};
use hotspot_tensor::{crc32, Tensor, WireWriter};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Integer scratch rows [`xnor_conv2d_into`] needs: one accumulator
/// plane per filter in a block of four.
pub const ACC_PLANES: usize = 4;

/// Binary convolution on bit-packed operands.
///
/// Computes, for every output pixel, the ±1 inner product
/// `Σ_c Σ_taps sign(x)·sign(w)` via XNOR + popcount.  Taps that fall
/// outside the input contribute zero, matching a float convolution of
/// the sign tensors with zero padding.
///
/// # Panics
///
/// Panics when the channel counts disagree.
pub fn xnor_conv2d(input: &BitTensor, filter: &BitFilter, stride: usize, pad: usize) -> Tensor {
    xnor_conv2d_backend(active_backend(), input, filter, stride, pad)
}

/// [`xnor_conv2d`] with an explicit kernel backend (all backends are
/// bit-identical; this entry point exists for equivalence tests and
/// benchmarks).
///
/// # Panics
///
/// Panics when the channel counts disagree.
pub fn xnor_conv2d_backend(
    backend: KernelBackend,
    input: &BitTensor,
    filter: &BitFilter,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (n, c, h, w) = input.dims();
    let (k, fc, kh, kw) = filter.dims();
    assert_eq!(c, fc, "input has {c} channels, filter expects {fc}");
    assert!(stride > 0, "stride must be positive");
    let geom = ConvGeometry::new(c, h, w, kh, kw, stride, pad);
    let (oh, ow) = (geom.oh, geom.ow);
    let oplane = oh * ow;
    let in_words = input.as_words();

    let mut out = vec![0.0f32; n * k * oplane];
    // Parallelize over batch items; each worker checks one workspace
    // out of the process-wide pool and reuses it for every item it
    // processes (the guard restores it when the worker retires).
    out.par_chunks_mut(k * oplane).enumerate().for_each_init(
        || global_pool().checkout_guard(),
        |ws, (ni, chunk)| {
            let mut acc = ws.take_i32(ACC_PLANES * geom.ow);
            xnor_item(backend, in_words, &geom, filter, ni, None, &mut acc, chunk);
            ws.give_i32(acc);
        },
    );
    Tensor::from_vec(&[n, k, oh, ow], out)
}

/// Binary convolution on raw [`BitTensor`]-layout words into a
/// caller-provided `[n, k, oh, ow]` buffer, with caller-provided
/// integer scratch — the sequential, allocation-free core behind
/// [`xnor_conv2d`] and the [`crate::plan::ExecPlan`] engine.  The
/// geometry tables are precomputed by the caller (once per plan step)
/// instead of being rebuilt per plane.
///
/// `acc` must hold [`ACC_PLANES`]` * ow` elements — one output row of
/// accumulators per filter in a block; rows finalize straight out of
/// this L1-resident buffer (contents
/// ignored).  Every element of `out` is overwritten.
///
/// # Panics
///
/// Panics when the filter disagrees with the geometry or a buffer
/// length does not match the dimensions.
pub fn xnor_conv2d_into(
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    filter: &BitFilter,
    acc: &mut [i32],
    out: &mut [f32],
) {
    xnor_conv2d_into_backend(active_backend(), in_words, n, geom, filter, acc, out)
}

/// [`xnor_conv2d_into`] with an explicit kernel backend.
///
/// # Panics
///
/// See [`xnor_conv2d_into`].
pub fn xnor_conv2d_into_backend(
    backend: KernelBackend,
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    filter: &BitFilter,
    acc: &mut [i32],
    out: &mut [f32],
) {
    xnor_conv2d_scaled(backend, in_words, n, geom, filter, None, acc, out);
}

/// Core conv loop shared by the scaled and unscaled paths.  When
/// `scale` is `Some((alpha, smap))` — per-filter weight scales and the
/// per-item `[n, oh, ow]` activation scale map — the finalize pass
/// multiplies each output by `alpha[f] * smap[pixel]` in place of the
/// separate full-tensor pass the scaled forward used to make
/// (bit-identical: same multiply, same order, one less sweep).
#[allow(clippy::too_many_arguments)]
fn xnor_conv2d_scaled(
    backend: KernelBackend,
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    filter: &BitFilter,
    scale: Option<(&[f32], &[f32])>,
    acc: &mut [i32],
    out: &mut [f32],
) {
    let (k, fc, kh, kw) = filter.dims();
    assert_eq!(
        (fc, kh, kw),
        (geom.c, geom.kh, geom.kw),
        "filter shape disagrees with geometry"
    );
    let oplane = geom.oh * geom.ow;
    assert_eq!(
        in_words.len(),
        n * geom.h * geom.w * geom.wpp,
        "packed input length mismatch"
    );
    assert_eq!(
        acc.len(),
        ACC_PLANES * geom.ow,
        "acc scratch length mismatch"
    );
    assert_eq!(out.len(), n * k * oplane, "output length mismatch");
    if let Some((alpha, smap)) = scale {
        assert_eq!(alpha.len(), k, "one weight scale per filter");
        assert_eq!(smap.len(), n * oplane, "scale map length mismatch");
    }
    for ni in 0..n {
        let item = &mut out[ni * k * oplane..(ni + 1) * k * oplane];
        let item_scale = scale.map(|(a, s)| (a, &s[ni * oplane..(ni + 1) * oplane]));
        xnor_item(backend, in_words, geom, filter, ni, item_scale, acc, item);
    }
}

/// Visits every output pixel outside the interior rectangle.
fn for_each_border(
    oh: usize,
    ow: usize,
    interior: Option<Interior>,
    mut f: impl FnMut(usize, usize),
) {
    match interior {
        None => {
            for oy in 0..oh {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
        }
        Some(int) => {
            for oy in 0..int.oy0 {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
            for oy in int.oy0..int.oy1 {
                for ox in 0..int.ox0 {
                    f(oy, ox);
                }
                for ox in int.ox1..ow {
                    f(oy, ox);
                }
            }
            for oy in int.oy1..oh {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
        }
    }
}

/// Writes one finalized output value:
/// `dot = taps·c − 2·mismatches`, times the fused activation scale
/// when present.
#[inline]
fn finalize(hit: i32, c: usize, mism: i32, scale: f32) -> f32 {
    (hit * c as i32 - 2 * mism) as f32 * scale
}

/// One batch item (`k` output planes) of a binary convolution.
///
/// Filters are processed in blocks of up to four so every input word
/// loaded in the interior loop is reused across the block.  The output
/// plane splits into the precomputed interior rectangle — all taps in
/// bounds, handled by the branch-free dispatched kernels — and a thin
/// border handled by the general bounds-checked path.
///
/// Interior loops are *row-outer*: each output row accumulates its
/// `kh·kw` taps into an `ACC_PLANES × ow` row buffer that stays
/// L1-resident and is finalized straight into `out` before moving to
/// the next row.  (A tap-outer loop would stream whole `oh·ow`
/// accumulator planes through the cache `kh·kw` times.)  Border pixels
/// accumulate their few taps in registers and finalize immediately, so
/// no full-plane integer scratch exists anywhere.
#[allow(clippy::too_many_arguments)]
fn xnor_item(
    backend: KernelBackend,
    in_words: &[u64],
    geom: &ConvGeometry,
    filter: &BitFilter,
    ni: usize,
    scale: Option<(&[f32], &[f32])>,
    acc: &mut [i32],
    out: &mut [f32],
) {
    let (k, _, kh, kw) = filter.dims();
    let (c, h, w) = (geom.c, geom.h, geom.w);
    let (stride, pad) = (geom.stride, geom.pad);
    let (oh, ow, wpp) = (geom.oh, geom.ow, geom.wpp);
    let oplane = oh * ow;
    let f_words = filter.as_words();
    debug_assert_eq!(wpp, filter.words_per_tap());
    debug_assert_eq!(acc.len(), ACC_PLANES * ow);
    debug_assert_eq!(out.len(), k * oplane);
    let taps = geom.taps_hit();
    let full_hit = (kh * kw) as i32;
    // Per-filter finalize scale: alpha[f] * smap[pixel], or 1.
    let fscale = |f: usize, p: usize| match scale {
        None => 1.0,
        Some((alpha, splane)) => alpha[f] * splane[p],
    };

    let mut ki = 0;
    while ki < k {
        let fb = (k - ki).min(ACC_PLANES);

        if let Some(int) = geom.interior() {
            let run = int.ox1 - int.ox0;
            if wpp == 1 {
                for oy in int.oy0..int.oy1 {
                    let row_acc = &mut acc[..ACC_PLANES * run];
                    row_acc.fill(0);
                    let (a0, rest) = row_acc.split_at_mut(run);
                    let (a1, rest) = rest.split_at_mut(run);
                    let (a2, a3) = rest.split_at_mut(run);
                    let mut rows = [a0, a1, a2, a3];
                    for ky in 0..kh {
                        let iy = oy * stride + ky - pad;
                        for kx in 0..kw {
                            let mut ws4 = [0u64; ACC_PLANES];
                            for (f, slot) in ws4.iter_mut().enumerate().take(fb) {
                                *slot = f_words[((ki + f) * kh + ky) * kw + kx];
                            }
                            let ix0 = int.ox0 * stride + kx - pad;
                            if stride == 1 {
                                let src = &in_words[(ni * h + iy) * w + ix0..][..run];
                                if fb == ACC_PLANES {
                                    let [r0, r1, r2, r3] = &mut rows;
                                    kernels::accum_xor_popcount_x4(
                                        backend,
                                        [&mut r0[..], &mut r1[..], &mut r2[..], &mut r3[..]],
                                        src,
                                        ws4,
                                    );
                                } else {
                                    for (f, &wword) in ws4.iter().enumerate().take(fb) {
                                        kernels::accum_xor_popcount(
                                            backend,
                                            &mut rows[f][..],
                                            src,
                                            wword,
                                        );
                                    }
                                }
                            } else {
                                // Strided rows: gather each chunk into a
                                // stack scratch once, then reuse the
                                // contiguous dispatched kernels — the
                                // gather cost is paid once per chunk
                                // instead of once per filter.
                                const GATHER: usize = 128;
                                let row = &in_words[(ni * h + iy) * w..];
                                let mut gat = [0u64; GATHER];
                                let mut done = 0;
                                while done < run {
                                    let m = (run - done).min(GATHER);
                                    for (i, slot) in gat.iter_mut().enumerate().take(m) {
                                        *slot = row[ix0 + (done + i) * stride];
                                    }
                                    if fb == ACC_PLANES {
                                        let [r0, r1, r2, r3] = &mut rows;
                                        kernels::accum_xor_popcount_x4(
                                            backend,
                                            [
                                                &mut r0[done..done + m],
                                                &mut r1[done..done + m],
                                                &mut r2[done..done + m],
                                                &mut r3[done..done + m],
                                            ],
                                            &gat[..m],
                                            ws4,
                                        );
                                    } else {
                                        for (f, &wword) in ws4.iter().enumerate().take(fb) {
                                            kernels::accum_xor_popcount(
                                                backend,
                                                &mut rows[f][done..done + m],
                                                &gat[..m],
                                                wword,
                                            );
                                        }
                                    }
                                    done += m;
                                }
                            }
                        }
                    }
                    // Finalize this row straight from the hot buffer.
                    let row_off = oy * ow + int.ox0;
                    for (f, row) in rows.iter().enumerate().take(fb) {
                        let dst = &mut out[(ki + f) * oplane + row_off..][..run];
                        match scale {
                            None => {
                                for (o, &mism) in dst.iter_mut().zip(row.iter()) {
                                    *o = finalize(full_hit, c, mism, 1.0);
                                }
                            }
                            Some((alpha, splane)) => {
                                let a = alpha[ki + f];
                                let srow = &splane[row_off..row_off + run];
                                for ((o, &mism), &s) in dst.iter_mut().zip(row.iter()).zip(srow) {
                                    *o = finalize(full_hit, c, mism, a * s);
                                }
                            }
                        }
                    }
                }
            } else {
                // Multi-word channels: per pixel, each kernel row is a
                // contiguous kw*wpp span for the dispatched popcount;
                // finalize immediately.
                for oy in int.oy0..int.oy1 {
                    let iy0 = oy * stride - pad;
                    for ox in int.ox0..int.ox1 {
                        let ix0 = ox * stride - pad;
                        let p = oy * ow + ox;
                        for f in 0..fb {
                            let mut mism = 0u32;
                            for ky in 0..kh {
                                let ibase = ((ni * h + iy0 + ky) * w + ix0) * wpp;
                                let fbase = ((ki + f) * kh + ky) * kw * wpp;
                                mism += kernels::xor_popcount(
                                    backend,
                                    &in_words[ibase..ibase + kw * wpp],
                                    &f_words[fbase..fbase + kw * wpp],
                                );
                            }
                            out[(ki + f) * oplane + p] =
                                finalize(full_hit, c, mism as i32, fscale(ki + f, p));
                        }
                    }
                }
            }
        }

        // Border pixels: general per-tap path with bounds checks,
        // accumulating each filter's mismatches in a register and
        // finalizing in place.
        for_each_border(oh, ow, geom.interior(), |oy, ox| {
            let p = oy * ow + ox;
            let mut mism4 = [0i32; ACC_PLANES];
            for ky in 0..kh {
                let iy = oy * stride + ky;
                if iy < pad || iy - pad >= h {
                    continue;
                }
                let iy = iy - pad;
                for kx in 0..kw {
                    let ix = ox * stride + kx;
                    if ix < pad || ix - pad >= w {
                        continue;
                    }
                    let ix = ix - pad;
                    let ibase = ((ni * h + iy) * w + ix) * wpp;
                    let src = &in_words[ibase..ibase + wpp];
                    for (f, m) in mism4.iter_mut().enumerate().take(fb) {
                        let fbase = (((ki + f) * kh + ky) * kw + kx) * wpp;
                        for (a, b) in src.iter().zip(&f_words[fbase..fbase + wpp]) {
                            *m += (a ^ b).count_ones() as i32;
                        }
                    }
                }
            }
            for (f, &mism) in mism4.iter().enumerate().take(fb) {
                out[(ki + f) * oplane + p] = finalize(taps[p], c, mism, fscale(ki + f, p));
            }
        });

        ki += fb;
    }
}

/// Shape-derived state for running one [`PackedConv`] at a fixed input
/// resolution: the precomputed [`ConvGeometry`], the fused
/// binarization [`SignRule`]s (PlainSign mode), and the kernel backend
/// — everything `forward_prepped` needs that does not depend on the
/// activations.  Built once per `Step::Conv` at plan-compile time.
///
/// This is deliberately *not* stored on [`PackedConv`] itself: the
/// conv is a serialized wire-format struct, and prep state is
/// derivable, per-resolution, and backend-specific.
#[derive(Debug, Clone)]
pub struct ConvPrep {
    geom: ConvGeometry,
    rules: Vec<SignRule>,
    backend: KernelBackend,
    /// Effective residual level count for this prep: the conv's own
    /// level count, possibly capped lower (cascade triage runs an
    /// M-level model at M = 1).
    levels: usize,
}

impl ConvPrep {
    /// The precomputed geometry tables.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// The kernel backend this prep dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Residual binarization levels this prep will execute.
    pub fn levels(&self) -> usize {
        self.levels
    }
}

/// A compiled binary convolution block: batch-norm affine + packed
/// weights + output scaling.
///
/// The packed weights are a stack of M residual bit planes (ReBNet's
/// residual binarization, `W ≈ Σ_ℓ α_ℓ ⊙ sign(r_ℓ)`): `filter` /
/// `alpha_w` hold level 0 — exactly the classic single-bit
/// representation — and `extra_levels` holds the `M − 1` correction
/// planes with their per-level, per-filter scales.  Inference runs one
/// XNOR pass of the *same* popcount kernels per plane and accumulates;
/// an empty `extra_levels` is bit-for-bit the old single-level conv.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedConv {
    bn_scale: Vec<f32>,
    bn_shift: Vec<f32>,
    filter: BitFilter,
    alpha_w: Vec<f32>,
    stride: usize,
    pad: usize,
    kernel: usize,
    scaling: ScalingMode,
    extra_levels: Vec<(BitFilter, Vec<f32>)>,
}

impl PackedConv {
    /// Compiles one training-path [`BnnBlock`] into packed form, using
    /// the block's running batch-norm statistics.
    pub fn compile(block: &BnnBlock) -> Self {
        let bn = block.batch_norm();
        let conv = block.conv();
        let c = bn.gamma().value.numel();
        let mut bn_scale = Vec::with_capacity(c);
        let mut bn_shift = Vec::with_capacity(c);
        for ci in 0..c {
            let inv_std = 1.0 / (bn.running_var()[ci] + bn.epsilon()).sqrt();
            let g = bn.gamma().value.as_slice()[ci];
            let b = bn.beta().value.as_slice()[ci];
            bn_scale.push(g * inv_std);
            bn_shift.push(b - g * bn.running_mean()[ci] * inv_std);
        }
        let w = &conv.weight().value;
        let scaling = conv.scaling_mode();
        // Residual weight binarization: level 0 is the classic
        // single-bit plane (r_0 = W, so its BitFilter and α_W match
        // the old compile exactly); levels 1.. pack the sign bits of
        // the successive residuals with their own per-filter scales.
        let plain = matches!(scaling, ScalingMode::PlainSign);
        let mut lv = residual_weight_levels(w, conv.levels(), plain).into_iter();
        let (r0, alpha_w) = lv.next().expect("at least one level");
        let extra_levels = lv
            .map(|(r, alpha)| (BitFilter::from_tensor(&r), alpha))
            .collect();
        PackedConv {
            bn_scale,
            bn_shift,
            filter: BitFilter::from_tensor(&r0),
            alpha_w,
            stride: conv.stride(),
            pad: conv.pad(),
            kernel: w.shape()[2],
            scaling,
            extra_levels,
        }
    }

    /// Rebuilds a packed conv from its parts (wire codec + tests).
    /// `extra_levels` holds the residual correction planes beyond the
    /// first; pass an empty vector for a classic single-level conv.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        bn_scale: Vec<f32>,
        bn_shift: Vec<f32>,
        filter: BitFilter,
        alpha_w: Vec<f32>,
        stride: usize,
        pad: usize,
        kernel: usize,
        scaling: ScalingMode,
        extra_levels: Vec<(BitFilter, Vec<f32>)>,
    ) -> Self {
        PackedConv {
            bn_scale,
            bn_shift,
            filter,
            alpha_w,
            stride,
            pad,
            kernel,
            scaling,
            extra_levels,
        }
    }

    /// Folded batch-norm scale per input channel.
    pub fn bn_scale(&self) -> &[f32] {
        &self.bn_scale
    }

    /// Folded batch-norm shift per input channel.
    pub fn bn_shift(&self) -> &[f32] {
        &self.bn_shift
    }

    /// The bit-packed weights.
    pub fn filter(&self) -> &BitFilter {
        &self.filter
    }

    /// Per-filter weight scale `α_W` (level 0).
    pub fn alpha_w(&self) -> &[f32] {
        &self.alpha_w
    }

    /// Residual binarization level count `M` (1 = single-bit).
    pub fn levels(&self) -> usize {
        1 + self.extra_levels.len()
    }

    /// The residual correction planes beyond level 0, each with its
    /// per-filter scales.
    pub fn extra_levels(&self) -> &[(BitFilter, Vec<f32>)] {
        &self.extra_levels
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Square kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The activation-scaling mode this conv was compiled with.
    pub fn scaling(&self) -> ScalingMode {
        self.scaling
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.alpha_w.len()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.bn_scale.len()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.kernel) / self.stride + 1,
            (w + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }

    /// Runs the block on a real-valued NCHW activation.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.bn_scale.len(), "channel mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let mut out = vec![0.0f32; n * self.alpha_w.len() * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, self.alpha_w.len(), oh, ow], out)
    }

    /// Builds the shape-derived [`ConvPrep`] for an `h × w` input,
    /// dispatching to [`active_backend`].
    pub fn prepare(&self, h: usize, w: usize) -> ConvPrep {
        self.prepare_with_backend(h, w, active_backend())
    }

    /// [`PackedConv::prepare`] with an explicit kernel backend, running
    /// all compiled-in residual levels.
    pub fn prepare_with_backend(&self, h: usize, w: usize, backend: KernelBackend) -> ConvPrep {
        self.prepare_capped(h, w, backend, usize::MAX)
    }

    /// [`PackedConv::prepare_with_backend`] with the executed residual
    /// level count capped at `max_levels` (clamped to `1..=M`): the
    /// cascade's triage stage runs an M-level model at M = 1 without
    /// recompiling it.
    pub fn prepare_capped(
        &self,
        h: usize,
        w: usize,
        backend: KernelBackend,
        max_levels: usize,
    ) -> ConvPrep {
        let c = self.bn_scale.len();
        let geom = ConvGeometry::new(c, h, w, self.kernel, self.kernel, self.stride, self.pad);
        // PlainSign binarizes sign(s·x + b); fold the affine into one
        // exact threshold rule per channel so the forward pass packs
        // bits straight from the raw input.  The scaled modes need the
        // affine values themselves (for the |T_in| mean) and use the
        // fused pack+mean pass instead.
        let rules = if matches!(self.scaling, ScalingMode::PlainSign) {
            self.bn_scale
                .iter()
                .zip(&self.bn_shift)
                .map(|(&s, &b)| exact_sign_rule(s, b))
                .collect()
        } else {
            Vec::new()
        };
        ConvPrep {
            geom,
            rules,
            backend,
            levels: max_levels.clamp(1, self.levels()),
        }
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), with every intermediate —
    /// packed sign words, integer popcount scratch, scale maps — drawn
    /// from `ws`.  After one warm-up call with the same shapes,
    /// subsequent calls perform no heap allocation.
    ///
    /// Builds a fresh [`ConvPrep`] per call; plan-driven callers build
    /// it once and use [`PackedConv::forward_prepped`].
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let prep = self.prepare(h, w);
        self.forward_prepped(&prep, x, n, ws, out);
    }

    /// [`PackedConv::forward_into`] with precomputed shape-derived
    /// state (the input resolution is fixed by `prep`).
    ///
    /// The batch-norm affine is fused into the binarize+pack pass, so
    /// no normalized f32 tensor is ever materialized: PlainSign packs
    /// through exact per-channel threshold rules; the scaled modes use
    /// one fused pass that packs and accumulates the `|T_in|` channel
    /// mean together, then box-filters it with the O(1) sliding window.
    /// The result is bit-for-bit identical to the old materializing
    /// path.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions or
    /// `prep` was built for a different conv shape.
    pub fn forward_prepped(
        &self,
        prep: &ConvPrep,
        x: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let c = self.bn_scale.len();
        let geom = &prep.geom;
        assert_eq!(
            (geom.c, geom.kh, geom.stride, geom.pad),
            (c, self.kernel, self.stride, self.pad),
            "prep was built for a different conv"
        );
        let (h, w) = (geom.h, geom.w);
        let plane = h * w;
        assert_eq!(x.len(), n * c * plane, "input length mismatch");
        let (oh, ow) = (geom.oh, geom.ow);
        let oplane = oh * ow;
        let ko = self.alpha_w.len();
        assert_eq!(out.len(), n * ko * oplane, "output length mismatch");
        let wpp = geom.wpp;
        let mut words = ws.take_u64(n * plane * wpp);

        // Residual levels beyond the first to execute: the prep can cap
        // below the compiled-in count (cascade triage).  With none, the
        // code below is call-for-call the single-level path.
        let extra = prep.levels.min(self.levels()).saturating_sub(1);

        if matches!(self.scaling, ScalingMode::PlainSign) {
            pack_rules_into(x, n, c, h, w, &prep.rules, &mut words);
            let mut acc = ws.take_i32(ACC_PLANES * ow);
            xnor_conv2d_into_backend(prep.backend, &words, n, geom, &self.filter, &mut acc, out);
            if extra > 0 {
                // Each correction plane is one more pass of the same
                // popcount kernels over the already-packed activations;
                // its per-filter scale α_ℓ weights the accumulation
                // (level 0 of PlainSign is unscaled, residuals are not).
                let mut scratch = ws.take_f32(out.len());
                for (filter_l, alpha_l) in &self.extra_levels[..extra] {
                    xnor_conv2d_into_backend(
                        prep.backend,
                        &words,
                        n,
                        geom,
                        filter_l,
                        &mut acc,
                        &mut scratch,
                    );
                    accumulate_scaled(out, &scratch, alpha_l, n, oplane);
                }
                ws.give_f32(scratch);
            }
            ws.give_i32(acc);
        } else {
            // Factored activation scale: the exact same map the float
            // Shared path multiplies into its output, so compiled
            // inference reproduces the training-path function.
            // Networks trained with PerChannel scaling are
            // approximated by this shared map at inference (see crate
            // docs).
            let mut smap = ws.take_f32(n * oplane);
            let mut mean = ws.take_f32(plane);
            let mut colsum = ws.take_f64(w);
            for ni in 0..n {
                pack_affine_mean_into(
                    &x[ni * c * plane..(ni + 1) * c * plane],
                    c,
                    h,
                    w,
                    &self.bn_scale,
                    &self.bn_shift,
                    &mut words[ni * plane * wpp..(ni + 1) * plane * wpp],
                    &mut mean,
                );
                box_filter_sliding_into(
                    &mean,
                    h,
                    w,
                    self.kernel,
                    self.kernel,
                    self.stride,
                    self.pad,
                    &mut colsum,
                    &mut smap[ni * oplane..(ni + 1) * oplane],
                );
            }
            ws.give_f64(colsum);
            ws.give_f32(mean);
            let mut acc = ws.take_i32(ACC_PLANES * ow);
            xnor_conv2d_scaled(
                prep.backend,
                &words,
                n,
                geom,
                &self.filter,
                Some((&self.alpha_w, &smap)),
                &mut acc,
                out,
            );
            if extra > 0 {
                // Correction planes reuse the packed activations *and*
                // the sliding scale map: level ℓ's finalize multiplies
                // α_ℓ[f] · smap[pixel], exactly like level 0 with its
                // per-level α — then accumulates into the output.
                let mut scratch = ws.take_f32(out.len());
                for (filter_l, alpha_l) in &self.extra_levels[..extra] {
                    xnor_conv2d_scaled(
                        prep.backend,
                        &words,
                        n,
                        geom,
                        filter_l,
                        Some((alpha_l, &smap)),
                        &mut acc,
                        &mut scratch,
                    );
                    for (o, s) in out.iter_mut().zip(&*scratch) {
                        *o += s;
                    }
                }
                ws.give_f32(scratch);
            }
            ws.give_i32(acc);
            ws.give_f32(smap);
        }
        ws.give_u64(words);
    }
}

/// `out[n, k, ·] += alpha[k] · src[n, k, ·]` over `[n, k, oplane]`
/// buffers — the per-filter-scaled accumulation of a PlainSign residual
/// correction plane.
fn accumulate_scaled(out: &mut [f32], src: &[f32], alpha: &[f32], n: usize, oplane: usize) {
    debug_assert_eq!(out.len(), src.len());
    debug_assert_eq!(out.len(), n * alpha.len() * oplane);
    for ni in 0..n {
        for (ki, &a) in alpha.iter().enumerate() {
            let base = (ni * alpha.len() + ki) * oplane;
            for (o, s) in out[base..base + oplane]
                .iter_mut()
                .zip(&src[base..base + oplane])
            {
                *o += a * s;
            }
        }
    }
}

/// A compiled residual block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedResidual {
    conv1: PackedConv,
    conv2: PackedConv,
    shortcut: Option<PackedConv>,
}

impl PackedResidual {
    /// Compiles a training-path residual block.
    pub fn compile(block: &BinaryResidualBlock) -> Self {
        let (b1, b2) = block.main_path();
        PackedResidual {
            conv1: PackedConv::compile(b1),
            conv2: PackedConv::compile(b2),
            shortcut: block.projection().map(PackedConv::compile),
        }
    }

    /// Rebuilds a residual block from its parts (wire codec + tests).
    pub fn from_raw_parts(
        conv1: PackedConv,
        conv2: PackedConv,
        shortcut: Option<PackedConv>,
    ) -> Self {
        PackedResidual {
            conv1,
            conv2,
            shortcut,
        }
    }

    /// First main-path conv (stride/channel change happens here).
    pub fn conv1(&self) -> &PackedConv {
        &self.conv1
    }

    /// Second main-path conv (stride 1).
    pub fn conv2(&self) -> &PackedConv {
        &self.conv2
    }

    /// The 1×1 projection shortcut, when the block reshapes.
    pub fn shortcut(&self) -> Option<&PackedConv> {
        self.shortcut.as_ref()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        self.conv2.output_hw(h1, w1)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Runs the block.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, _, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let ko = self.out_channels();
        let mut out = vec![0.0f32; n * ko * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, ko, oh, ow], out)
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), drawing every
    /// intermediate activation from `ws`.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        let mut mid = ws.take_f32(n * self.conv1.out_channels() * h1 * w1);
        self.conv1.forward_into(x, n, h, w, ws, &mut mid);
        self.conv2.forward_into(&mid, n, h1, w1, ws, out);
        match &self.shortcut {
            Some(s) => {
                let mut short = ws.take_f32(out.len());
                s.forward_into(x, n, h, w, ws, &mut short);
                for (o, v) in out.iter_mut().zip(&short) {
                    *o += v;
                }
                ws.give_f32(short);
            }
            None => {
                assert_eq!(x.len(), out.len(), "identity shortcut shape mismatch");
                for (o, v) in out.iter_mut().zip(x) {
                    *o += v;
                }
            }
        }
        ws.give_f32(mid);
    }
}

/// A trained [`BnnResNet`] compiled for bit-packed XNOR inference.
///
/// # Example
///
/// ```
/// use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// use hotspot_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let packed = PackedBnn::compile(&net);
/// let logits = packed.forward(&Tensor::ones(&[1, 1, 16, 16]));
/// assert_eq!(logits.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedBnn {
    stem: PackedConv,
    blocks: Vec<PackedResidual>,
    fc_weight: Tensor,
    fc_bias: Tensor,
}

impl PackedBnn {
    /// Compiles a trained network (run at least one training batch
    /// first so the batch-norm running statistics are meaningful).
    pub fn compile(net: &BnnResNet) -> Self {
        // The final dense stays full precision, as in the paper.
        let fcw = net_fc_weight(net);
        PackedBnn {
            stem: PackedConv::compile(net.stem()),
            blocks: net.blocks().iter().map(PackedResidual::compile).collect(),
            fc_weight: fcw.0,
            fc_bias: fcw.1,
        }
    }

    /// Rebuilds a model from its parts (wire codec + tests).
    pub fn from_raw_parts(
        stem: PackedConv,
        blocks: Vec<PackedResidual>,
        fc_weight: Tensor,
        fc_bias: Tensor,
    ) -> Self {
        PackedBnn {
            stem,
            blocks,
            fc_weight,
            fc_bias,
        }
    }

    /// The compiled stem conv.
    pub fn stem(&self) -> &PackedConv {
        &self.stem
    }

    /// The compiled residual blocks, in execution order.
    pub fn blocks(&self) -> &[PackedResidual] {
        &self.blocks
    }

    /// Full-precision classifier weight `[2, c]`.
    pub fn fc_weight(&self) -> &Tensor {
        &self.fc_weight
    }

    /// Full-precision classifier bias `[2]`.
    pub fn fc_bias(&self) -> &Tensor {
        &self.fc_bias
    }

    /// The model's residual binarization level count `M` (the maximum
    /// over its convolutions; 1 = classic single-bit).
    pub fn levels(&self) -> usize {
        let conv_levels = |c: &PackedConv| c.levels();
        let mut m = conv_levels(&self.stem);
        for b in &self.blocks {
            m = m.max(conv_levels(b.conv1())).max(conv_levels(b.conv2()));
            if let Some(s) = b.shortcut() {
                m = m.max(conv_levels(s));
            }
        }
        m
    }

    /// A CRC32 fingerprint of the model's *architecture*: every layer's
    /// filter dimensions, stride, padding, scaling mode and residual
    /// level count, plus the classifier head shape — but none of the
    /// weights.  Two models trained from the same [`NetConfig`] share a
    /// fingerprint; any topology change breaks it.  The serving layer
    /// uses this to validate a hot-swap candidate before publishing it:
    /// a model with a different fingerprint would silently change the
    /// service's input contract or cost profile.
    ///
    /// [`NetConfig`]: crate::model::NetConfig
    pub fn arch_fingerprint(&self) -> u32 {
        let mut w = WireWriter::new();
        let push_conv = |w: &mut WireWriter, conv: &PackedConv| {
            let (k, c, kh, kw) = conv.filter().dims();
            w.put_usize_slice(&[k, c, kh, kw, conv.stride(), conv.pad(), conv.levels()]);
            w.put_u8(match conv.scaling() {
                ScalingMode::PlainSign => 0,
                ScalingMode::Shared => 1,
                ScalingMode::PerChannel => 2,
            });
        };
        push_conv(&mut w, &self.stem);
        w.put_usize(self.blocks.len());
        for b in &self.blocks {
            push_conv(&mut w, b.conv1());
            push_conv(&mut w, b.conv2());
            w.put_bool(b.shortcut().is_some());
            if let Some(s) = b.shortcut() {
                push_conv(&mut w, s);
            }
        }
        w.put_usize_slice(self.fc_weight.shape());
        w.put_usize_slice(self.fc_bias.shape());
        crc32(&w.into_bytes())
    }

    /// Classifies a batch of clips (`[n, 1, h, w]` ±1 tensors),
    /// returning `[n, 2]` logits.
    ///
    /// Compiles a one-shot [`ExecPlan`](crate::plan::ExecPlan) for the
    /// clip resolution and runs it with a pooled workspace.  Callers on
    /// a hot path should compile the plan once and call
    /// [`ExecPlan::run_into`](crate::plan::ExecPlan::run_into) instead.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "packed forward expects NCHW input");
        let plan = self.plan((x.shape()[2], x.shape()[3]));
        let mut ws = global_pool().checkout();
        let logits = plan.run(x, &mut ws);
        global_pool().restore(ws);
        logits
    }
}

fn net_fc_weight(net: &BnnResNet) -> (Tensor, Tensor) {
    // BnnResNet exposes its dense layer parameters through the summary
    // API; here we reach the actual tensors via the public accessors.
    (net.fc_weight().clone(), net.fc_bias().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ste::sign_tensor;
    use hotspot_nn::Layer;
    use hotspot_tensor::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    }

    #[test]
    fn xnor_matches_float_sign_conv() {
        // The packed kernel must agree exactly with a float convolution
        // of the sign tensors (zero padding).
        for (cin, k, stride, pad, seed) in [
            (3usize, 2usize, 1usize, 1usize, 1u32),
            (64, 3, 1, 1, 2),
            (70, 2, 2, 0, 3), // crosses the word boundary
            (1, 3, 1, 1, 4),
        ] {
            let x = pseudo(&[2, cin, 6, 6], seed);
            let w = pseudo(&[4, cin, k, k], seed + 100);
            let sx = sign_tensor(&x);
            let sw = sign_tensor(&w);
            let expect = conv2d(&sx, &sw, None, stride, pad);
            let got = xnor_conv2d(
                &BitTensor::from_tensor(&x),
                &BitFilter::from_tensor(&w),
                stride,
                pad,
            );
            assert_eq!(got.shape(), expect.shape());
            for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
                assert!((a - b).abs() < 1e-3, "cin={cin} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packed_block_matches_float_block_plain_sign() {
        // With PlainSign scaling the packed path reproduces the float
        // eval path exactly (same BN affine, same sign conv).
        let mut rng = StdRng::seed_from_u64(9);
        let mut block = BnnBlock::new(3, 4, 3, 1, 1, ScalingMode::PlainSign, &mut rng);
        // Drive BN running stats with a few training batches.
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 3, 6, 6], 50 + i), true);
        }
        let x = pseudo(&[2, 3, 6, 6], 99);
        let expect = block.forward(&x, false);
        let packed = PackedConv::compile(&block);
        let got = packed.forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_block_matches_float_block_exactly() {
        // Shared scaling is factored output-side in the float path, so
        // the packed engine computes the identical function in eval
        // mode (same BN affine, same sign conv, same scale map).
        let mut rng = StdRng::seed_from_u64(10);
        let mut block = BnnBlock::new(2, 3, 3, 1, 1, ScalingMode::Shared, &mut rng);
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 2, 8, 8], 70 + i), true);
        }
        let x = pseudo(&[1, 2, 8, 8], 199);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_strided_block_matches_exactly() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut block = BnnBlock::new(3, 4, 3, 2, 1, ScalingMode::Shared, &mut rng);
        for i in 0..4 {
            let _ = block.forward(&pseudo(&[2, 3, 8, 8], 80 + i), true);
        }
        let x = pseudo(&[2, 3, 8, 8], 301);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_model_runs_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = crate::BnnResNet::new(&crate::NetConfig::tiny(16), &mut rng);
        // Warm BN stats.
        let _ = net.forward(&pseudo(&[4, 1, 16, 16], 1), true);
        let packed = PackedBnn::compile(&net);
        let x = pseudo(&[3, 1, 16, 16], 2);
        let a = packed.forward(&x);
        let b = packed.forward(&x);
        assert_eq!(a, b);
        assert_eq!(a.shape(), &[3, 2]);
    }

    #[test]
    fn arch_fingerprint_tracks_topology_not_weights() {
        let compile = |seed: u64, cfg: &crate::NetConfig| {
            let mut rng = StdRng::seed_from_u64(seed);
            PackedBnn::compile(&crate::BnnResNet::new(cfg, &mut rng))
        };
        let cfg = crate::NetConfig::tiny(16);
        let a = compile(1, &cfg);
        let b = compile(2, &cfg);
        assert_eq!(
            a.arch_fingerprint(),
            b.arch_fingerprint(),
            "same topology, different weights → same fingerprint"
        );
        // Any topology change breaks the fingerprint.
        let mut wider = cfg.clone();
        wider.stem_filters = 8;
        assert_ne!(
            a.arch_fingerprint(),
            compile(1, &wider).arch_fingerprint(),
            "stem width is part of the fingerprint"
        );
        let leveled = cfg.clone().with_levels(2);
        assert_ne!(
            a.arch_fingerprint(),
            compile(1, &leveled).arch_fingerprint(),
            "residual level count is part of the fingerprint"
        );
    }

    #[test]
    fn bitpacking_shrinks_weight_storage() {
        // 64 channels of 3x3 weights: 64*9 floats = 2304 bytes vs 9 u64
        // words = 72 bytes per filter.
        let w = pseudo(&[1, 64, 3, 3], 5);
        let f = BitFilter::from_tensor(&w);
        let packed_words: usize = 9; // one word per tap
        assert_eq!(f.dims(), (1, 64, 3, 3));
        assert_eq!(f.tap_words(0, 0, 0).len(), 1);
        let float_bytes = w.numel() * 4;
        let packed_bytes = packed_words * 8;
        assert!(float_bytes >= 32 * packed_bytes);
    }
}
