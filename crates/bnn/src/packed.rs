//! Bit-packed XNOR inference engine.
//!
//! [`xnor_conv2d`] is the fast kernel: for each output pixel and kernel
//! tap, one `XOR` + `popcount` per 64 channels replaces 64 float
//! multiply–accumulates.  [`PackedBnn`] compiles a trained
//! [`BnnResNet`] into this representation, folding
//! each block's batch normalization into a per-channel affine and
//! factoring the activation scaling out of the convolution XNOR-Net
//! style (the standard inference-time approximation of the per-channel
//! training scaling; see DESIGN.md).
//!
//! [`BnnResNet`]: crate::model::BnnResNet

use crate::bitpack::{exact_sign_rule, pack_rules_into, BitFilter, BitTensor, SignRule};
use crate::block::{BinaryResidualBlock, BnnBlock};
use crate::kernels::geom::Interior;
use crate::kernels::{self, active_backend, ConvGeometry, KernelBackend};
use crate::model::{BnnResNet, MAX_LEVELS};
use crate::scaling::{box_filter_sliding_into, residual_weight_levels, ScalingMode};
use hotspot_tensor::workspace::{global_pool, Workspace};
use hotspot_tensor::{crc32, Tensor, WireWriter};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Integer scratch rows [`xnor_conv2d_into`] needs: one accumulator
/// plane per filter in a block of four.
pub const ACC_PLANES: usize = 4;

/// Binary convolution on bit-packed operands.
///
/// Computes, for every output pixel, the ±1 inner product
/// `Σ_c Σ_taps sign(x)·sign(w)` via XNOR + popcount.  Taps that fall
/// outside the input contribute zero, matching a float convolution of
/// the sign tensors with zero padding.
///
/// # Panics
///
/// Panics when the channel counts disagree.
pub fn xnor_conv2d(input: &BitTensor, filter: &BitFilter, stride: usize, pad: usize) -> Tensor {
    xnor_conv2d_backend(active_backend(), input, filter, stride, pad)
}

/// [`xnor_conv2d`] with an explicit kernel backend (all backends are
/// bit-identical; this entry point exists for equivalence tests and
/// benchmarks).
///
/// # Panics
///
/// Panics when the channel counts disagree.
pub fn xnor_conv2d_backend(
    backend: KernelBackend,
    input: &BitTensor,
    filter: &BitFilter,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (n, c, h, w) = input.dims();
    let (k, fc, kh, kw) = filter.dims();
    assert_eq!(c, fc, "input has {c} channels, filter expects {fc}");
    assert!(stride > 0, "stride must be positive");
    let geom = ConvGeometry::new(c, h, w, kh, kw, stride, pad);
    let (oh, ow) = (geom.oh, geom.ow);
    let oplane = oh * ow;
    let in_words = input.as_words();

    let mut out = vec![0.0f32; n * k * oplane];
    // Parallelize over batch items; each worker checks one workspace
    // out of the process-wide pool and reuses it for every item it
    // processes (the guard restores it when the worker retires).
    out.par_chunks_mut(k * oplane).enumerate().for_each_init(
        || global_pool().checkout_guard(),
        |ws, (ni, chunk)| {
            let mut acc = ws.take_i32(ACC_PLANES * geom.ow);
            let levels = [LevelFilters {
                filter,
                alpha: None,
            }];
            xnor_item_levels(backend, in_words, &geom, &levels, ni, None, &mut acc, chunk);
            ws.give_i32(acc);
        },
    );
    Tensor::from_vec(&[n, k, oh, ow], out)
}

/// Binary convolution on raw [`BitTensor`]-layout words into a
/// caller-provided `[n, k, oh, ow]` buffer, with caller-provided
/// integer scratch — the sequential, allocation-free core behind
/// [`xnor_conv2d`] and the [`crate::plan::ExecPlan`] engine.  The
/// geometry tables are precomputed by the caller (once per plan step)
/// instead of being rebuilt per plane.
///
/// `acc` must hold [`ACC_PLANES`]` * ow` elements — one output row of
/// accumulators per filter in a block; rows finalize straight out of
/// this L1-resident buffer (contents
/// ignored).  Every element of `out` is overwritten.
///
/// # Panics
///
/// Panics when the filter disagrees with the geometry or a buffer
/// length does not match the dimensions.
pub fn xnor_conv2d_into(
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    filter: &BitFilter,
    acc: &mut [i32],
    out: &mut [f32],
) {
    xnor_conv2d_into_backend(active_backend(), in_words, n, geom, filter, acc, out)
}

/// [`xnor_conv2d_into`] with an explicit kernel backend.
///
/// # Panics
///
/// See [`xnor_conv2d_into`].
pub fn xnor_conv2d_into_backend(
    backend: KernelBackend,
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    filter: &BitFilter,
    acc: &mut [i32],
    out: &mut [f32],
) {
    let levels = [LevelFilters {
        filter,
        alpha: None,
    }];
    xnor_conv2d_levels(backend, in_words, n, geom, &levels, None, acc, out);
}

/// One residual binarization level of a conv: its packed bit plane and
/// the per-filter scale its finalize multiplies in (`None` = unscaled,
/// i.e. PlainSign level 0).
#[derive(Clone, Copy)]
struct LevelFilters<'a> {
    filter: &'a BitFilter,
    alpha: Option<&'a [f32]>,
}

/// Core multi-level conv loop shared by the scaled and unscaled paths.
///
/// All residual levels run **fused**: every kernel tap accumulates
/// into `levels.len()` stacked accumulator row blocks while the input
/// words / strided gather scratch are hot, and each output element is
/// finalized once per level in ascending order (`=` for level 0, `+=`
/// for the correction planes).  This replaces the old
/// one-full-pass-per-level structure — which re-walked the whole image
/// and streamed an `f32` scratch plane per extra level — with
/// identical bit-level results: the integer mismatch counts are
/// order-independent, and the per-element float op sequence (assign
/// `v₀`, then `+= vₗ` ascending) is unchanged.
///
/// When `smap` is `Some` — the per-item `[n, oh, ow]` activation scale
/// map — each level's finalize multiplies `alpha[f] * smap[pixel]`,
/// exactly like the historical scaled path.
///
/// `acc` must hold `levels.len() * ACC_PLANES * ow` elements.
#[allow(clippy::too_many_arguments)]
fn xnor_conv2d_levels(
    backend: KernelBackend,
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    levels: &[LevelFilters],
    smap: Option<&[f32]>,
    acc: &mut [i32],
    out: &mut [f32],
) {
    let (k, fc, kh, kw) = levels[0].filter.dims();
    assert_eq!(
        (fc, kh, kw),
        (geom.c, geom.kh, geom.kw),
        "filter shape disagrees with geometry"
    );
    for lv in levels {
        assert_eq!(
            lv.filter.dims(),
            (k, fc, kh, kw),
            "level filter shape mismatch"
        );
        if let Some(a) = lv.alpha {
            assert_eq!(a.len(), k, "one weight scale per filter");
        }
    }
    let oplane = geom.oh * geom.ow;
    assert_eq!(
        in_words.len(),
        n * geom.h * geom.w * geom.wpp,
        "packed input length mismatch"
    );
    assert_eq!(
        acc.len(),
        levels.len() * ACC_PLANES * geom.ow,
        "acc scratch length mismatch"
    );
    assert_eq!(out.len(), n * k * oplane, "output length mismatch");
    if let Some(smap) = smap {
        assert_eq!(smap.len(), n * oplane, "scale map length mismatch");
    }
    for ni in 0..n {
        let item = &mut out[ni * k * oplane..(ni + 1) * k * oplane];
        let smap_item = smap.map(|s| &s[ni * oplane..(ni + 1) * oplane]);
        xnor_item_levels(backend, in_words, geom, levels, ni, smap_item, acc, item);
    }
}

/// Visits every output pixel outside the interior rectangle.
fn for_each_border(
    oh: usize,
    ow: usize,
    interior: Option<Interior>,
    mut f: impl FnMut(usize, usize),
) {
    match interior {
        None => {
            for oy in 0..oh {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
        }
        Some(int) => {
            for oy in 0..int.oy0 {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
            for oy in int.oy0..int.oy1 {
                for ox in 0..int.ox0 {
                    f(oy, ox);
                }
                for ox in int.ox1..ow {
                    f(oy, ox);
                }
            }
            for oy in int.oy1..oh {
                for ox in 0..ow {
                    f(oy, ox);
                }
            }
        }
    }
}

/// Writes one finalized output value:
/// `dot = taps·c − 2·mismatches`, times the fused activation scale
/// when present.
#[inline]
fn finalize(hit: i32, c: usize, mism: i32, scale: f32) -> f32 {
    (hit * c as i32 - 2 * mism) as f32 * scale
}

/// Finalizes one interior run for one (filter, level): `dst[i] =` (or
/// `+=`, for correction levels) `finalize(hit, c, mism[i], scaleᵢ)`
/// where `scaleᵢ` is `alpha·smap` / `alpha` / `smap` / `1` depending
/// on what is present — the same per-element float op sequence the
/// historical single-level passes used (`x·a` and `a·(x·1)` round
/// identically, so fusing the PlainSign correction scale here is
/// bit-exact against the old `accumulate_scaled` sweep).
fn finalize_row(
    dst: &mut [f32],
    mism: &[i32],
    hit: i32,
    c: usize,
    first: bool,
    alpha_f: Option<f32>,
    srow: Option<&[f32]>,
) {
    #[inline]
    fn write(o: &mut f32, v: f32, first: bool) {
        if first {
            *o = v;
        } else {
            *o += v;
        }
    }
    match (alpha_f, srow) {
        (None, None) => {
            for (o, &m) in dst.iter_mut().zip(mism) {
                write(o, finalize(hit, c, m, 1.0), first);
            }
        }
        (Some(a), None) => {
            for (o, &m) in dst.iter_mut().zip(mism) {
                write(o, finalize(hit, c, m, a), first);
            }
        }
        (Some(a), Some(srow)) => {
            for ((o, &m), &s) in dst.iter_mut().zip(mism).zip(srow) {
                write(o, finalize(hit, c, m, a * s), first);
            }
        }
        (None, Some(srow)) => {
            for ((o, &m), &s) in dst.iter_mut().zip(mism).zip(srow) {
                write(o, finalize(hit, c, m, s), first);
            }
        }
    }
}

/// Scalar form of [`finalize_row`] for border pixels.
#[inline]
#[allow(clippy::too_many_arguments)]
fn finalize_one(
    o: &mut f32,
    hit: i32,
    c: usize,
    mism: i32,
    first: bool,
    alpha_f: Option<f32>,
    s: Option<f32>,
) {
    let scale = match (alpha_f, s) {
        (None, None) => 1.0,
        (Some(a), None) => a,
        (Some(a), Some(s)) => a * s,
        (None, Some(s)) => s,
    };
    let v = finalize(hit, c, mism, scale);
    if first {
        *o = v;
    } else {
        *o += v;
    }
}

/// The four tap words of a filter block (single-word channels only).
#[inline]
fn tap_words4(
    filter: &BitFilter,
    ki: usize,
    fb: usize,
    ky: usize,
    kx: usize,
    kh: usize,
    kw: usize,
) -> [u64; ACC_PLANES] {
    let f_words = filter.as_words();
    let mut ws4 = [0u64; ACC_PLANES];
    for (f, slot) in ws4.iter_mut().enumerate().take(fb) {
        *slot = f_words[((ki + f) * kh + ky) * kw + kx];
    }
    ws4
}

/// Accumulates one kernel tap into one level's `ACC_PLANES × run` row
/// block over the chunk `done..done + src.len()`.
fn accum_level_chunk(
    backend: KernelBackend,
    lacc: &mut [i32],
    run: usize,
    done: usize,
    src: &[u64],
    ws4: [u64; ACC_PLANES],
    fb: usize,
) {
    let m = src.len();
    let (a0, rest) = lacc.split_at_mut(run);
    let (a1, rest) = rest.split_at_mut(run);
    let (a2, a3) = rest.split_at_mut(run);
    if fb == ACC_PLANES {
        kernels::accum_xor_popcount_x4(
            backend,
            [
                &mut a0[done..done + m],
                &mut a1[done..done + m],
                &mut a2[done..done + m],
                &mut a3[done..done + m],
            ],
            src,
            ws4,
        );
    } else {
        let rows = [a0, a1, a2, a3];
        for (row, &wword) in rows.into_iter().zip(&ws4).take(fb) {
            kernels::accum_xor_popcount(backend, &mut row[done..done + m], src, wword);
        }
    }
}

/// One batch item (`k` output planes) of a multi-level binary
/// convolution.
///
/// Filters are processed in blocks of up to four so every input word
/// loaded in the interior loop is reused across the block, and all
/// residual levels accumulate inside the same tap walk so the strided
/// gather scratch (and the L1-hot input row) is shared across levels —
/// an extra level costs one more XNOR sweep over data that is already
/// resident, not a second full pass with its own scratch plane.  The
/// output plane splits into the precomputed interior rectangle — all
/// taps in bounds, handled by the branch-free dispatched kernels — and
/// a thin border handled by the general bounds-checked path.
///
/// Interior loops are *row-outer*: each output row accumulates its
/// `kh·kw` taps into `levels.len()` stacked `ACC_PLANES × run` row
/// buffers that stay L1-resident and finalize straight into `out`
/// (level 0 assigns, correction levels add) before moving to the next
/// row.  Border pixels accumulate their few taps in fixed per-level
/// register arrays and finalize immediately, so no full-plane scratch
/// of any kind exists anywhere.
#[allow(clippy::too_many_arguments)]
fn xnor_item_levels(
    backend: KernelBackend,
    in_words: &[u64],
    geom: &ConvGeometry,
    levels: &[LevelFilters],
    ni: usize,
    smap_item: Option<&[f32]>,
    acc: &mut [i32],
    out: &mut [f32],
) {
    let (k, _, kh, kw) = levels[0].filter.dims();
    let nl = levels.len();
    let (c, h, w) = (geom.c, geom.h, geom.w);
    let (stride, pad) = (geom.stride, geom.pad);
    let (oh, ow, wpp) = (geom.oh, geom.ow, geom.wpp);
    let oplane = oh * ow;
    debug_assert_eq!(wpp, levels[0].filter.words_per_tap());
    debug_assert_eq!(acc.len(), nl * ACC_PLANES * ow);
    debug_assert_eq!(out.len(), k * oplane);
    let full_hit = (kh * kw) as i32;

    let mut ki = 0;
    while ki < k {
        let fb = (k - ki).min(ACC_PLANES);

        if let Some(int) = geom.interior() {
            let run = int.ox1 - int.ox0;
            if wpp == 1 {
                for oy in int.oy0..int.oy1 {
                    let acc_rows = &mut acc[..nl * ACC_PLANES * run];
                    acc_rows.fill(0);
                    for ky in 0..kh {
                        let iy = oy * stride + ky - pad;
                        for kx in 0..kw {
                            let ix0 = int.ox0 * stride + kx - pad;
                            if stride == 1 {
                                let src = &in_words[(ni * h + iy) * w + ix0..][..run];
                                for (l, lv) in levels.iter().enumerate() {
                                    accum_level_chunk(
                                        backend,
                                        &mut acc_rows[l * ACC_PLANES * run..][..ACC_PLANES * run],
                                        run,
                                        0,
                                        src,
                                        tap_words4(lv.filter, ki, fb, ky, kx, kh, kw),
                                        fb,
                                    );
                                }
                            } else {
                                // Strided rows: gather each chunk into a
                                // stack scratch once, then reuse the
                                // contiguous dispatched kernels — the
                                // gather cost is paid once per chunk and
                                // shared across filters *and* levels.
                                const GATHER: usize = 128;
                                let row = &in_words[(ni * h + iy) * w..];
                                let mut gat = [0u64; GATHER];
                                let mut done = 0;
                                while done < run {
                                    let m = (run - done).min(GATHER);
                                    for (i, slot) in gat.iter_mut().enumerate().take(m) {
                                        *slot = row[ix0 + (done + i) * stride];
                                    }
                                    for (l, lv) in levels.iter().enumerate() {
                                        accum_level_chunk(
                                            backend,
                                            &mut acc_rows[l * ACC_PLANES * run..]
                                                [..ACC_PLANES * run],
                                            run,
                                            done,
                                            &gat[..m],
                                            tap_words4(lv.filter, ki, fb, ky, kx, kh, kw),
                                            fb,
                                        );
                                    }
                                    done += m;
                                }
                            }
                        }
                    }
                    // Finalize this row straight from the hot buffers,
                    // levels ascending.
                    let row_off = oy * ow + int.ox0;
                    let srow = smap_item.map(|s| &s[row_off..row_off + run]);
                    for (l, lv) in levels.iter().enumerate() {
                        for f in 0..fb {
                            let mism = &acc_rows[(l * ACC_PLANES + f) * run..][..run];
                            let dst = &mut out[(ki + f) * oplane + row_off..][..run];
                            finalize_row(
                                dst,
                                mism,
                                full_hit,
                                c,
                                l == 0,
                                lv.alpha.map(|a| a[ki + f]),
                                srow,
                            );
                        }
                    }
                }
            } else {
                // Multi-word channels: per pixel, each kernel row is a
                // contiguous kw*wpp span for the dispatched popcount;
                // finalize immediately, levels ascending.
                for oy in int.oy0..int.oy1 {
                    let iy0 = oy * stride - pad;
                    for ox in int.ox0..int.ox1 {
                        let ix0 = ox * stride - pad;
                        let p = oy * ow + ox;
                        let s = smap_item.map(|sm| sm[p]);
                        for f in 0..fb {
                            for (l, lv) in levels.iter().enumerate() {
                                let f_words = lv.filter.as_words();
                                let mut mism = 0u32;
                                for ky in 0..kh {
                                    let ibase = ((ni * h + iy0 + ky) * w + ix0) * wpp;
                                    let fbase = ((ki + f) * kh + ky) * kw * wpp;
                                    mism += kernels::xor_popcount(
                                        backend,
                                        &in_words[ibase..ibase + kw * wpp],
                                        &f_words[fbase..fbase + kw * wpp],
                                    );
                                }
                                finalize_one(
                                    &mut out[(ki + f) * oplane + p],
                                    full_hit,
                                    c,
                                    mism as i32,
                                    l == 0,
                                    lv.alpha.map(|a| a[ki + f]),
                                    s,
                                );
                            }
                        }
                    }
                }
            }
        }

        border_levels_block(in_words, geom, levels, ni, ki, fb, smap_item, out);

        ki += fb;
    }
}

/// Border pixels for one filter block: general per-tap path with
/// bounds checks, accumulating each (level, filter) mismatch count in
/// a fixed register array and finalizing in place, levels ascending.
/// `out` is the single item's `[k, oh, ow]` plane.
#[allow(clippy::too_many_arguments)]
fn border_levels_block(
    in_words: &[u64],
    geom: &ConvGeometry,
    levels: &[LevelFilters],
    ni: usize,
    ki: usize,
    fb: usize,
    smap_item: Option<&[f32]>,
    out: &mut [f32],
) {
    let (c, h, w) = (geom.c, geom.h, geom.w);
    let (stride, pad, wpp) = (geom.stride, geom.pad, geom.wpp);
    let (oh, ow, kh, kw) = (geom.oh, geom.ow, geom.kh, geom.kw);
    let oplane = oh * ow;
    let taps = geom.taps_hit();
    debug_assert!(levels.len() <= MAX_LEVELS);
    for_each_border(oh, ow, geom.interior(), |oy, ox| {
        let p = oy * ow + ox;
        let mut mism = [[0i32; ACC_PLANES]; MAX_LEVELS];
        for ky in 0..kh {
            let iy = oy * stride + ky;
            if iy < pad || iy - pad >= h {
                continue;
            }
            let iy = iy - pad;
            for kx in 0..kw {
                let ix = ox * stride + kx;
                if ix < pad || ix - pad >= w {
                    continue;
                }
                let ix = ix - pad;
                let ibase = ((ni * h + iy) * w + ix) * wpp;
                let src = &in_words[ibase..ibase + wpp];
                for (lm, lv) in mism.iter_mut().zip(levels) {
                    let f_words = lv.filter.as_words();
                    for (f, m) in lm.iter_mut().enumerate().take(fb) {
                        let fbase = (((ki + f) * kh + ky) * kw + kx) * wpp;
                        for (a, b) in src.iter().zip(&f_words[fbase..fbase + wpp]) {
                            *m += (a ^ b).count_ones() as i32;
                        }
                    }
                }
            }
        }
        let s = smap_item.map(|sm| sm[p]);
        for (l, lv) in levels.iter().enumerate() {
            for f in 0..fb {
                finalize_one(
                    &mut out[(ki + f) * oplane + p],
                    taps[p],
                    c,
                    mism[l][f],
                    l == 0,
                    lv.alpha.map(|a| a[ki + f]),
                    s,
                );
            }
        }
    });
}

/// Decomposes the linear interior-tile index range `[t0, t0 + np)`
/// into maximal subruns of consecutive interior columns sharing one
/// `(item, output row)`, calling `f(p, ni, oy, ox0, len)` for each
/// (`p` is the offset inside the tile).  The linear index enumerates
/// `[item][interior row][interior column]`, so GEMM tiles span row and
/// item boundaries with pure div/mod bookkeeping — no run lists are
/// ever allocated.
fn for_each_subrun(
    int: &Interior,
    ih: usize,
    run: usize,
    t0: usize,
    np: usize,
    mut f: impl FnMut(usize, usize, usize, usize, usize),
) {
    let mut p = 0usize;
    let mut t = t0;
    while p < np {
        let g = t / run;
        let r0 = t % run;
        let ni = g / ih;
        let oy = int.oy0 + (g % ih);
        let len = (run - r0).min(np - p);
        f(p, ni, oy, int.ox0 + r0, len);
        p += len;
        t += len;
    }
}

/// Densely repacks a filter's receptive-field bits: per filter, the
/// `c·kh·kw` weight bits in `(ky, kx, word)` order packed back-to-back
/// into `kdense = ⌈c·kh·kw/64⌉` words — the A-matrix rows of the GEMM
/// tier.  For channel counts below 64 this cuts the reduction depth
/// well under the sparse `kh·kw·wpp` tap-word walk (c=8, 3×3: 2 dense
/// words vs 9 sparse), because the sparse layout pads every tap word's
/// high bits with zeros.
fn dense_filter_words(filter: &BitFilter) -> (usize, Vec<u64>) {
    let (k, c, kh, kw) = filter.dims();
    let wpt = filter.words_per_tap();
    let kdense = (c * kh * kw).div_ceil(64);
    let words = filter.as_words();
    let mut out = vec![0u64; k * kdense];
    for f in 0..k {
        let dst = &mut out[f * kdense..(f + 1) * kdense];
        let mut j = 0usize;
        let mut off = 0usize;
        for ky in 0..kh {
            for kx in 0..kw {
                for wi in 0..wpt {
                    let nbits = (c - wi * 64).min(64);
                    let msk = if nbits == 64 {
                        !0u64
                    } else {
                        (1u64 << nbits) - 1
                    };
                    let bits = words[((f * kh + ky) * kw + kx) * wpt + wi] & msk;
                    dst[j] |= bits << off;
                    if off != 0 && off + nbits > 64 {
                        dst[j + 1] |= bits >> (64 - off);
                    }
                    off += nbits;
                    if off >= 64 {
                        j += 1;
                        off -= 64;
                    }
                }
            }
        }
        debug_assert_eq!(j * 64 + off, c * kh * kw);
    }
    (kdense, out)
}

/// Precomputed A-matrix state for the batched GEMM tier: every
/// residual level's filters with their receptive-field bits densely
/// repacked by [`dense_filter_words`].  Built once at prep time and
/// shared by all forward calls.
#[derive(Debug, Clone)]
struct GemmPrep {
    /// Dense reduction words per filter (`⌈c·kh·kw/64⌉`).
    kdense: usize,
    /// Per level: `k * kdense` dense filter words.
    a: Vec<Vec<u64>>,
}

/// Packs `np` interior output pixels (linear tile indices
/// `[t0, t0 + np)`) as dense B-matrix columns: per pixel, the
/// `c·kh·kw` receptive-field input bits in the same `(ky, kx, word)`
/// order as [`dense_filter_words`], laid out column-major by reduction
/// word (`b[j*np + p]`) so the GEMM microkernels load consecutive
/// pixels with one vector load.  `b[..kdense*np]` must be pre-zeroed.
///
/// Bit-exactness: the dense layout carries exactly the same bit
/// multiset as the sparse tap words — the channel-padding high bits
/// are zero in both operands by the bitpack invariant (and masked here
/// defensively) — so `Σ_j popcount(a_dense ^ b_dense)` equals the
/// per-tap mismatch sum of the sparse walk, word alignment
/// notwithstanding.
fn pack_b_tile(
    in_words: &[u64],
    geom: &ConvGeometry,
    int: &Interior,
    t0: usize,
    np: usize,
    b: &mut [u64],
) {
    let (c, h, w) = (geom.c, geom.h, geom.w);
    let (stride, pad, wpp) = (geom.stride, geom.pad, geom.wpp);
    let (kh, kw) = (geom.kh, geom.kw);
    let run = int.ox1 - int.ox0;
    let ih = int.oy1 - int.oy0;
    let mut j = 0usize;
    let mut off = 0usize;
    for ky in 0..kh {
        for kx in 0..kw {
            for wi in 0..wpp {
                let nbits = (c - wi * 64).min(64);
                let msk = if nbits == 64 {
                    !0u64
                } else {
                    (1u64 << nbits) - 1
                };
                if off != 0 && off + nbits > 64 {
                    // Tap word straddles two dense rows (c % 64 not a
                    // divisor of 64 — never the case for power-of-two
                    // widths, so this path is cold).
                    let (head, tail) = b.split_at_mut((j + 1) * np);
                    let d = &mut head[j * np..];
                    let d2 = &mut tail[..np];
                    for_each_subrun(int, ih, run, t0, np, |p, ni, oy, ox0, len| {
                        let iy = oy * stride + ky - pad;
                        let ix0 = ox0 * stride + kx - pad;
                        let base = ((ni * h + iy) * w + ix0) * wpp + wi;
                        for i in 0..len {
                            let word = in_words[base + i * stride * wpp] & msk;
                            d[p + i] |= word << off;
                            d2[p + i] |= word >> (64 - off);
                        }
                    });
                } else {
                    let d = &mut b[j * np..(j + 1) * np];
                    for_each_subrun(int, ih, run, t0, np, |p, ni, oy, ox0, len| {
                        let iy = oy * stride + ky - pad;
                        let ix0 = ox0 * stride + kx - pad;
                        if stride == 1 && wpp == 1 {
                            // Contiguous source: a plain mask-shift-or
                            // sweep the compiler auto-vectorizes.
                            let src = &in_words[(ni * h + iy) * w + ix0..][..len];
                            for (dd, &s) in d[p..p + len].iter_mut().zip(src) {
                                *dd |= (s & msk) << off;
                            }
                        } else {
                            let base = ((ni * h + iy) * w + ix0) * wpp + wi;
                            for i in 0..len {
                                d[p + i] |= (in_words[base + i * stride * wpp] & msk) << off;
                            }
                        }
                    });
                }
                off += nbits;
                if off >= 64 {
                    j += 1;
                    off -= 64;
                }
            }
        }
    }
    debug_assert_eq!(j * 64 + off, c * kh * kw);
}

/// Pixels per GEMM B tile.  At the deepest reduction this net reaches
/// (c=64, 3×3 ⇒ 9 dense words) a tile is ≈36 KiB of packed B plus
/// 8 KiB of accumulators — sized to stay cache-resident while
/// amortizing the pack cost over every filter block × residual level.
const GEMM_TILE: usize = 1024;

/// The batched bit-sliced XNOR-GEMM interior: packs tiles of interior
/// output pixels (spanning rows *and* batch items) as dense B columns
/// once, then streams every filter block × residual level over the
/// same tile through the backend's [`kernels::PopcountGemm`]
/// microkernel, fusing the per-channel affine/sign finalize into the
/// epilogue.  Border pixels are handled separately by
/// [`border_levels_block`].
///
/// Bit-identical to the per-clip path: dense repacking preserves the
/// integer mismatch counts (see [`pack_b_tile`]) and the epilogue
/// replays the exact per-element float op sequence of
/// [`finalize_row`].
#[allow(clippy::too_many_arguments)]
fn xnor_conv_gemm_levels(
    backend: KernelBackend,
    in_words: &[u64],
    n: usize,
    geom: &ConvGeometry,
    gp: &GemmPrep,
    levels: &[LevelFilters],
    smap: Option<&[f32]>,
    ws: &mut Workspace,
    out: &mut [f32],
) {
    let int = geom.interior().expect("gemm tier requires an interior");
    let (k, _, kh, kw) = levels[0].filter.dims();
    let (c, oh, ow) = (geom.c, geom.oh, geom.ow);
    let oplane = oh * ow;
    let run = int.ox1 - int.ox0;
    let ih = int.oy1 - int.oy0;
    let total = n * ih * run;
    let full_hit = (kh * kw) as i32;
    let kd = gp.kdense;
    let gemm = kernels::gemm_backend(backend);
    let np_cap = GEMM_TILE.min(total.max(1));
    let mut b = ws.take_u64(kd * np_cap);
    let mut acc = ws.take_i32(ACC_PLANES * np_cap);
    let mut t0 = 0usize;
    while t0 < total {
        let np = np_cap.min(total - t0);
        let b_tile = &mut b[..kd * np];
        b_tile.fill(0);
        pack_b_tile(in_words, geom, &int, t0, np, b_tile);
        let mut ki = 0usize;
        while ki < k {
            let fb = (k - ki).min(ACC_PLANES);
            for (l, lv) in levels.iter().enumerate() {
                let a_block = &gp.a[l][ki * kd..(ki + fb) * kd];
                let acc_block = &mut acc[..fb * np];
                acc_block.fill(0);
                gemm.gemm_block(acc_block, fb, a_block, b_tile, np, kd);
                // Epilogue: fused affine/sign finalize straight from
                // the tile accumulators into the output layout.
                for_each_subrun(&int, ih, run, t0, np, |p, ni, oy, ox0, len| {
                    let row_off = oy * ow + ox0;
                    let srow = smap.map(|s| &s[ni * oplane + row_off..][..len]);
                    for f in 0..fb {
                        let mism = &acc_block[f * np + p..][..len];
                        let dst = &mut out[(ni * k + ki + f) * oplane + row_off..][..len];
                        finalize_row(
                            dst,
                            mism,
                            full_hit,
                            c,
                            l == 0,
                            lv.alpha.map(|a| a[ki + f]),
                            srow,
                        );
                    }
                });
            }
            ki += fb;
        }
        t0 += np;
    }
    ws.give_i32(acc);
    ws.give_u64(b);
}

/// Shape-derived state for running one [`PackedConv`] at a fixed input
/// resolution: the precomputed [`ConvGeometry`], the fused
/// binarization [`SignRule`]s (PlainSign mode), and the kernel backend
/// — everything `forward_prepped` needs that does not depend on the
/// activations.  Built once per `Step::Conv` at plan-compile time.
///
/// This is deliberately *not* stored on [`PackedConv`] itself: the
/// conv is a serialized wire-format struct, and prep state is
/// derivable, per-resolution, and backend-specific.
#[derive(Debug, Clone)]
pub struct ConvPrep {
    geom: ConvGeometry,
    rules: Vec<SignRule>,
    backend: KernelBackend,
    /// Effective residual level count for this prep: the conv's own
    /// level count, possibly capped lower (cascade triage runs an
    /// M-level model at M = 1).
    levels: usize,
    /// Dense A-matrix words for the batched GEMM tier (`None` when the
    /// layer has no interior rectangle to tile).
    gemm: Option<GemmPrep>,
}

impl ConvPrep {
    /// The precomputed geometry tables.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// The kernel backend this prep dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Residual binarization levels this prep will execute.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Whether the batched bit-sliced GEMM tier is available for this
    /// prep (the layer has an interior rectangle to tile; batched
    /// forwards with `n ≥ 2` will route through it).
    pub fn gemm_tier(&self) -> bool {
        self.gemm.is_some()
    }
}

/// A compiled binary convolution block: batch-norm affine + packed
/// weights + output scaling.
///
/// The packed weights are a stack of M residual bit planes (ReBNet's
/// residual binarization, `W ≈ Σ_ℓ α_ℓ ⊙ sign(r_ℓ)`): `filter` /
/// `alpha_w` hold level 0 — exactly the classic single-bit
/// representation — and `extra_levels` holds the `M − 1` correction
/// planes with their per-level, per-filter scales.  Inference runs one
/// XNOR pass of the *same* popcount kernels per plane and accumulates;
/// an empty `extra_levels` is bit-for-bit the old single-level conv.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedConv {
    bn_scale: Vec<f32>,
    bn_shift: Vec<f32>,
    filter: BitFilter,
    alpha_w: Vec<f32>,
    stride: usize,
    pad: usize,
    kernel: usize,
    scaling: ScalingMode,
    extra_levels: Vec<(BitFilter, Vec<f32>)>,
}

impl PackedConv {
    /// Compiles one training-path [`BnnBlock`] into packed form, using
    /// the block's running batch-norm statistics.
    pub fn compile(block: &BnnBlock) -> Self {
        let bn = block.batch_norm();
        let conv = block.conv();
        let c = bn.gamma().value.numel();
        let mut bn_scale = Vec::with_capacity(c);
        let mut bn_shift = Vec::with_capacity(c);
        for ci in 0..c {
            let inv_std = 1.0 / (bn.running_var()[ci] + bn.epsilon()).sqrt();
            let g = bn.gamma().value.as_slice()[ci];
            let b = bn.beta().value.as_slice()[ci];
            bn_scale.push(g * inv_std);
            bn_shift.push(b - g * bn.running_mean()[ci] * inv_std);
        }
        let w = &conv.weight().value;
        let scaling = conv.scaling_mode();
        // Residual weight binarization: level 0 is the classic
        // single-bit plane (r_0 = W, so its BitFilter and α_W match
        // the old compile exactly); levels 1.. pack the sign bits of
        // the successive residuals with their own per-filter scales.
        let plain = matches!(scaling, ScalingMode::PlainSign);
        let mut lv = residual_weight_levels(w, conv.levels(), plain).into_iter();
        let (r0, alpha_w) = lv.next().expect("at least one level");
        let extra_levels = lv
            .map(|(r, alpha)| (BitFilter::from_tensor(&r), alpha))
            .collect();
        PackedConv {
            bn_scale,
            bn_shift,
            filter: BitFilter::from_tensor(&r0),
            alpha_w,
            stride: conv.stride(),
            pad: conv.pad(),
            kernel: w.shape()[2],
            scaling,
            extra_levels,
        }
    }

    /// Rebuilds a packed conv from its parts (wire codec + tests).
    /// `extra_levels` holds the residual correction planes beyond the
    /// first; pass an empty vector for a classic single-level conv.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        bn_scale: Vec<f32>,
        bn_shift: Vec<f32>,
        filter: BitFilter,
        alpha_w: Vec<f32>,
        stride: usize,
        pad: usize,
        kernel: usize,
        scaling: ScalingMode,
        extra_levels: Vec<(BitFilter, Vec<f32>)>,
    ) -> Self {
        PackedConv {
            bn_scale,
            bn_shift,
            filter,
            alpha_w,
            stride,
            pad,
            kernel,
            scaling,
            extra_levels,
        }
    }

    /// Folded batch-norm scale per input channel.
    pub fn bn_scale(&self) -> &[f32] {
        &self.bn_scale
    }

    /// Folded batch-norm shift per input channel.
    pub fn bn_shift(&self) -> &[f32] {
        &self.bn_shift
    }

    /// The bit-packed weights.
    pub fn filter(&self) -> &BitFilter {
        &self.filter
    }

    /// Per-filter weight scale `α_W` (level 0).
    pub fn alpha_w(&self) -> &[f32] {
        &self.alpha_w
    }

    /// Residual binarization level count `M` (1 = single-bit).
    pub fn levels(&self) -> usize {
        1 + self.extra_levels.len()
    }

    /// The residual correction planes beyond level 0, each with its
    /// per-filter scales.
    pub fn extra_levels(&self) -> &[(BitFilter, Vec<f32>)] {
        &self.extra_levels
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding on each side.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Square kernel side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The activation-scaling mode this conv was compiled with.
    pub fn scaling(&self) -> ScalingMode {
        self.scaling
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.alpha_w.len()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.bn_scale.len()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.kernel) / self.stride + 1,
            (w + 2 * self.pad - self.kernel) / self.stride + 1,
        )
    }

    /// Runs the block on a real-valued NCHW activation.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.bn_scale.len(), "channel mismatch");
        let (oh, ow) = self.output_hw(h, w);
        let mut out = vec![0.0f32; n * self.alpha_w.len() * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, self.alpha_w.len(), oh, ow], out)
    }

    /// Builds the shape-derived [`ConvPrep`] for an `h × w` input,
    /// dispatching to [`active_backend`].
    pub fn prepare(&self, h: usize, w: usize) -> ConvPrep {
        self.prepare_with_backend(h, w, active_backend())
    }

    /// [`PackedConv::prepare`] with an explicit kernel backend, running
    /// all compiled-in residual levels.
    pub fn prepare_with_backend(&self, h: usize, w: usize, backend: KernelBackend) -> ConvPrep {
        self.prepare_capped(h, w, backend, usize::MAX)
    }

    /// [`PackedConv::prepare_with_backend`] with the executed residual
    /// level count capped at `max_levels` (clamped to `1..=M`): the
    /// cascade's triage stage runs an M-level model at M = 1 without
    /// recompiling it.
    pub fn prepare_capped(
        &self,
        h: usize,
        w: usize,
        backend: KernelBackend,
        max_levels: usize,
    ) -> ConvPrep {
        let c = self.bn_scale.len();
        let geom = ConvGeometry::new(c, h, w, self.kernel, self.kernel, self.stride, self.pad);
        // PlainSign binarizes sign(s·x + b); fold the affine into one
        // exact threshold rule per channel so the forward pass packs
        // bits straight from the raw input.  The scaled modes need the
        // affine values themselves (for the |T_in| mean) and use the
        // fused pack+mean pass instead.
        let rules = if matches!(self.scaling, ScalingMode::PlainSign) {
            self.bn_scale
                .iter()
                .zip(&self.bn_shift)
                .map(|(&s, &b)| exact_sign_rule(s, b))
                .collect()
        } else {
            Vec::new()
        };
        let levels = max_levels.clamp(1, self.levels());
        // Dense GEMM A-matrix per executed level: built eagerly (the
        // prep is compiled once per plan step) so batched forwards
        // only pack the activation side.
        let gemm = geom.interior().map(|_| {
            let (kdense, a0) = dense_filter_words(&self.filter);
            let mut a = Vec::with_capacity(levels);
            a.push(a0);
            for (filter_l, _) in &self.extra_levels[..levels - 1] {
                a.push(dense_filter_words(filter_l).1);
            }
            GemmPrep { kdense, a }
        });
        ConvPrep {
            geom,
            rules,
            backend,
            levels,
            gemm,
        }
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), with every intermediate —
    /// packed sign words, integer popcount scratch, scale maps — drawn
    /// from `ws`.  After one warm-up call with the same shapes,
    /// subsequent calls perform no heap allocation.
    ///
    /// Builds a fresh [`ConvPrep`] per call; plan-driven callers build
    /// it once and use [`PackedConv::forward_prepped`].
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let prep = self.prepare(h, w);
        self.forward_prepped(&prep, x, n, ws, out);
    }

    /// [`PackedConv::forward_into`] with precomputed shape-derived
    /// state (the input resolution is fixed by `prep`).
    ///
    /// The batch-norm affine is fused into the binarize+pack pass, so
    /// no normalized f32 tensor is ever materialized: PlainSign packs
    /// through exact per-channel threshold rules; the scaled modes use
    /// one fused pass that packs and accumulates the `|T_in|` channel
    /// mean together, then box-filters it with the O(1) sliding window.
    /// The result is bit-for-bit identical to the old materializing
    /// path.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions or
    /// `prep` was built for a different conv shape.
    pub fn forward_prepped(
        &self,
        prep: &ConvPrep,
        x: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        self.forward_impl(prep, x, n, ws, out, false)
    }

    /// [`PackedConv::forward_prepped`] routed through the batched
    /// bit-sliced XNOR-GEMM tier: interior pixels of all `n` items are
    /// tiled together as dense B columns and streamed through the
    /// backend's [`kernels::PopcountGemm`] microkernel (bit-identical
    /// to the per-clip path; see [`ConvPrep::gemm_tier`]).  With
    /// `n < 2` or no interior it falls back to the per-clip engine.
    pub fn forward_prepped_batch(
        &self,
        prep: &ConvPrep,
        x: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        self.forward_impl(prep, x, n, ws, out, true)
    }

    fn forward_impl(
        &self,
        prep: &ConvPrep,
        x: &[f32],
        n: usize,
        ws: &mut Workspace,
        out: &mut [f32],
        batched: bool,
    ) {
        let c = self.bn_scale.len();
        let geom = &prep.geom;
        assert_eq!(
            (geom.c, geom.kh, geom.stride, geom.pad),
            (c, self.kernel, self.stride, self.pad),
            "prep was built for a different conv"
        );
        let (h, w) = (geom.h, geom.w);
        let plane = h * w;
        assert_eq!(x.len(), n * c * plane, "input length mismatch");
        let (oh, ow) = (geom.oh, geom.ow);
        let oplane = oh * ow;
        let ko = self.alpha_w.len();
        assert_eq!(out.len(), n * ko * oplane, "output length mismatch");
        let wpp = geom.wpp;
        let mut words = ws.take_u64(n * plane * wpp);

        // Residual levels beyond the first to execute: the prep can cap
        // below the compiled-in count (cascade triage).  With none, the
        // code below is call-for-call the single-level path.
        let extra = prep.levels.min(self.levels()).saturating_sub(1);
        let nl = 1 + extra;

        // Level table: level 0 is the classic single-bit plane
        // (unscaled in PlainSign mode, α_W-scaled otherwise); the
        // correction planes always carry their per-level scales.  A
        // fixed stack array keeps the warm path allocation-free.
        let mut lv = [LevelFilters {
            filter: &self.filter,
            alpha: None,
        }; MAX_LEVELS];
        if !matches!(self.scaling, ScalingMode::PlainSign) {
            lv[0].alpha = Some(&self.alpha_w);
        }
        for (slot, (filter_l, alpha_l)) in lv[1..nl].iter_mut().zip(&self.extra_levels) {
            *slot = LevelFilters {
                filter: filter_l,
                alpha: Some(alpha_l),
            };
        }

        let mut smap = None;
        if matches!(self.scaling, ScalingMode::PlainSign) {
            pack_rules_into(x, n, c, h, w, &prep.rules, &mut words);
        } else {
            // Factored activation scale: the exact same map the float
            // Shared path multiplies into its output, so compiled
            // inference reproduces the training-path function.
            // Networks trained with PerChannel scaling are
            // approximated by this shared map at inference (see crate
            // docs).
            let mut sm = ws.take_f32(n * oplane);
            let mut mean = ws.take_f32(plane);
            let mut colsum = ws.take_f64(w);
            for ni in 0..n {
                kernels::pack_affine_mean(
                    prep.backend,
                    &x[ni * c * plane..(ni + 1) * c * plane],
                    c,
                    h,
                    w,
                    &self.bn_scale,
                    &self.bn_shift,
                    &mut words[ni * plane * wpp..(ni + 1) * plane * wpp],
                    &mut mean,
                );
                box_filter_sliding_into(
                    &mean,
                    h,
                    w,
                    self.kernel,
                    self.kernel,
                    self.stride,
                    self.pad,
                    &mut colsum,
                    &mut sm[ni * oplane..(ni + 1) * oplane],
                );
            }
            ws.give_f64(colsum);
            ws.give_f32(mean);
            smap = Some(sm);
        }

        match (batched && n >= 2, prep.gemm.as_ref()) {
            (true, Some(gp)) => {
                xnor_conv_gemm_levels(
                    prep.backend,
                    &words,
                    n,
                    geom,
                    gp,
                    &lv[..nl],
                    smap.as_deref(),
                    ws,
                    out,
                );
                // Border pixels per item: the same bounds-checked path
                // as the per-clip engine.
                for ni in 0..n {
                    let item = &mut out[ni * ko * oplane..(ni + 1) * ko * oplane];
                    let smap_item = smap.as_deref().map(|s| &s[ni * oplane..(ni + 1) * oplane]);
                    let mut ki = 0;
                    while ki < ko {
                        let fb = (ko - ki).min(ACC_PLANES);
                        border_levels_block(&words, geom, &lv[..nl], ni, ki, fb, smap_item, item);
                        ki += fb;
                    }
                }
            }
            _ => {
                let mut acc = ws.take_i32(nl * ACC_PLANES * ow);
                xnor_conv2d_levels(
                    prep.backend,
                    &words,
                    n,
                    geom,
                    &lv[..nl],
                    smap.as_deref(),
                    &mut acc,
                    out,
                );
                ws.give_i32(acc);
            }
        }
        if let Some(sm) = smap {
            ws.give_f32(sm);
        }
        ws.give_u64(words);
    }
}

/// A compiled residual block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedResidual {
    conv1: PackedConv,
    conv2: PackedConv,
    shortcut: Option<PackedConv>,
}

impl PackedResidual {
    /// Compiles a training-path residual block.
    pub fn compile(block: &BinaryResidualBlock) -> Self {
        let (b1, b2) = block.main_path();
        PackedResidual {
            conv1: PackedConv::compile(b1),
            conv2: PackedConv::compile(b2),
            shortcut: block.projection().map(PackedConv::compile),
        }
    }

    /// Rebuilds a residual block from its parts (wire codec + tests).
    pub fn from_raw_parts(
        conv1: PackedConv,
        conv2: PackedConv,
        shortcut: Option<PackedConv>,
    ) -> Self {
        PackedResidual {
            conv1,
            conv2,
            shortcut,
        }
    }

    /// First main-path conv (stride/channel change happens here).
    pub fn conv1(&self) -> &PackedConv {
        &self.conv1
    }

    /// Second main-path conv (stride 1).
    pub fn conv2(&self) -> &PackedConv {
        &self.conv2
    }

    /// The 1×1 projection shortcut, when the block reshapes.
    pub fn shortcut(&self) -> Option<&PackedConv> {
        self.shortcut.as_ref()
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        self.conv2.output_hw(h1, w1)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv2.out_channels()
    }

    /// Runs the block.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, _, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let ko = self.out_channels();
        let mut out = vec![0.0f32; n * ko * oh * ow];
        let mut ws = global_pool().checkout();
        self.forward_into(x.as_slice(), n, h, w, &mut ws, &mut out);
        global_pool().restore(ws);
        Tensor::from_vec(&[n, ko, oh, ow], out)
    }

    /// Runs the block on a raw NCHW slice into a caller-provided
    /// `[n, k, oh, ow]` buffer (overwritten), drawing every
    /// intermediate activation from `ws`.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the dimensions.
    pub fn forward_into(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let (h1, w1) = self.conv1.output_hw(h, w);
        let mut mid = ws.take_f32(n * self.conv1.out_channels() * h1 * w1);
        self.conv1.forward_into(x, n, h, w, ws, &mut mid);
        self.conv2.forward_into(&mid, n, h1, w1, ws, out);
        match &self.shortcut {
            Some(s) => {
                let mut short = ws.take_f32(out.len());
                s.forward_into(x, n, h, w, ws, &mut short);
                for (o, v) in out.iter_mut().zip(&short) {
                    *o += v;
                }
                ws.give_f32(short);
            }
            None => {
                assert_eq!(x.len(), out.len(), "identity shortcut shape mismatch");
                for (o, v) in out.iter_mut().zip(x) {
                    *o += v;
                }
            }
        }
        ws.give_f32(mid);
    }
}

/// A trained [`BnnResNet`] compiled for bit-packed XNOR inference.
///
/// # Example
///
/// ```
/// use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// use hotspot_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let packed = PackedBnn::compile(&net);
/// let logits = packed.forward(&Tensor::ones(&[1, 1, 16, 16]));
/// assert_eq!(logits.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackedBnn {
    stem: PackedConv,
    blocks: Vec<PackedResidual>,
    fc_weight: Tensor,
    fc_bias: Tensor,
}

impl PackedBnn {
    /// Compiles a trained network (run at least one training batch
    /// first so the batch-norm running statistics are meaningful).
    pub fn compile(net: &BnnResNet) -> Self {
        // The final dense stays full precision, as in the paper.
        let fcw = net_fc_weight(net);
        PackedBnn {
            stem: PackedConv::compile(net.stem()),
            blocks: net.blocks().iter().map(PackedResidual::compile).collect(),
            fc_weight: fcw.0,
            fc_bias: fcw.1,
        }
    }

    /// Rebuilds a model from its parts (wire codec + tests).
    pub fn from_raw_parts(
        stem: PackedConv,
        blocks: Vec<PackedResidual>,
        fc_weight: Tensor,
        fc_bias: Tensor,
    ) -> Self {
        PackedBnn {
            stem,
            blocks,
            fc_weight,
            fc_bias,
        }
    }

    /// The compiled stem conv.
    pub fn stem(&self) -> &PackedConv {
        &self.stem
    }

    /// The compiled residual blocks, in execution order.
    pub fn blocks(&self) -> &[PackedResidual] {
        &self.blocks
    }

    /// Full-precision classifier weight `[2, c]`.
    pub fn fc_weight(&self) -> &Tensor {
        &self.fc_weight
    }

    /// Full-precision classifier bias `[2]`.
    pub fn fc_bias(&self) -> &Tensor {
        &self.fc_bias
    }

    /// The model's residual binarization level count `M` (the maximum
    /// over its convolutions; 1 = classic single-bit).
    pub fn levels(&self) -> usize {
        let conv_levels = |c: &PackedConv| c.levels();
        let mut m = conv_levels(&self.stem);
        for b in &self.blocks {
            m = m.max(conv_levels(b.conv1())).max(conv_levels(b.conv2()));
            if let Some(s) = b.shortcut() {
                m = m.max(conv_levels(s));
            }
        }
        m
    }

    /// A CRC32 fingerprint of the model's *architecture*: every layer's
    /// filter dimensions, stride, padding, scaling mode and residual
    /// level count, plus the classifier head shape — but none of the
    /// weights.  Two models trained from the same [`NetConfig`] share a
    /// fingerprint; any topology change breaks it.  The serving layer
    /// uses this to validate a hot-swap candidate before publishing it:
    /// a model with a different fingerprint would silently change the
    /// service's input contract or cost profile.
    ///
    /// [`NetConfig`]: crate::model::NetConfig
    pub fn arch_fingerprint(&self) -> u32 {
        let mut w = WireWriter::new();
        let push_conv = |w: &mut WireWriter, conv: &PackedConv| {
            let (k, c, kh, kw) = conv.filter().dims();
            w.put_usize_slice(&[k, c, kh, kw, conv.stride(), conv.pad(), conv.levels()]);
            w.put_u8(match conv.scaling() {
                ScalingMode::PlainSign => 0,
                ScalingMode::Shared => 1,
                ScalingMode::PerChannel => 2,
            });
        };
        push_conv(&mut w, &self.stem);
        w.put_usize(self.blocks.len());
        for b in &self.blocks {
            push_conv(&mut w, b.conv1());
            push_conv(&mut w, b.conv2());
            w.put_bool(b.shortcut().is_some());
            if let Some(s) = b.shortcut() {
                push_conv(&mut w, s);
            }
        }
        w.put_usize_slice(self.fc_weight.shape());
        w.put_usize_slice(self.fc_bias.shape());
        crc32(&w.into_bytes())
    }

    /// Classifies a batch of clips (`[n, 1, h, w]` ±1 tensors),
    /// returning `[n, 2]` logits.
    ///
    /// Compiles a one-shot [`ExecPlan`](crate::plan::ExecPlan) for the
    /// clip resolution and runs it with a pooled workspace.  Callers on
    /// a hot path should compile the plan once and call
    /// [`ExecPlan::run_into`](crate::plan::ExecPlan::run_into) instead.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 4, "packed forward expects NCHW input");
        let plan = self.plan((x.shape()[2], x.shape()[3]));
        let mut ws = global_pool().checkout();
        let logits = plan.run(x, &mut ws);
        global_pool().restore(ws);
        logits
    }
}

fn net_fc_weight(net: &BnnResNet) -> (Tensor, Tensor) {
    // BnnResNet exposes its dense layer parameters through the summary
    // API; here we reach the actual tensors via the public accessors.
    (net.fc_weight().clone(), net.fc_bias().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ste::sign_tensor;
    use hotspot_nn::Layer;
    use hotspot_tensor::conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    }

    #[test]
    fn xnor_matches_float_sign_conv() {
        // The packed kernel must agree exactly with a float convolution
        // of the sign tensors (zero padding).
        for (cin, k, stride, pad, seed) in [
            (3usize, 2usize, 1usize, 1usize, 1u32),
            (64, 3, 1, 1, 2),
            (70, 2, 2, 0, 3), // crosses the word boundary
            (1, 3, 1, 1, 4),
        ] {
            let x = pseudo(&[2, cin, 6, 6], seed);
            let w = pseudo(&[4, cin, k, k], seed + 100);
            let sx = sign_tensor(&x);
            let sw = sign_tensor(&w);
            let expect = conv2d(&sx, &sw, None, stride, pad);
            let got = xnor_conv2d(
                &BitTensor::from_tensor(&x),
                &BitFilter::from_tensor(&w),
                stride,
                pad,
            );
            assert_eq!(got.shape(), expect.shape());
            for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
                assert!((a - b).abs() < 1e-3, "cin={cin} k={k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn packed_block_matches_float_block_plain_sign() {
        // With PlainSign scaling the packed path reproduces the float
        // eval path exactly (same BN affine, same sign conv).
        let mut rng = StdRng::seed_from_u64(9);
        let mut block = BnnBlock::new(3, 4, 3, 1, 1, ScalingMode::PlainSign, &mut rng);
        // Drive BN running stats with a few training batches.
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 3, 6, 6], 50 + i), true);
        }
        let x = pseudo(&[2, 3, 6, 6], 99);
        let expect = block.forward(&x, false);
        let packed = PackedConv::compile(&block);
        let got = packed.forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_block_matches_float_block_exactly() {
        // Shared scaling is factored output-side in the float path, so
        // the packed engine computes the identical function in eval
        // mode (same BN affine, same sign conv, same scale map).
        let mut rng = StdRng::seed_from_u64(10);
        let mut block = BnnBlock::new(2, 3, 3, 1, 1, ScalingMode::Shared, &mut rng);
        for i in 0..5 {
            let _ = block.forward(&pseudo(&[4, 2, 8, 8], 70 + i), true);
        }
        let x = pseudo(&[1, 2, 8, 8], 199);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_shared_strided_block_matches_exactly() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut block = BnnBlock::new(3, 4, 3, 2, 1, ScalingMode::Shared, &mut rng);
        for i in 0..4 {
            let _ = block.forward(&pseudo(&[2, 3, 8, 8], 80 + i), true);
        }
        let x = pseudo(&[2, 3, 8, 8], 301);
        let expect = block.forward(&x, false);
        let got = PackedConv::compile(&block).forward(&x);
        assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_model_runs_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = crate::BnnResNet::new(&crate::NetConfig::tiny(16), &mut rng);
        // Warm BN stats.
        let _ = net.forward(&pseudo(&[4, 1, 16, 16], 1), true);
        let packed = PackedBnn::compile(&net);
        let x = pseudo(&[3, 1, 16, 16], 2);
        let a = packed.forward(&x);
        let b = packed.forward(&x);
        assert_eq!(a, b);
        assert_eq!(a.shape(), &[3, 2]);
    }

    #[test]
    fn arch_fingerprint_tracks_topology_not_weights() {
        let compile = |seed: u64, cfg: &crate::NetConfig| {
            let mut rng = StdRng::seed_from_u64(seed);
            PackedBnn::compile(&crate::BnnResNet::new(cfg, &mut rng))
        };
        let cfg = crate::NetConfig::tiny(16);
        let a = compile(1, &cfg);
        let b = compile(2, &cfg);
        assert_eq!(
            a.arch_fingerprint(),
            b.arch_fingerprint(),
            "same topology, different weights → same fingerprint"
        );
        // Any topology change breaks the fingerprint.
        let mut wider = cfg.clone();
        wider.stem_filters = 8;
        assert_ne!(
            a.arch_fingerprint(),
            compile(1, &wider).arch_fingerprint(),
            "stem width is part of the fingerprint"
        );
        let leveled = cfg.clone().with_levels(2);
        assert_ne!(
            a.arch_fingerprint(),
            compile(1, &leveled).arch_fingerprint(),
            "residual level count is part of the fingerprint"
        );
    }

    #[test]
    fn bitpacking_shrinks_weight_storage() {
        // 64 channels of 3x3 weights: 64*9 floats = 2304 bytes vs 9 u64
        // words = 72 bytes per filter.
        let w = pseudo(&[1, 64, 3, 3], 5);
        let f = BitFilter::from_tensor(&w);
        let packed_words: usize = 9; // one word per tap
        assert_eq!(f.dims(), (1, 64, 3, 3));
        assert_eq!(f.tap_words(0, 0, 0).len(), 1);
        let float_bytes = w.numel() * 4;
        let packed_bytes = packed_words * 8;
        assert!(float_bytes >= 32 * packed_bytes);
    }
}
