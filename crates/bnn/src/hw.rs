//! First-order hardware cost model for the packed BNN.
//!
//! The paper closes by noting that BNNs are "more compatible with
//! digital circuits" and anticipating hardware-accelerated detectors
//! (its refs \[30\]–\[32\] are FPGA BNN accelerators).  This module
//! provides the planning-level estimate such a port starts from: given
//! the architecture summary of a [`BnnResNet`](crate::BnnResNet), it
//! derives weight-memory, logic and cycle-count figures for a simple
//! fully-pipelined XNOR-popcount datapath.
//!
//! The model is deliberately first-order — the kind of estimate used to
//! size a part, not to sign off timing:
//!
//! * every binary MAC is one XNOR plus its share of a popcount tree;
//! * a `lanes`-wide datapath retires `64 × lanes` binary MACs per cycle;
//! * binary weights live in on-chip RAM (1 bit each), batch-norm
//!   affines and scale factors in 32-bit words;
//! * float ops (GAP, dense head, scale multiplies) run on a scalar
//!   multiply–accumulate unit, one op per cycle.

use crate::kernels::{active_backend, KernelBackend};
use crate::model::LayerSummary;
use serde::{Deserialize, Serialize};

/// What the software XNOR kernel dispatcher resolved to on this CPU —
/// the software analogue of the [`HwConfig`] datapath description.
/// Benchmarks embed this next to their timings so a recorded number can
/// be traced to the inner loop that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchReport {
    /// Backend every [`ExecPlan`](crate::ExecPlan) compiled via
    /// [`PackedBnn::plan`](crate::PackedBnn::plan) dispatches to.
    pub active: KernelBackend,
    /// All backends this CPU supports (scalar and SWAR are always
    /// present; SIMD entries appear per `is_x86_feature_detected!`).
    pub available: Vec<KernelBackend>,
    /// 64-bit words the active backend's inner loop consumes per
    /// iteration.
    pub u64_lanes: usize,
}

impl DispatchReport {
    /// One-line human-readable form, e.g.
    /// `kernel backend: avx2 (4x u64/iter; available: scalar, swar, ssse3, avx2)`.
    pub fn summary(&self) -> String {
        let avail: Vec<&str> = self.available.iter().map(|b| b.name()).collect();
        format!(
            "kernel backend: {} ({}x u64/iter; available: {})",
            self.active.name(),
            self.u64_lanes,
            avail.join(", ")
        )
    }
}

/// Snapshot of the process-wide kernel dispatch decision (see
/// [`active_backend`]).
pub fn dispatch_report() -> DispatchReport {
    let active = active_backend();
    DispatchReport {
        active,
        available: KernelBackend::available(),
        u64_lanes: active.u64_lanes(),
    }
}

/// Datapath parameters of the modelled accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwConfig {
    /// 64-bit XNOR/popcount lanes operating in parallel.
    pub lanes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// LUTs charged per 64-bit XNOR + popcount lane (popcount tree of
    /// 64 inputs ≈ 70 6-LUTs plus control).
    pub luts_per_lane: usize,
}

impl Default for HwConfig {
    /// A small-FPGA operating point: 8 lanes at 200 MHz.
    fn default() -> Self {
        HwConfig {
            lanes: 8,
            clock_mhz: 200.0,
            luts_per_lane: 96,
        }
    }
}

/// Resource and latency estimate for one network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwEstimate {
    /// Bits of on-chip weight memory (1 bit per binary weight,
    /// 32 per float parameter).
    pub weight_bits: u64,
    /// LUT count for the XNOR/popcount datapath.
    pub datapath_luts: u64,
    /// Cycles to classify one clip.
    pub cycles_per_clip: u64,
    /// Clips classified per second at the configured clock.
    pub clips_per_second: f64,
}

/// Estimates hardware cost from a network's layer summary
/// (see [`BnnResNet::summary`](crate::BnnResNet::summary)).
///
/// # Panics
///
/// Panics when `config.lanes` is zero or the clock is not positive.
///
/// # Example
///
/// ```
/// use hotspot_bnn::{estimate_hardware, BnnResNet, HwConfig, NetConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = BnnResNet::new(&NetConfig::paper_12layer(), &mut rng);
/// let est = estimate_hardware(&net.summary(), &HwConfig::default());
/// assert!(est.clips_per_second > 100.0);
/// ```
pub fn estimate_hardware(summary: &[LayerSummary], config: &HwConfig) -> HwEstimate {
    assert!(config.lanes > 0, "need at least one lane");
    assert!(config.clock_mhz > 0.0, "clock must be positive");

    let mut weight_bits = 0u64;
    let mut binary_macs = 0u64;
    let mut float_ops = 0u64;
    for layer in summary {
        if layer.binary_ops > 0 {
            // Binary layer: 1 bit per weight; BN affine parameters are
            // the `2 * c_in` leading params, stored at 32 bits.
            // The summary folds them together, so approximate: weights
            // dominate; charge everything 1 bit plus a 32-bit affine
            // pair per output channel.
            weight_bits +=
                layer.params as u64 + 64 * layer.output_shape.first().copied().unwrap_or(0) as u64;
            binary_macs += layer.binary_ops;
        } else {
            weight_bits += 32 * layer.params as u64;
            float_ops += layer.float_ops;
        }
    }
    // Per-pixel scale multiplies for the factored activation scaling:
    // one float multiply per binary-layer output element ≈ already
    // inside float_ops? They are not; charge one per 64 binary MACs as
    // a coarse stand-in.
    let scale_ops = binary_macs / 64;

    let macs_per_cycle = (64 * config.lanes) as u64;
    let cycles_binary = binary_macs.div_ceil(macs_per_cycle);
    let cycles_float = float_ops + scale_ops;
    let cycles = cycles_binary + cycles_float;
    let clips_per_second = config.clock_mhz * 1e6 / cycles as f64;

    HwEstimate {
        weight_bits,
        datapath_luts: (config.lanes * config.luts_per_lane) as u64,
        cycles_per_clip: cycles,
        clips_per_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BnnResNet, NetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_summary() -> Vec<LayerSummary> {
        let mut rng = StdRng::seed_from_u64(0);
        BnnResNet::new(&NetConfig::paper_12layer(), &mut rng).summary()
    }

    #[test]
    fn weight_memory_fits_small_fpga() {
        let est = estimate_hardware(&paper_summary(), &HwConfig::default());
        // ~155k binary weights → well under 1 Mbit of weight storage.
        assert!(
            est.weight_bits < 1_000_000,
            "weight bits {}",
            est.weight_bits
        );
        assert!(est.weight_bits > 100_000);
    }

    #[test]
    fn more_lanes_means_fewer_cycles() {
        let summary = paper_summary();
        let slow = estimate_hardware(
            &summary,
            &HwConfig {
                lanes: 1,
                ..HwConfig::default()
            },
        );
        let fast = estimate_hardware(
            &summary,
            &HwConfig {
                lanes: 16,
                ..HwConfig::default()
            },
        );
        assert!(fast.cycles_per_clip < slow.cycles_per_clip);
        assert!(fast.datapath_luts > slow.datapath_luts);
        // Throughput improves, Amdahl-limited by the scalar float
        // stage that lanes do not parallelize.
        assert!(fast.clips_per_second > 1.5 * slow.clips_per_second);
    }

    #[test]
    fn clock_scales_throughput_linearly() {
        let summary = paper_summary();
        let base = estimate_hardware(
            &summary,
            &HwConfig {
                clock_mhz: 100.0,
                ..HwConfig::default()
            },
        );
        let double = estimate_hardware(
            &summary,
            &HwConfig {
                clock_mhz: 200.0,
                ..HwConfig::default()
            },
        );
        assert_eq!(base.cycles_per_clip, double.cycles_per_clip);
        assert!((double.clips_per_second / base.clips_per_second - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        estimate_hardware(
            &paper_summary(),
            &HwConfig {
                lanes: 0,
                ..HwConfig::default()
            },
        );
    }
}
