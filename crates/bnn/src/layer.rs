//! The binary convolution layer (training path).

use crate::scaling::{
    input_scale_per_channel, output_scale_shared, residual_weight_levels, ScalingMode,
};
use crate::ste::sign_tensor;
use hotspot_nn::{Layer, Param};
use hotspot_tensor::{conv2d, conv2d_backward, xavier_uniform, Tensor};
use rand::Rng;

/// A binarized 2-D convolution trained with the straight-through
/// estimator — the paper's Algorithm 1 in layer form.
///
/// Forward (Eq. 9, 12, 14, 15):
/// `out = conv( sign(X) ⊙ α_X , α_W ⊙ sign(W) )`, where `α_W` is the
/// per-filter `‖W‖₁/n` and `α_X` depends on the [`ScalingMode`].
///
/// Backward (Eq. 10–13): gradients flow through both `sign`s with the
/// STE mask `1_{|·| < 1}`; the real-valued master weights receive
/// `∂l/∂W = ∂l/∂W̃ · (1/n + α_W · 1_{|W| < 1})`.  The activation
/// scale `α_X` is treated as a constant in the backward pass, standard
/// practice in XNOR-Net-style training.
pub struct BinConv2d {
    weight: Param,
    stride: usize,
    pad: usize,
    mode: ScalingMode,
    /// Residual binarization levels `M` (1 = classic single-bit).
    levels: usize,
    cache: Option<Cache>,
}

struct Cache {
    input: Tensor,
    binarized_input: Tensor,
    binarized_weight: Tensor,
    /// Input-resolution per-channel scale (PerChannel mode).
    input_scale: Option<Tensor>,
    /// Output-resolution shared scale map `[n, oh, ow]` (Shared mode).
    output_scale: Option<Tensor>,
    alpha_w: Vec<f32>,
}

/// Broadcast-multiplies a `[n, k, oh, ow]` tensor by a `[n, oh, ow]`
/// map.
fn mul_broadcast_map(t: &Tensor, map: &Tensor) -> Tensor {
    let (n, k, oh, ow) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    debug_assert_eq!(map.shape(), &[n, oh, ow]);
    let mut out = t.clone();
    let m = map.as_slice();
    for ni in 0..n {
        let plane = &m[ni * oh * ow..(ni + 1) * oh * ow];
        for ki in 0..k {
            let base = (ni * k + ki) * oh * ow;
            for (v, &s) in out.as_mut_slice()[base..base + oh * ow]
                .iter_mut()
                .zip(plane)
            {
                *v *= s;
            }
        }
    }
    out
}

impl BinConv2d {
    /// Creates a binary convolution with a square `k × k` kernel and
    /// Xavier-initialised real-valued master weights.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        mode: ScalingMode,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && k > 0 && stride > 0);
        let mut w = Tensor::zeros(&[out_channels, in_channels, k, k]);
        xavier_uniform(&mut w, rng);
        BinConv2d {
            weight: Param::new(w),
            stride,
            pad,
            mode,
            levels: 1,
            cache: None,
        }
    }

    /// Sets the number of residual binarization levels `M ≥ 1` used by
    /// the weight approximation `W ≈ Σ_ℓ α_ℓ ⊙ sign(r_ℓ)`
    /// (see [`residual_weight_levels`]).  `M = 1` is the classic
    /// single-bit forward, bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics when `levels == 0`.
    pub fn set_levels(&mut self, levels: usize) {
        assert!(levels >= 1, "at least one binarization level");
        self.levels = levels;
    }

    /// The number of residual binarization levels `M`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The real-valued master weights.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The scaling mode in use.
    pub fn scaling_mode(&self) -> ScalingMode {
        self.mode
    }

    /// Stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding of the convolution.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// The binarized weights as used in the forward pass (exposed for
    /// compilation to the packed inference engine): `α_W ⊙ sign(W)`
    /// for a single level, `Σ_ℓ α_ℓ ⊙ sign(r_ℓ)` for `M` residual
    /// levels.
    pub fn binarized_weight(&self) -> Tensor {
        self.effective_weight().0
    }

    /// The M-level weight reconstruction `Σ_ℓ α_ℓ ⊙ sign(r_ℓ)` plus
    /// the summed per-filter scales `Σ_ℓ α_ℓ` the Eq. 13 backward
    /// uses as its effective `α_W`.
    fn effective_weight(&self) -> (Tensor, Vec<f32>) {
        let plain = self.mode == ScalingMode::PlainSign;
        let lv = residual_weight_levels(&self.weight.value, self.levels, plain);
        let mut alpha_eff = lv[0].1.clone();
        let mut w = scale_filters(&sign_tensor(&lv[0].0), &lv[0].1);
        for (residual, alpha) in &lv[1..] {
            let term = scale_filters(&sign_tensor(residual), alpha);
            w = w.zip(&term, |a, b| a + b);
            for (e, a) in alpha_eff.iter_mut().zip(alpha) {
                *e += a;
            }
        }
        (w, alpha_eff)
    }
}

/// Multiplies filter `k` of a `[k, c, kh, kw]` tensor by `alpha[k]`.
fn scale_filters(w: &Tensor, alpha: &[f32]) -> Tensor {
    let k = w.shape()[0];
    let per: usize = w.shape()[1..].iter().product();
    let mut out = w.clone();
    #[allow(clippy::needless_range_loop)] // ki addresses strided filter slabs
    for ki in 0..k {
        for v in &mut out.as_mut_slice()[ki * per..(ki + 1) * per] {
            *v *= alpha[ki];
        }
    }
    out
}

impl Layer for BinConv2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Tensor {
        let kh = self.weight.value.shape()[2];
        let kw = self.weight.value.shape()[3];
        let signs = sign_tensor(input);
        // PerChannel (the paper's Eq. 14) scales the sign tensor on the
        // input side; Shared uses the XNOR-Net factored form — the
        // scale map multiplies the convolution *output*, which makes
        // the float path bit-identical to the packed XNOR engine.
        let (binarized_input, input_scale, output_scale) = match self.mode {
            ScalingMode::PlainSign => (signs, None, None),
            ScalingMode::Shared => {
                let s = output_scale_shared(input, kh.max(kw), self.stride, self.pad);
                (signs, None, Some(s))
            }
            ScalingMode::PerChannel => {
                let s = input_scale_per_channel(input, kh, kw);
                (signs.zip(&s, |a, b| a * b), Some(s), None)
            }
        };
        // Residual-of-residual weight binarization: M = 1 yields
        // exactly the old `α_W ⊙ sign(W)`; deeper levels add
        // `α_ℓ ⊙ sign(r_ℓ)` correction planes (the packed engine runs
        // one XNOR pass per plane).
        let (binarized_weight, alpha_w) = self.effective_weight();
        let mut out = conv2d(
            &binarized_input,
            &binarized_weight,
            None,
            self.stride,
            self.pad,
        );
        if let Some(s) = &output_scale {
            out = mul_broadcast_map(&out, s);
        }
        self.cache = Some(Cache {
            input: input.clone(),
            binarized_input,
            binarized_weight,
            input_scale,
            output_scale,
            alpha_w,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BinConv2d::backward called before forward");
        // Shared mode: route the gradient through the output-side
        // scale map first (the map itself is treated as constant).
        let grad_conv = match &cache.output_scale {
            Some(s) => mul_broadcast_map(grad_out, s),
            None => grad_out.clone(),
        };
        let grads = conv2d_backward(
            &cache.binarized_input,
            &cache.binarized_weight,
            &grad_conv,
            self.stride,
            self.pad,
            false,
        );

        // Eq. 13: dl/dW = dl/dW̃ · (1/n + α_W · 1_{|W| < 1}).
        let k = self.weight.value.shape()[0];
        let per: usize = self.weight.value.shape()[1..].iter().product();
        let inv_n = 1.0 / per as f32;
        {
            let w = self.weight.value.as_slice();
            let gw = self.weight.grad.as_mut_slice();
            let gwt = grads.weight.as_slice();
            for ki in 0..k {
                let alpha = cache.alpha_w[ki];
                for i in ki * per..(ki + 1) * per {
                    let ste = if w[i].abs() < 1.0 { alpha } else { 0.0 };
                    let factor = match self.mode {
                        ScalingMode::PlainSign => {
                            if w[i].abs() < 1.0 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        _ => inv_n + ste,
                    };
                    gw[i] += gwt[i] * factor;
                }
            }
        }

        // STE through the input binarization, with α_X held constant.
        let mut grad_in = grads.input;
        if let Some(scale) = &cache.input_scale {
            grad_in = grad_in.zip(scale, |g, s| g * s);
        }
        cache
            .input
            .zip(&grad_in, |x, g| if x.abs() < 1.0 { g } else { 0.0 })
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn describe(&self) -> String {
        let s = self.weight.value.shape();
        format!(
            "binconv{}x{}({}→{})/s{}",
            s[2], s[3], s[1], s[0], self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::weight_scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pseudo(shape: &[usize], seed: u32) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut state = seed;
        Tensor::from_vec(
            shape,
            (0..numel)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        )
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = BinConv2d::new(2, 4, 3, 1, 1, ScalingMode::PerChannel, &mut rng);
        let x = pseudo(&[2, 2, 8, 8], 3);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
        let gx = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
        assert!(conv.weight().grad.l1_norm() > 0.0);
    }

    #[test]
    fn strided_downsamples() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = BinConv2d::new(1, 2, 3, 2, 1, ScalingMode::Shared, &mut rng);
        let x = pseudo(&[1, 1, 8, 8], 5);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn plain_sign_output_is_integerish() {
        // With PlainSign, the conv of ±1 inputs and ±1 weights (interior
        // pixels, full receptive field) is an integer.
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = BinConv2d::new(1, 1, 3, 1, 0, ScalingMode::PlainSign, &mut rng);
        let x = pseudo(&[1, 1, 5, 5], 7);
        let y = conv.forward(&x, true);
        for &v in y.as_slice() {
            assert!((v - v.round()).abs() < 1e-5, "non-integer {v}");
            assert!(v.abs() <= 9.0);
        }
    }

    #[test]
    fn weight_binarization_uses_alpha() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = BinConv2d::new(1, 1, 2, 1, 0, ScalingMode::PerChannel, &mut rng);
        let bw = conv.binarized_weight();
        let alpha = weight_scale(&conv.weight().value);
        for (&b, &w) in bw.as_slice().iter().zip(conv.weight().value.as_slice()) {
            let expect = alpha[0] * if w >= 0.0 { 1.0 } else { -1.0 };
            assert!((b - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn two_level_weights_approximate_better() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = BinConv2d::new(2, 3, 3, 1, 1, ScalingMode::Shared, &mut rng);
        let err = |c: &BinConv2d| -> f32 {
            c.binarized_weight()
                .as_slice()
                .iter()
                .zip(c.weight().value.as_slice())
                .map(|(b, w)| (b - w) * (b - w))
                .sum()
        };
        let e1 = err(&conv);
        conv.set_levels(2);
        assert_eq!(conv.levels(), 2);
        let e2 = err(&conv);
        assert!(e2 < e1, "2-level error {e2} not below 1-level {e1}");
    }

    #[test]
    fn multilevel_forward_backward_finite() {
        for mode in [
            ScalingMode::PlainSign,
            ScalingMode::Shared,
            ScalingMode::PerChannel,
        ] {
            let mut rng = StdRng::seed_from_u64(9);
            let mut conv = BinConv2d::new(2, 4, 3, 1, 1, mode, &mut rng);
            conv.set_levels(3);
            let x = pseudo(&[2, 2, 6, 6], 13);
            let y = conv.forward(&x, true);
            assert_eq!(y.shape(), &[2, 4, 6, 6]);
            assert!(y.as_slice().iter().all(|v| v.is_finite()));
            let gx = conv.backward(&Tensor::ones(y.shape()));
            assert_eq!(gx.shape(), x.shape());
            assert!(gx.as_slice().iter().all(|v| v.is_finite()));
            assert!(conv.weight().grad.l1_norm() > 0.0);
        }
    }

    #[test]
    fn single_level_matches_pre_refactor_formula() {
        // levels = 1 must reproduce α_W ⊙ sign(W) exactly — the
        // invariant the packed M=1 bit-identity rests on.
        let mut rng = StdRng::seed_from_u64(10);
        let conv = BinConv2d::new(2, 3, 3, 1, 1, ScalingMode::PerChannel, &mut rng);
        let expect = scale_filters(
            &sign_tensor(&conv.weight().value),
            &weight_scale(&conv.weight().value),
        );
        assert_eq!(conv.binarized_weight().as_slice(), expect.as_slice());
    }

    #[test]
    fn saturated_weights_get_no_ste_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = BinConv2d::new(1, 1, 1, 1, 0, ScalingMode::PlainSign, &mut rng);
        // Force a saturated weight.
        conv.weight.value = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]);
        let x = pseudo(&[1, 1, 2, 2], 9);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&Tensor::ones(y.shape()));
        assert_eq!(conv.weight.grad.as_slice(), &[0.0]);
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        // A single binary conv + sum should be able to learn to
        // discriminate all-positive from all-negative inputs.
        use hotspot_nn::{NAdam, Optimizer, SoftmaxCrossEntropy};

        let mut rng = StdRng::seed_from_u64(6);
        struct Net {
            conv: BinConv2d,
            dense: hotspot_nn::Dense,
        }
        impl Layer for Net {
            fn forward(&mut self, x: &Tensor, t: bool) -> Tensor {
                let y = self.conv.forward(x, t);
                let n = y.shape()[0];
                let feat: usize = y.shape()[1..].iter().product();
                self.dense.forward(&y.reshape(&[n, feat]), t)
            }
            fn backward(&mut self, g: &Tensor) -> Tensor {
                let gd = self.dense.backward(g);
                let n = gd.shape()[0];
                self.conv.backward(&gd.reshape(&[n, 2, 4, 4]))
            }
            fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
                self.conv.for_each_param(f);
                self.dense.for_each_param(f);
            }
            fn describe(&self) -> String {
                "toy".into()
            }
        }
        let mut net = Net {
            conv: BinConv2d::new(1, 2, 3, 1, 1, ScalingMode::PerChannel, &mut rng),
            dense: hotspot_nn::Dense::new(32, 2, &mut rng),
        };
        // Class 1: left half bright; class 0: right half bright.
        let mut imgs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let mut img = Tensor::full(&[1, 1, 4, 4], -0.5);
            let class = i % 2;
            for y in 0..4 {
                for x in 0..2 {
                    let xx = if class == 1 { x } else { x + 2 };
                    *img.at_mut(&[0, 0, y, xx]) = 0.5;
                }
            }
            imgs.push(img.reshape(&[1, 4, 4]));
            labels.push(class);
        }
        let batch = Tensor::stack(&imgs);
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = NAdam::new(0.02);
        let (first, _) = loss.forward(&net.forward(&batch, true), &labels);
        let mut last = first;
        for _ in 0..60 {
            net.zero_grads();
            let logits = net.forward(&batch, true);
            let (l, g) = loss.forward(&logits, &labels);
            last = l;
            let _ = net.backward(&g);
            opt.step(&mut net);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }
}
