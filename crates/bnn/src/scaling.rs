//! Binarization scaling factors (paper §3.2 and Eq. 14).

use hotspot_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// How binary convolutions estimate the full-precision product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScalingMode {
    /// No scaling: plain `sign(X) ⊛ sign(W)` (the naive BNN).
    PlainSign,
    /// XNOR-Net: one shared spatial scale map computed from the
    /// channel-mean of `|X|`, plus the per-filter `α_W`.
    Shared,
    /// The paper's variant: an independent spatial scale map **per
    /// input channel** (Eq. 14), plus the per-filter `α_W`.  This
    /// estimates the input tensor more accurately than XNOR-Net's
    /// shared map.
    #[default]
    PerChannel,
}

/// Per-filter weight scaling factors `α_W = ‖W_k‖₁ / n` (Eq. 8), one
/// per output filter of a `[k, c, kh, kw]` weight tensor.
///
/// # Panics
///
/// Panics when `w` is not 4-D.
pub fn weight_scale(w: &Tensor) -> Vec<f32> {
    assert_eq!(w.ndim(), 4, "weights must be [k, c, kh, kw]");
    let k = w.shape()[0];
    let n: usize = w.shape()[1..].iter().product();
    let data = w.as_slice();
    (0..k)
        .map(|ki| {
            data[ki * n..(ki + 1) * n]
                .iter()
                .map(|v| v.abs())
                .sum::<f32>()
                / n as f32
        })
        .collect()
}

/// Residual-of-residual weight binarization (ReBNet-style, PAPERS.md):
/// level 0 binarizes `W` itself, and every further level binarizes the
/// residual the previous levels left unexplained,
/// `r_{ℓ+1} = r_ℓ − α_ℓ ⊙ sign(r_ℓ)`, so that
/// `W ≈ Σ_ℓ α_ℓ ⊙ sign(r_ℓ)` with per-level, per-filter scales
/// `α_ℓ = ‖r_ℓ‖₁ / n` (Eq. 8 applied level by level).
///
/// Returns one `(residual, α)` pair per level; consumers binarize each
/// residual with `sign` (the packed path packs its sign bits directly).
/// With `plain_sign` the level-0 scale is pinned to 1 — plain
/// `sign(W)` — matching [`ScalingMode::PlainSign`]'s unscaled first
/// level, while the residual levels still carry their own scales
/// (a residual without a scale cannot shrink the error).
///
/// `levels == 1` reproduces today's single-level binarization exactly:
/// the returned pair is `(W, weight_scale(W))` (or `(W, 1)` for plain
/// sign) and no residual is formed.
///
/// # Panics
///
/// Panics when `w` is not 4-D or `levels == 0`.
pub fn residual_weight_levels(
    w: &Tensor,
    levels: usize,
    plain_sign: bool,
) -> Vec<(Tensor, Vec<f32>)> {
    assert!(levels >= 1, "at least one binarization level");
    assert_eq!(w.ndim(), 4, "weights must be [k, c, kh, kw]");
    let k = w.shape()[0];
    let per: usize = w.shape()[1..].iter().product();
    let mut out = Vec::with_capacity(levels);
    let mut residual = w.clone();
    for level in 0..levels {
        let alpha = if level == 0 && plain_sign {
            vec![1.0; k]
        } else {
            weight_scale(&residual)
        };
        let next = if level + 1 < levels {
            let mut nr = residual.clone();
            let data = nr.as_mut_slice();
            #[allow(clippy::needless_range_loop)] // ki addresses strided filter slabs
            for ki in 0..k {
                let a = alpha[ki];
                for v in &mut data[ki * per..(ki + 1) * per] {
                    *v -= a * if *v >= 0.0 { 1.0 } else { -1.0 };
                }
            }
            Some(nr)
        } else {
            None
        };
        out.push((residual.clone(), alpha));
        if let Some(nr) = next {
            residual = nr;
        }
    }
    out
}

/// Box-filters a single-channel plane with the `kh × kw` averaging
/// kernel `K` of §3.4.3 (every element `1/(kh·kw)`), using the same
/// padding as the convolution it scales.
///
/// `plane` is `h × w` row-major; returns the `oh × ow` scale map for
/// the given stride/pad.  The filter targets magnitude maps (which are
/// non-negative), and its output is clamped at zero so incremental
/// summation can never produce a negative scale factor.
pub fn box_filter(
    plane: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    let mut out = vec![0.0f32; oh * ow];
    box_filter_into(plane, h, w, kh, kw, stride, pad, &mut out);
    out
}

/// [`box_filter`] into a caller-provided `oh × ow` buffer
/// (overwritten).
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn box_filter_into(
    plane: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut [f32],
) {
    let mut colsum = vec![0.0f64; w];
    box_filter_sliding_into(plane, h, w, kh, kw, stride, pad, &mut colsum, out);
}

/// Row-sliding incremental box filter: O(kw) work per output pixel
/// instead of the naive O(kh·kw).
///
/// `colsum[x]` holds the vertical window sum of column `x` for the
/// current output row; moving to the next row subtracts departing rows
/// and adds entering ones.  Each output pixel then sums its `kw` column
/// sums left-to-right — deliberately *not* a horizontal running sum, so
/// every output value is a pure function of its own column span.  This
/// makes the map translation-invariant at the bit level: filtering a
/// wide plane and filtering a cropped window of it produce identical
/// f32 values wherever their spans coincide, which the full-chip
/// scanner (`crate::scan`) relies on to reuse one band-wide scale map
/// across overlapping windows.  Sums are kept in `f64` so the
/// incremental row subtract/add introduces no drift against the
/// windowed values (and a final `max(0.0)` clamp guarantees
/// non-negative maps for non-negative input planes regardless of
/// rounding).
///
/// `colsum` is caller-provided `w`-length scratch (contents ignored) so
/// the packed inference path can run allocation-free; `out` is the
/// `oh × ow` map, overwritten.
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions or
/// `stride == 0`.
#[allow(clippy::too_many_arguments)]
pub fn box_filter_sliding_into(
    plane: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    colsum: &mut [f64],
    out: &mut [f32],
) {
    assert!(stride > 0, "stride must be positive");
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    assert_eq!(plane.len(), h * w, "plane length mismatch");
    assert_eq!(colsum.len(), w, "column scratch length mismatch");
    assert_eq!(out.len(), oh * ow, "box filter output length mismatch");
    let inv = 1.0 / (kh * kw) as f64;
    // Clamped in-bounds input range of a window starting at `o*stride - pad`.
    let span = |o: usize, k: usize, dim: usize| {
        let lo = (o * stride).saturating_sub(pad).min(dim);
        let hi = (o * stride + k).saturating_sub(pad).min(dim);
        (lo, hi)
    };
    let mut prev_rows = (0usize, 0usize);
    for oy in 0..oh {
        let (y0, y1) = span(oy, kh, h);
        if oy == 0 {
            colsum.fill(0.0);
            for y in y0..y1 {
                for (cs, &v) in colsum.iter_mut().zip(&plane[y * w..(y + 1) * w]) {
                    *cs += v as f64;
                }
            }
        } else {
            // The window moves monotonically down: drop departed rows,
            // add entered ones.  (With stride > kh the windows are
            // disjoint, so both ranges clamp to the old/new window.)
            for y in prev_rows.0..y0.min(prev_rows.1) {
                for (cs, &v) in colsum.iter_mut().zip(&plane[y * w..(y + 1) * w]) {
                    *cs -= v as f64;
                }
            }
            for y in prev_rows.1.max(y0)..y1 {
                for (cs, &v) in colsum.iter_mut().zip(&plane[y * w..(y + 1) * w]) {
                    *cs += v as f64;
                }
            }
        }
        prev_rows = (y0, y1);
        let row_out = &mut out[oy * ow..(oy + 1) * ow];
        for (ox, slot) in row_out.iter_mut().enumerate() {
            let (x0, x1) = span(ox, kw, w);
            let mut hsum = 0.0f64;
            for &cs in &colsum[x0..x1] {
                hsum += cs;
            }
            *slot = (hsum.max(0.0) * inv) as f32;
        }
    }
}

/// The paper's per-channel input scaling (Eq. 14):
/// `α_T(c) = |T_in(c, :, :)| ⊛ K`, computed for every batch item and
/// input channel.  Returns a `[n, c, h, w]` tensor of scale factors
/// positioned at the *input* resolution (stride 1, same padding), which
/// the training path multiplies into `sign(X)` before the convolution.
///
/// # Panics
///
/// Panics when `x` is not 4-D.
pub fn input_scale_per_channel(x: &Tensor, kh: usize, kw: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "activations must be NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let pad_h = (kh - 1) / 2;
    let pad_w = (kw - 1) / 2;
    // With stride 1 and symmetric same-padding the map is h × w.
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let data = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let absplane: Vec<f32> = data[base..base + h * w].iter().map(|v| v.abs()).collect();
            let filtered = box_filter(&absplane, h, w, kh, kw, 1, pad_h.max(pad_w));
            out.as_mut_slice()[base..base + h * w].copy_from_slice(&filtered);
        }
    }
    out
}

/// XNOR-Net's factored output-side scaling map: the channel-mean of
/// `|X|` box-filtered at the convolution's own stride and padding.
///
/// Returns `[n, oh, ow]` — one spatial scale map per batch item, to be
/// broadcast over output channels and multiplied into the binary
/// convolution's output.  This is exactly the map the bit-packed
/// inference engine applies, so a float-path convolution using it is
/// bit-for-bit consistent with [`xnor_conv2d`](crate::xnor_conv2d)
/// inference.
pub fn output_scale_shared(x: &Tensor, k: usize, stride: usize, pad: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "activations must be NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let mut out = Tensor::zeros(&[n, oh, ow]);
    let mut mean = vec![0.0f32; h * w];
    output_scale_shared_into(
        x.as_slice(),
        n,
        c,
        h,
        w,
        k,
        stride,
        pad,
        &mut mean,
        out.as_mut_slice(),
    );
    out
}

/// [`output_scale_shared`] on a raw NCHW slice into a caller-provided
/// `[n, oh, ow]` buffer (overwritten).  `mean_scratch` must be an
/// `h * w` buffer (contents ignored); pass one from a
/// [`hotspot_tensor::Workspace`] for allocation-free steady state.
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn output_scale_shared_into(
    data: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    mean_scratch: &mut [f32],
    out: &mut [f32],
) {
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    assert_eq!(data.len(), n * c * h * w, "activation length mismatch");
    assert_eq!(mean_scratch.len(), h * w, "mean scratch length mismatch");
    assert_eq!(out.len(), n * oh * ow, "scale map length mismatch");
    for ni in 0..n {
        let a = &mut *mean_scratch;
        a.fill(0.0);
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for (slot, &v) in a.iter_mut().zip(&data[base..base + h * w]) {
                *slot += v.abs();
            }
        }
        let inv_c = 1.0 / c as f32;
        for slot in a.iter_mut() {
            *slot *= inv_c;
        }
        box_filter_into(
            a,
            h,
            w,
            k,
            k,
            stride,
            pad,
            &mut out[ni * oh * ow..(ni + 1) * oh * ow],
        );
    }
}

/// XNOR-Net's shared input scaling: the channel-mean of `|X|` box-
/// filtered once, broadcast to every channel.  Returned as `[n, c, h,
/// w]` for interchangeability with
/// [`input_scale_per_channel`].
pub fn input_scale_shared(x: &Tensor, kh: usize, kw: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "activations must be NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let pad = (kh.max(kw) - 1) / 2;
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let data = x.as_slice();
    for ni in 0..n {
        // A = mean over channels of |X|.
        let mut a = vec![0.0f32; h * w];
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for (slot, &v) in a.iter_mut().zip(&data[base..base + h * w]) {
                *slot += v.abs();
            }
        }
        let inv_c = 1.0 / c as f32;
        for slot in &mut a {
            *slot *= inv_c;
        }
        let filtered = box_filter(&a, h, w, kh, kw, 1, pad);
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out.as_mut_slice()[base..base + h * w].copy_from_slice(&filtered);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_scale_is_mean_abs() {
        let w = Tensor::from_vec(
            &[2, 1, 2, 2],
            vec![1.0, -1.0, 2.0, -2.0, 0.5, 0.5, 0.5, 0.5],
        );
        let a = weight_scale(&w);
        assert_eq!(a, vec![1.5, 0.5]);
    }

    #[test]
    fn box_filter_constant_plane() {
        // Away from borders a constant plane filters to itself.
        let plane = vec![3.0f32; 25];
        let f = box_filter(&plane, 5, 5, 3, 3, 1, 1);
        assert_eq!(f.len(), 25);
        assert!((f[12] - 3.0).abs() < 1e-6); // centre
                                             // Corner sees only 4 of 9 taps.
        assert!((f[0] - 3.0 * 4.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn box_filter_strided() {
        let plane: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let f = box_filter(&plane, 4, 4, 2, 2, 2, 0);
        assert_eq!(f.len(), 4);
        // First window: (0+1+4+5)/4.
        assert!((f[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn per_channel_scale_distinguishes_channels() {
        // Channel 0 has magnitude 1, channel 1 magnitude 3.
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        for i in 0..16 {
            x.as_mut_slice()[i] = 1.0;
            x.as_mut_slice()[16 + i] = -3.0;
        }
        let s = input_scale_per_channel(&x, 3, 3);
        // Centre pixels: full window of constant magnitude.
        assert!((s.at(&[0, 0, 2, 2]) - 1.0).abs() < 1e-6);
        assert!((s.at(&[0, 1, 2, 2]) - 3.0).abs() < 1e-6);
        // The shared variant averages the two.
        let sh = input_scale_shared(&x, 3, 3);
        assert!((sh.at(&[0, 0, 2, 2]) - 2.0).abs() < 1e-6);
        assert!((sh.at(&[0, 1, 2, 2]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn shared_equals_per_channel_for_single_channel() {
        let x = Tensor::from_vec(&[1, 1, 3, 3], vec![1., -2., 3., -4., 5., -6., 7., -8., 9.]);
        let a = input_scale_per_channel(&x, 3, 3);
        let b = input_scale_shared(&x, 3, 3);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn sliding_filter_matches_naive_reference() {
        // The pre-sliding O(k²)-per-pixel loop, kept as the oracle.
        let naive = |plane: &[f32], h: usize, w: usize, k: usize, stride: usize, pad: usize| {
            let oh = (h + 2 * pad - k) / stride + 1;
            let ow = (w + 2 * pad - k) / stride + 1;
            let mut out = vec![0.0f32; oh * ow];
            let inv = 1.0 / (k * k) as f64;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f64;
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                acc += plane[iy as usize * w + ix as usize] as f64;
                            }
                        }
                    }
                    out[oy * ow + ox] = (acc * inv) as f32;
                }
            }
            out
        };
        let mut state = 7u32;
        for (h, w) in [(1usize, 1usize), (3, 5), (5, 5), (8, 4), (9, 9), (2, 7)] {
            let plane: Vec<f32> = (0..h * w)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 65536.0 * 3.0
                })
                .collect();
            for k in 1..=3usize {
                for stride in 1..=3usize {
                    for pad in 0..=2usize {
                        if h + 2 * pad < k || w + 2 * pad < k {
                            continue;
                        }
                        let expect = naive(&plane, h, w, k, stride, pad);
                        let mut got = vec![-1.0f32; expect.len()];
                        let mut colsum = vec![0.0f64; w];
                        box_filter_sliding_into(
                            &plane,
                            h,
                            w,
                            k,
                            k,
                            stride,
                            pad,
                            &mut colsum,
                            &mut got,
                        );
                        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                            assert!(
                                (g - e).abs() <= 1e-5 * e.abs().max(1.0),
                                "h={h} w={w} k={k} s={stride} p={pad} i={i}: {g} vs {e}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn residual_levels_shrink_reconstruction_error() {
        let mut state = 11u32;
        let w = Tensor::from_vec(
            &[3, 2, 3, 3],
            (0..3 * 2 * 3 * 3)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    (state >> 16) as f32 / 32768.0 - 1.0
                })
                .collect(),
        );
        let per = 2 * 3 * 3;
        for plain_sign in [false, true] {
            let mut prev_err = f32::INFINITY;
            for m in 1..=3usize {
                let lv = residual_weight_levels(&w, m, plain_sign);
                assert_eq!(lv.len(), m);
                // Reconstruct Σ α_ℓ ⊙ sign(r_ℓ) and measure the error.
                let mut recon = vec![0.0f32; w.numel()];
                for (r, alpha) in &lv {
                    for (i, &v) in r.as_slice().iter().enumerate() {
                        recon[i] += alpha[i / per] * if v >= 0.0 { 1.0 } else { -1.0 };
                    }
                }
                let err: f32 = w
                    .as_slice()
                    .iter()
                    .zip(&recon)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                assert!(
                    err < prev_err,
                    "level {m} error {err} did not shrink from {prev_err} (plain={plain_sign})"
                );
                prev_err = err;
            }
        }
    }

    #[test]
    fn residual_level_one_is_todays_binarization() {
        let w = Tensor::from_vec(
            &[2, 1, 2, 2],
            vec![1.0, -1.0, 2.0, -2.0, 0.5, 0.5, 0.5, 0.5],
        );
        let lv = residual_weight_levels(&w, 1, false);
        assert_eq!(lv.len(), 1);
        assert_eq!(lv[0].0.as_slice(), w.as_slice());
        assert_eq!(lv[0].1, weight_scale(&w));
        let plain = residual_weight_levels(&w, 1, true);
        assert_eq!(plain[0].1, vec![1.0, 1.0]);
    }

    #[test]
    fn scales_are_nonnegative() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![-5.0, -1.0, -0.5, -2.0]);
        let s = input_scale_per_channel(&x, 3, 3);
        assert!(s.as_slice().iter().all(|&v| v >= 0.0));
        assert!(s.max() > 0.0);
    }
}
