//! Full-chip streaming scanner: sliding-window hotspot detection over
//! arbitrarily large layouts with cross-window activation reuse
//! (DESIGN.md §5j).
//!
//! The per-clip path answers "is this 128×128 clip a hotspot?".  This
//! module answers "where are the hotspots on this chip?" by sliding a
//! window over a large [`BitImage`] at a configurable stride, scoring
//! every position through the M=1 triage → M-level confirm cascade, and
//! coalescing hotspot windows into defect [`Region`]s.
//!
//! # Window reuse
//!
//! Overlapping windows recompute almost identical early-layer
//! activations: at stride 64 with a 128-window, horizontal neighbours
//! share half their pixels.  The scanner therefore splits the net into
//! a *prefix* (the stem and leading residual blocks while the
//! cumulative stride stays ≤ 2) and a *suffix* (the rest), and runs the
//! prefix **once per band** — a full-width horizontal slab spanning
//! exactly the window rows of one grid row.  Each window then assembles
//! its prefix feature map from three sources and only runs the suffix:
//!
//! * **interior columns** come straight from the band slab.  Because
//!   the band has exactly the window's height, vertical border effects
//!   (zero padding, box-filter spans, partial conv taps) are identical
//!   to a cropped window everywhere — only *horizontal* window borders
//!   differ;
//! * **left/right ring columns** — the `R` outermost feature columns
//!   whose receptive field crosses a vertical window edge (where the
//!   cropped window zero-pads but the slab sees real neighbours) —
//!   come from narrow per-window *border strips*: the prefix re-run on
//!   just the outermost `S` input columns of the window, batched across
//!   the band.
//!
//! `R` and `S` fall out of two per-layer recurrences (see
//! [`Scanner::reuse_info`]): a cut edge contaminates
//! `g' = ⌈(g+p)/s⌉` output columns per conv, and an `S`-column strip
//! keeps `v' = ⌊(v+p−k)/s⌋+1` valid columns.  For the paper's 12-layer
//! net the prefix is stem+res1+res2 (cumulative stride 2), `R = 3`
//! feature columns and `S = 12` input columns.
//!
//! Everything downstream of the prefix — suffix, pooling, classifier,
//! and the confirm stage (which re-runs the *full* net at max M on the
//! cropped window, exactly like the per-clip cascade) — is unchanged,
//! and because the box filter, popcount convs, and adds are all
//! translation-exact (see [`crate::scaling::box_filter_sliding_into`]),
//! scanner verdicts are **bit-identical** to naive crop-and-classify.
//! The `scan_equivalence` proptest enforces this across strides,
//! backends, and M-levels.
//!
//! Windows the reuse path cannot serve (misaligned flush columns,
//! chips smaller than the window) fall back to the naive per-window
//! path — same math, same verdicts.
//!
//! # Region merging
//!
//! Hotspot windows are merged with a union-find over the closed
//! neighbourhood relation "windows overlap or abut (edge *or* corner)
//! in both axes"; each connected component becomes one [`Region`] with
//! a union bounding box, the max window margin as its score, and the
//! best-scoring window origin as its peak.  See [`merge_hits`].

use crate::kernels::{active_backend, KernelBackend};
use crate::packed::{PackedBnn, PackedConv};
use crate::plan::ExecPlan;
use hotspot_geometry::BitImage;
use hotspot_tensor::workspace::Workspace;
use std::collections::HashMap;

/// Windows scored per plan invocation on the batched paths.
const BATCH: usize = 32;

/// Scanner knobs; `stride` is the only mandatory choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanConfig {
    /// Window grid pitch in pixels (both axes).  A flush window is
    /// added at the far edge when the chip size is not a multiple.
    pub stride: usize,
    /// Cascade escalation band: triage verdicts with `|margin| <
    /// cascade_threshold` are re-scored by the full M-level model
    /// (same contract as the serving cascade).
    pub cascade_threshold: f32,
    /// Skip the confirm stage entirely (the degraded serving mode).
    pub triage_only: bool,
    /// Cache verdicts by exact window content, so duplicated windows
    /// (blank regions, repeated cells) are scored once.  Sound because
    /// inference is deterministic in the window bits.
    pub dedup: bool,
}

impl ScanConfig {
    /// Defaults: cascade threshold 1.0 (the serving default), confirm
    /// enabled, dedup on.
    pub fn new(stride: usize) -> Self {
        ScanConfig {
            stride,
            cascade_threshold: 1.0,
            triage_only: false,
            dedup: true,
        }
    }
}

/// The cascade's verdict for one window position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowVerdict {
    /// Window origin (left edge), chip pixels.
    pub x: usize,
    /// Window origin (top edge), chip pixels.
    pub y: usize,
    /// `margin >= 0` — the positive class.
    pub hotspot: bool,
    /// Hotspot logit minus non-hotspot logit, from whichever cascade
    /// stage decided.
    pub margin: f32,
    /// Whether the full-M confirm stage re-scored this window.
    pub escalated: bool,
}

/// A merged defect region: one connected component of hotspot windows.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Union bounding box, chip pixels, `x1`/`y1` exclusive and
    /// clamped to the chip.
    pub x0: usize,
    /// Top edge.
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
    /// Best (maximum) member-window margin.
    pub score: f32,
    /// Origin of the best-scoring member window (ties: lowest `(y,
    /// x)`).
    pub peak: (usize, usize),
    /// Member window count.
    pub windows: usize,
}

impl Region {
    /// Bounding-box centre in chip pixels.
    pub fn center(&self) -> (usize, usize) {
        ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }
}

/// Everything one scan produced.
#[derive(Debug, Clone)]
pub struct ScanReport {
    /// Chip size `(width, height)` in pixels.
    pub chip: (usize, usize),
    /// Window side the scanner ran with.
    pub window: usize,
    /// Grid stride.
    pub stride: usize,
    /// Every window verdict, row-major over the grid (x fastest).
    pub verdicts: Vec<WindowVerdict>,
    /// Merged hotspot regions, best score first.
    pub regions: Vec<Region>,
    /// Total window positions scored.
    pub windows: usize,
    /// Windows whose verdict is hotspot.
    pub hotspots: usize,
    /// Windows the confirm stage re-scored.
    pub escalated: usize,
    /// Windows served through the band-reuse path.
    pub reused: usize,
    /// Windows that ran the naive per-window path (misaligned or
    /// undersized chips — and every window of the naive modes).
    pub fallback: usize,
    /// Windows answered from the content-dedup cache.
    pub dedup_hits: usize,
}

/// How a [`Scanner`] split the model for reuse (diagnostics / docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseInfo {
    /// Residual blocks in the prefix (the stem is always included).
    pub prefix_blocks: usize,
    /// Cumulative prefix stride: slab columns are `f` input pixels
    /// apart, so only windows at `x ≡ 0 (mod f)` can reuse the slab.
    pub stride: usize,
    /// Contaminated feature columns at a left window edge.
    pub ring_left: usize,
    /// Contaminated feature columns at a right window edge.
    pub ring_right: usize,
    /// Border-strip width in input pixels.
    pub strip_cols: usize,
}

#[derive(Debug)]
struct Reuse<'m> {
    info: ReuseInfo,
    /// Prefix feature channels / per-window feature height and width.
    pc: usize,
    oh: usize,
    ow: usize,
    /// Prefix output width of a border strip.
    strip_ow: usize,
    /// Prefix on `(window, strip_cols)` input, M = 1.
    strip_plan: ExecPlan<'m>,
    /// Remaining blocks on `(oh, ow)` features, M = 1.
    suffix_plan: ExecPlan<'m>,
}

/// A compiled full-chip scanner for one model, window size, and
/// configuration (see module docs).
#[derive(Debug)]
pub struct Scanner<'m> {
    model: &'m PackedBnn,
    backend: KernelBackend,
    window: usize,
    config: ScanConfig,
    /// Whole net on a window, M = 1 (triage / fallback).
    full_triage: ExecPlan<'m>,
    /// Whole net on a window, full M (confirm / naive-full baseline).
    full_confirm: ExecPlan<'m>,
    reuse: Option<Reuse<'m>>,
}

enum Mode {
    Reuse,
    Naive,
    NaiveFull,
}

impl<'m> Scanner<'m> {
    /// Builds a scanner with the process-wide kernel backend.
    ///
    /// # Panics
    ///
    /// Panics when the model is not single-channel, `window` or
    /// `config.stride` is zero, or `config.cascade_threshold` is
    /// negative/NaN.
    pub fn new(model: &'m PackedBnn, window: usize, config: ScanConfig) -> Self {
        Scanner::with_backend(model, window, config, active_backend())
    }

    /// [`Scanner::new`] pinned to an explicit kernel backend (all
    /// backends are bit-identical; used by the equivalence tests).
    pub fn with_backend(
        model: &'m PackedBnn,
        window: usize,
        config: ScanConfig,
        backend: KernelBackend,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(config.stride > 0, "stride must be positive");
        assert!(
            config.cascade_threshold >= 0.0,
            "cascade threshold must be non-negative"
        );
        assert_eq!(
            model.stem().in_channels(),
            1,
            "the scanner feeds single-channel layout windows"
        );
        let full_triage = ExecPlan::compile_capped(model, (window, window), backend, 1);
        let full_confirm = ExecPlan::compile_capped(model, (window, window), backend, usize::MAX);
        let reuse = derive_reuse(model, window, backend);
        Scanner {
            model,
            backend,
            window,
            config,
            full_triage,
            full_confirm,
            reuse,
        }
    }

    /// The window side this scanner slides.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configuration the scanner was built with.
    pub fn config(&self) -> ScanConfig {
        self.config
    }

    /// The kernel backend every plan dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// How the model was split for activation reuse, or `None` when
    /// this model/window combination scans fully naively.
    pub fn reuse_info(&self) -> Option<ReuseInfo> {
        self.reuse.as_ref().map(|r| r.info)
    }

    /// Scans a chip with cross-window activation reuse (see module
    /// docs).  Verdicts and regions are bit-identical to
    /// [`scan_naive`](Scanner::scan_naive).
    pub fn scan(&self, image: &BitImage, ws: &mut Workspace) -> ScanReport {
        self.scan_impl(image, ws, Mode::Reuse)
    }

    /// Reference scanner: crops every window and runs the per-clip
    /// cascade, no reuse, no dedup.  The equivalence oracle.
    pub fn scan_naive(&self, image: &BitImage, ws: &mut Workspace) -> ScanReport {
        self.scan_impl(image, ws, Mode::Naive)
    }

    /// Baseline scanner for benchmarks: crops every window and runs
    /// the *full M-level* model on each — per-clip inference without
    /// even the cascade's triage shortcut.
    pub fn scan_naive_full(&self, image: &BitImage, ws: &mut Workspace) -> ScanReport {
        self.scan_impl(image, ws, Mode::NaiveFull)
    }

    fn scan_impl(&self, image: &BitImage, ws: &mut Workspace, mode: Mode) -> ScanReport {
        let side = self.window;
        let stride = self.config.stride;
        let (cw, chh) = (image.width(), image.height());
        let xs = scan_grid(cw, side, stride);
        let ys = scan_grid(chh, side, stride);
        let nwin = xs.len() * ys.len();
        let mut verdicts: Vec<Option<WindowVerdict>> = vec![None; nwin];
        let use_dedup = self.config.dedup && matches!(mode, Mode::Reuse);
        let mut cache: HashMap<Vec<u64>, (f32, bool, bool)> = HashMap::new();
        let (mut reused, mut fallback, mut dedup_hits, mut escalated_n) = (0usize, 0, 0, 0);

        // The band prefix plan depends on the chip width; compile it
        // once per scan when any band can use it.
        let band_plan = match (&self.reuse, &mode) {
            (Some(_), Mode::Reuse) if cw >= side && chh >= side => Some(ExecPlan::compile_segment(
                self.model,
                (side, cw),
                self.backend,
                1,
                0..self.reuse.as_ref().map_or(0, |r| r.info.prefix_blocks),
            )),
            _ => None,
        };

        for (yi, &y) in ys.iter().enumerate() {
            // Collect the windows of this band that still need work.
            let mut slots: Vec<usize> = Vec::with_capacity(xs.len());
            let mut wxs: Vec<usize> = Vec::with_capacity(xs.len());
            let mut crops: Vec<BitImage> = Vec::with_capacity(xs.len());
            for (xi, &x) in xs.iter().enumerate() {
                let slot = yi * xs.len() + xi;
                let crop = crop_window(image, x, y, side);
                if use_dedup {
                    if let Some(&(margin, hotspot, esc)) = cache.get(crop.as_words()) {
                        verdicts[slot] = Some(WindowVerdict {
                            x,
                            y,
                            hotspot,
                            margin,
                            escalated: esc,
                        });
                        dedup_hits += 1;
                        if esc {
                            escalated_n += 1;
                        }
                        continue;
                    }
                }
                slots.push(slot);
                wxs.push(x);
                crops.push(crop);
            }
            if slots.is_empty() {
                continue;
            }

            // Triage margins for every pending window of the band.
            let mut margins = vec![0.0f32; slots.len()];
            match mode {
                Mode::NaiveFull => {
                    self.margins_for_crops(&self.full_confirm, &crops, ws, &mut margins);
                    fallback += slots.len();
                }
                Mode::Naive => {
                    self.margins_for_crops(&self.full_triage, &crops, ws, &mut margins);
                    fallback += slots.len();
                }
                Mode::Reuse => {
                    let (mut r_idx, mut n_idx): (Vec<usize>, Vec<usize>) = (vec![], vec![]);
                    if let (Some(reuse), Some(band_plan)) = (&self.reuse, &band_plan) {
                        let f = reuse.info.stride;
                        for (i, &x) in wxs.iter().enumerate() {
                            if x % f == 0 && x + side <= cw && y + side <= chh {
                                r_idx.push(i);
                            } else {
                                n_idx.push(i);
                            }
                        }
                        if !r_idx.is_empty() {
                            self.band_margins(
                                reuse,
                                band_plan,
                                image,
                                y,
                                &wxs,
                                &crops,
                                &r_idx,
                                ws,
                                &mut margins,
                            );
                            reused += r_idx.len();
                        }
                    } else {
                        n_idx.extend(0..wxs.len());
                    }
                    if !n_idx.is_empty() {
                        let sub: Vec<BitImage> = n_idx.iter().map(|&i| crops[i].clone()).collect();
                        let mut sub_m = vec![0.0f32; sub.len()];
                        self.margins_for_crops(&self.full_triage, &sub, ws, &mut sub_m);
                        for (&i, m) in n_idx.iter().zip(&sub_m) {
                            margins[i] = *m;
                        }
                        fallback += n_idx.len();
                    }
                }
            }

            // Cascade: the serving contract — escalate near-boundary
            // triage verdicts to the full M-level model.
            let cascade = matches!(mode, Mode::Reuse | Mode::Naive);
            let mut esc_idx: Vec<usize> = Vec::new();
            if cascade && !self.config.triage_only && self.model.levels() > 1 {
                for (i, m) in margins.iter().enumerate() {
                    if m.abs() < self.config.cascade_threshold {
                        esc_idx.push(i);
                    }
                }
            }
            if !esc_idx.is_empty() {
                let sub: Vec<BitImage> = esc_idx.iter().map(|&i| crops[i].clone()).collect();
                let mut sub_m = vec![0.0f32; sub.len()];
                self.margins_for_crops(&self.full_confirm, &sub, ws, &mut sub_m);
                for (&i, m) in esc_idx.iter().zip(&sub_m) {
                    margins[i] = *m;
                }
            }

            for (i, (&slot, &x)) in slots.iter().zip(&wxs).enumerate() {
                let esc = esc_idx.contains(&i);
                let margin = margins[i];
                let hotspot = margin >= 0.0;
                if esc {
                    escalated_n += 1;
                }
                verdicts[slot] = Some(WindowVerdict {
                    x,
                    y,
                    hotspot,
                    margin,
                    escalated: esc,
                });
                if use_dedup {
                    cache.insert(crops[i].as_words().to_vec(), (margin, hotspot, esc));
                }
            }
        }

        let verdicts: Vec<WindowVerdict> = verdicts
            .into_iter()
            .map(|v| v.expect("window scored"))
            .collect();
        let regions = merge_hits(&verdicts, side, cw, chh);
        let hotspots = verdicts.iter().filter(|v| v.hotspot).count();
        ScanReport {
            chip: (cw, chh),
            window: side,
            stride,
            windows: verdicts.len(),
            hotspots,
            escalated: escalated_n,
            reused,
            fallback,
            dedup_hits,
            verdicts,
            regions,
        }
    }

    /// Scores window crops through `plan` in batches, writing logit
    /// margins (hotspot − non-hotspot).
    fn margins_for_crops(
        &self,
        plan: &ExecPlan<'_>,
        crops: &[BitImage],
        ws: &mut Workspace,
        out: &mut [f32],
    ) {
        let side = self.window;
        let classes = self.model.fc_weight().shape()[0];
        assert_eq!(classes, 2, "the cascade expects binary logits");
        for (ci, chunk) in crops.chunks(BATCH).enumerate() {
            let n = chunk.len();
            let mut input = ws.take_f32(n * side * side);
            for (i, crop) in chunk.iter().enumerate() {
                image_to_signed_into(crop, &mut input[i * side * side..(i + 1) * side * side]);
            }
            let mut logits = ws.take_f32(n * classes);
            // Multi-window chunks engage the bit-sliced XNOR-GEMM tier
            // (bit-identical to per-window execution).
            plan.run_batch_into(&input, n, ws, &mut logits);
            for i in 0..n {
                out[ci * BATCH + i] = logits[i * classes + 1] - logits[i * classes];
            }
            ws.give_f32(input);
            ws.give_f32(logits);
        }
    }

    /// The reuse path for one band: prefix slab + border strips +
    /// per-window suffix, writing triage margins for `r_idx` windows.
    #[allow(clippy::too_many_arguments)]
    fn band_margins(
        &self,
        reuse: &Reuse<'m>,
        band_plan: &ExecPlan<'m>,
        image: &BitImage,
        y: usize,
        wxs: &[usize],
        crops: &[BitImage],
        r_idx: &[usize],
        ws: &mut Workspace,
        margins: &mut [f32],
    ) {
        let side = self.window;
        let cw = image.width();
        let f = reuse.info.stride;
        let (rl, rr) = (reuse.info.ring_left, reuse.info.ring_right);
        let sin = reuse.info.strip_cols;
        let (pc, oh, ow, sow_strip) = (reuse.pc, reuse.oh, reuse.ow, reuse.strip_ow);

        // 1. Band slab: the prefix over the full chip width.
        let (bpc, boh, bow) = band_plan.feature_shape();
        debug_assert_eq!((bpc, boh), (pc, oh));
        let mut band_input = ws.take_f32(side * cw);
        for r in 0..side {
            row_to_signed(image, y + r, &mut band_input[r * cw..(r + 1) * cw]);
        }
        let mut slab = ws.take_f32(pc * oh * bow);
        band_plan.run_features_into(&band_input, 1, ws, &mut slab);
        ws.give_f32(band_input);

        // 2. Border strips, batched across the band.
        let lefts: Vec<usize> = r_idx
            .iter()
            .copied()
            .filter(|&i| rl > 0 && wxs[i] > 0)
            .collect();
        let rights: Vec<usize> = r_idx
            .iter()
            .copied()
            .filter(|&i| rr > 0 && wxs[i] + side < cw)
            .collect();
        let strip_feats = |idx: &[usize], col0: usize, ws: &mut Workspace| -> Vec<f32> {
            let mut feats = vec![0.0f32; idx.len() * pc * oh * sow_strip];
            for (bi, chunk) in idx.chunks(BATCH).enumerate() {
                let n = chunk.len();
                let mut input = ws.take_f32(n * side * sin);
                for (i, &wi) in chunk.iter().enumerate() {
                    let crop = &crops[wi];
                    let dst = &mut input[i * side * sin..(i + 1) * side * sin];
                    for r in 0..side {
                        for c in 0..sin {
                            dst[r * sin + c] = if crop.get(col0 + c, r) { 1.0 } else { -1.0 };
                        }
                    }
                }
                let lo = bi * BATCH * pc * oh * sow_strip;
                reuse.strip_plan.run_features_batch_into(
                    &input,
                    n,
                    ws,
                    &mut feats[lo..lo + n * pc * oh * sow_strip],
                );
                ws.give_f32(input);
            }
            feats
        };
        let lfeat = strip_feats(&lefts, 0, ws);
        let rfeat = strip_feats(&rights, side - sin, ws);
        let lpos: HashMap<usize, usize> = lefts.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        let rpos: HashMap<usize, usize> = rights.iter().enumerate().map(|(p, &i)| (i, p)).collect();

        // 3. Assemble per-window features and run the suffix.
        let classes = self.model.fc_weight().shape()[0];
        let wfeat = pc * oh * ow;
        for chunk in r_idx.chunks(BATCH) {
            let n = chunk.len();
            let mut assembled = ws.take_f32(n * wfeat);
            for (i, &wi) in chunk.iter().enumerate() {
                let x = wxs[wi];
                let xo = x / f;
                let il = if x > 0 { rl } else { 0 };
                let ih = if x + side < cw { ow - rr } else { ow };
                let dst = &mut assembled[i * wfeat..(i + 1) * wfeat];
                for ch in 0..pc {
                    for row in 0..oh {
                        let d = &mut dst[(ch * oh + row) * ow..(ch * oh + row + 1) * ow];
                        let s = &slab[(ch * oh + row) * bow..(ch * oh + row + 1) * bow];
                        d[il..ih].copy_from_slice(&s[xo + il..xo + ih]);
                        if il > 0 {
                            let p = lpos[&wi] * pc * oh * sow_strip;
                            let ls = &lfeat[p + (ch * oh + row) * sow_strip..];
                            d[..il].copy_from_slice(&ls[..il]);
                        }
                        if ih < ow {
                            let p = rpos[&wi] * pc * oh * sow_strip;
                            let rs = &rfeat[p + (ch * oh + row) * sow_strip..];
                            d[ih..].copy_from_slice(&rs[sow_strip - (ow - ih)..sow_strip]);
                        }
                    }
                }
            }
            let mut logits = ws.take_f32(n * classes);
            reuse
                .suffix_plan
                .run_batch_into(&assembled, n, ws, &mut logits);
            for (i, &wi) in chunk.iter().enumerate() {
                margins[wi] = logits[i * classes + 1] - logits[i * classes];
            }
            ws.give_f32(assembled);
            ws.give_f32(logits);
        }
        ws.give_f32(slab);
    }
}

/// The window origins along one axis: every multiple of `stride` that
/// fits, plus a flush window at the far edge when the size is not a
/// multiple.  A dimension smaller than the window yields the single
/// origin 0 (the window is zero-extended past the edge).
pub fn scan_grid(dim: usize, window: usize, stride: usize) -> Vec<usize> {
    assert!(
        window > 0 && stride > 0,
        "window and stride must be positive"
    );
    if dim <= window {
        return vec![0];
    }
    let last = dim - window;
    let mut xs: Vec<usize> = (0..=last).step_by(stride).collect();
    if *xs.last().expect("non-empty grid") != last {
        xs.push(last);
    }
    xs
}

/// Extracts the `side × side` window at `(x0, y0)`, zero-extending
/// past the chip edges — exactly the content per-clip inference would
/// see for this window.
pub(crate) fn crop_window(image: &BitImage, x0: usize, y0: usize, side: usize) -> BitImage {
    let wpr = side.div_ceil(64);
    let mut words = vec![0u64; side * wpr];
    let rows = side.min(image.height().saturating_sub(y0));
    let shift = x0 % 64;
    let base = x0 / 64;
    let tail_mask = if side.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (side % 64)) - 1
    };
    for r in 0..rows {
        let src = image.row_words(y0 + r);
        let dst = &mut words[r * wpr..(r + 1) * wpr];
        for (i, d) in dst.iter_mut().enumerate() {
            let lo = base + i;
            let mut v = 0u64;
            if lo < src.len() {
                v = src[lo] >> shift;
                if shift != 0 && lo + 1 < src.len() {
                    v |= src[lo + 1] << (64 - shift);
                }
            }
            *d = v;
        }
        dst[wpr - 1] &= tail_mask;
    }
    BitImage::from_words(side, side, words).expect("crop respects the word invariant")
}

/// ±1 values of one chip row into `out` (length = chip width).
fn row_to_signed(image: &BitImage, y: usize, out: &mut [f32]) {
    let words = image.row_words(y);
    for (x, slot) in out.iter_mut().enumerate() {
        *slot = if words[x >> 6] >> (x & 63) & 1 == 1 {
            1.0
        } else {
            -1.0
        };
    }
}

/// `image_to_signed_into` — the packed path's ±1 convention (set bit →
/// `1.0`, clear → `-1.0`), matching [`BitImage::to_signed_f32`].
fn image_to_signed_into(image: &BitImage, out: &mut [f32]) {
    let w = image.width();
    for y in 0..image.height() {
        row_to_signed(image, y, &mut out[y * w..(y + 1) * w]);
    }
}

/// Coalesces hotspot windows into [`Region`]s: windows whose areas
/// overlap *or* abut — sharing an edge or just a corner, i.e. origin
/// distance ≤ `window` on both axes — join the same region.  Regions
/// are returned best score first (ties: lowest `(y0, x0)`), with
/// bounding boxes clamped to the chip.
pub fn merge_hits(
    verdicts: &[WindowVerdict],
    window: usize,
    chip_w: usize,
    chip_h: usize,
) -> Vec<Region> {
    let hits: Vec<&WindowVerdict> = verdicts.iter().filter(|v| v.hotspot).collect();
    if hits.is_empty() {
        return Vec::new();
    }
    // Union-find over a window-sized spatial hash: any two merging
    // windows are at most one bucket apart on each axis.
    let mut parent: Vec<usize> = (0..hits.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut buckets: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (i, h) in hits.iter().enumerate() {
        buckets
            .entry((h.x / window, h.y / window))
            .or_default()
            .push(i);
    }
    for (i, h) in hits.iter().enumerate() {
        let (bx, by) = (h.x / window, h.y / window);
        for nx in bx.saturating_sub(1)..=bx + 1 {
            for ny in by.saturating_sub(1)..=by + 1 {
                let Some(cands) = buckets.get(&(nx, ny)) else {
                    continue;
                };
                for &j in cands {
                    if j <= i {
                        continue;
                    }
                    let o = hits[j];
                    if h.x.abs_diff(o.x) <= window && h.y.abs_diff(o.y) <= window {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..hits.len() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut regions: Vec<Region> = groups
        .into_values()
        .map(|members| {
            let mut it = members.iter().map(|&i| hits[i]);
            let first = it.next().expect("non-empty component");
            let clamp = |h: &WindowVerdict| {
                (
                    h.x,
                    h.y,
                    (h.x + window).min(chip_w),
                    (h.y + window).min(chip_h),
                )
            };
            let (mut x0, mut y0, mut x1, mut y1) = clamp(first);
            let mut peak = first;
            for h in it {
                let (a, b, c, d) = clamp(h);
                x0 = x0.min(a);
                y0 = y0.min(b);
                x1 = x1.max(c);
                y1 = y1.max(d);
                let better = h.margin > peak.margin
                    || (h.margin == peak.margin && (h.y, h.x) < (peak.y, peak.x));
                if better {
                    peak = h;
                }
            }
            Region {
                x0,
                y0,
                x1,
                y1,
                score: peak.margin,
                peak: (peak.x, peak.y),
                windows: members.len(),
            }
        })
        .collect();
    regions.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| (a.y0, a.x0).cmp(&(b.y0, b.x0)))
    });
    regions
}

/// Folds an accumulator through the prefix layer structure: `conv` per
/// packed conv (in execution order), `join` where a shortcut merges
/// back into the main path.
fn fold_prefix<T: Copy>(
    model: &PackedBnn,
    nblocks: usize,
    init: T,
    conv: impl Fn(T, &PackedConv) -> T,
    join: impl Fn(T, T) -> T,
) -> T {
    let mut v = conv(init, model.stem());
    for block in &model.blocks()[..nblocks] {
        let block_in = v;
        let main = conv(conv(v, block.conv1()), block.conv2());
        let side = match block.shortcut() {
            Some(sc) => conv(block_in, sc),
            None => block_in,
        };
        v = join(main, side);
    }
    v
}

/// Derives the reuse split for `model` at this window size, or `None`
/// when no band-reuse split applies (the scanner then runs naively).
fn derive_reuse<'m>(
    model: &'m PackedBnn,
    window: usize,
    backend: KernelBackend,
) -> Option<Reuse<'m>> {
    let blocks = model.blocks();
    if blocks.is_empty() {
        return None;
    }
    // Prefix = stem + leading blocks while the cumulative stride stays
    // ≤ 2, always leaving at least one block for the suffix.
    let mut f = model.stem().stride();
    let mut nblocks = 0usize;
    for (i, b) in blocks.iter().enumerate() {
        if i + 1 >= blocks.len() {
            break;
        }
        let bs = b.conv1().stride() * b.conv2().stride();
        if f * bs <= 2 {
            f *= bs;
            nblocks = i + 1;
        } else {
            break;
        }
    }
    if f > 2 || !window.is_multiple_of(f) {
        return None;
    }

    // Horizontal geometry of the prefix on a full window.
    let out_w = |w_in: usize| {
        fold_prefix(
            model,
            nblocks,
            w_in,
            |w, c| c.output_hw(w, w).1,
            |a, b| {
                debug_assert_eq!(a, b, "shortcut width mismatch");
                a
            },
        )
    };
    // Contamination from a cut edge: g' = ceil((g + p) / s) per conv,
    // worst path through a merge.
    let cut_growth = fold_prefix(
        model,
        nblocks,
        0usize,
        |g, c| (g + c.pad()).div_ceil(c.stride()),
        |a, b| a.max(b),
    );
    // Valid columns anchored at a genuine edge, eroded by the opposite
    // cut: v' = floor((v + p − k) / s) + 1, weakest path through a
    // merge.
    let valid = |w_in: usize| {
        fold_prefix(
            model,
            nblocks,
            w_in,
            |v, c| {
                if v + c.pad() >= c.kernel() {
                    (v + c.pad() - c.kernel()) / c.stride() + 1
                } else {
                    0
                }
            },
            |a, b| a.min(b),
        )
    };

    let ow = out_w(window);
    let oh = fold_prefix(
        model,
        nblocks,
        window,
        |h, c| c.output_hw(h, h).0,
        |a, b| {
            debug_assert_eq!(a, b);
            a
        },
    );
    let ring_l = cut_growth;
    let ring_r = ow.saturating_sub(valid(window));
    if ring_l + ring_r >= ow {
        return None;
    }

    // Smallest strip (multiple of f) wide enough that its clean side
    // yields the rings: the left strip needs `valid(S) ≥ ring_l`
    // leading columns, the right strip needs `out_w(S) − cut_growth ≥
    // ring_r` trailing ones.
    let mut strip_cols = None;
    let mut s = f;
    while s <= window {
        if valid(s) >= ring_l && out_w(s) >= cut_growth + ring_r {
            strip_cols = Some(s);
            break;
        }
        s += f;
    }
    let strip_cols = strip_cols?;
    let strip_ow = out_w(strip_cols);
    // Grid alignment: a strip output column j corresponds to window
    // output column j + (window − S)/f.
    if ow != strip_ow + (window - strip_cols) / f {
        return None;
    }

    let strip_plan = ExecPlan::compile_segment(model, (window, strip_cols), backend, 1, 0..nblocks);
    let suffix_plan = ExecPlan::compile_segment(model, (oh, ow), backend, 1, nblocks..blocks.len());
    let (pc, soh, sow) = strip_plan.feature_shape();
    debug_assert_eq!((soh, sow), (oh, strip_ow));
    Some(Reuse {
        info: ReuseInfo {
            prefix_blocks: nblocks,
            stride: f,
            ring_left: ring_l,
            ring_right: ring_r,
            strip_cols,
        },
        pc,
        oh,
        ow,
        strip_ow,
        strip_plan,
        suffix_plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BnnResNet, NetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hit(x: usize, y: usize, margin: f32) -> WindowVerdict {
        WindowVerdict {
            x,
            y,
            hotspot: true,
            margin,
            escalated: false,
        }
    }

    fn miss(x: usize, y: usize) -> WindowVerdict {
        WindowVerdict {
            x,
            y,
            hotspot: false,
            margin: -1.0,
            escalated: false,
        }
    }

    #[test]
    fn grid_covers_flush_edge() {
        assert_eq!(scan_grid(256, 128, 64), vec![0, 64, 128]);
        assert_eq!(scan_grid(300, 128, 64), vec![0, 64, 128, 172]);
        assert_eq!(scan_grid(128, 128, 32), vec![0]);
        assert_eq!(scan_grid(100, 128, 32), vec![0]);
        assert_eq!(scan_grid(129, 128, 64), vec![0, 1]);
    }

    #[test]
    fn crop_matches_per_pixel_reference() {
        let mut img = BitImage::new(200, 90);
        let mut state = 99u32;
        for y in 0..90 {
            for x in 0..200 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state & 0x30000 == 0 {
                    img.set(x, y, true);
                }
            }
        }
        for (x0, y0, side) in [
            (0, 0, 64),
            (63, 10, 64),
            (64, 5, 100),
            (130, 40, 128),
            (1, 89, 16),
        ] {
            let crop = crop_window(&img, x0, y0, side);
            for y in 0..side {
                for x in 0..side {
                    let want = x0 + x < 200 && y0 + y < 90 && img.get(x0 + x, y0 + y);
                    assert_eq!(crop.get(x, y), want, "({x0},{y0},{side}) at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn merge_empty_hit_set() {
        let v = vec![miss(0, 0), miss(64, 0)];
        assert!(merge_hits(&v, 128, 256, 128).is_empty());
    }

    #[test]
    fn merge_abutting_and_overlapping_hits() {
        // Overlapping (dx = 64 < window) and abutting (dx = window)
        // both merge into one region; a window further than the side
        // does not.
        let v = vec![
            hit(0, 0, 1.0),
            hit(64, 0, 2.0),
            hit(128, 0, 0.5),
            hit(320, 0, 3.0),
        ];
        let r = merge_hits(&v, 128, 512, 128);
        assert_eq!(r.len(), 2);
        assert_eq!((r[0].x0, r[0].x1), (320, 448), "best score first");
        assert_eq!(r[0].windows, 1);
        assert_eq!((r[1].x0, r[1].x1), (0, 256));
        assert_eq!(r[1].windows, 3);
        assert_eq!(r[1].score, 2.0);
        assert_eq!(r[1].peak, (64, 0));
    }

    #[test]
    fn merge_corner_touch_joins() {
        let v = vec![hit(0, 0, 1.0), hit(128, 128, 1.0)];
        let r = merge_hits(&v, 128, 512, 512);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].x0, r[0].y0, r[0].x1, r[0].y1), (0, 0, 256, 256));
    }

    #[test]
    fn merge_tie_scores_pick_lowest_origin() {
        let v = vec![hit(64, 64, 1.5), hit(0, 64, 1.5), hit(64, 0, 1.5)];
        let r = merge_hits(&v, 128, 512, 512);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].peak, (64, 0), "tie broken by lowest (y, x)");
        assert_eq!(r[0].score, 1.5);
    }

    #[test]
    fn merge_clamps_to_chip_borders() {
        // Flush window on a 200-wide chip: box must not spill past it.
        let v = vec![hit(72, 0, 1.0)];
        let r = merge_hits(&v, 128, 200, 100);
        assert_eq!((r[0].x0, r[0].y0, r[0].x1, r[0].y1), (72, 0, 200, 100));
    }

    #[test]
    fn merge_single_window_smaller_than_chip_window() {
        // A 100×90 "chip" scanned with a 128 window: one window at the
        // origin, region clamped to the chip.
        let v = vec![hit(0, 0, 0.25)];
        let r = merge_hits(&v, 128, 100, 90);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].x0, r[0].y0, r[0].x1, r[0].y1), (0, 0, 100, 90));
        assert_eq!(r[0].center(), (50, 45));
    }

    #[test]
    fn paper_net_reuse_split_is_the_documented_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = BnnResNet::new(&NetConfig::paper_12layer(), &mut rng);
        let packed = PackedBnn::compile(&net);
        let sc = Scanner::new(&packed, 128, ScanConfig::new(64));
        let info = sc.reuse_info().expect("paper net must support reuse");
        assert_eq!(info.prefix_blocks, 2, "stem + res1 + res2");
        assert_eq!(info.stride, 2);
        assert_eq!(info.ring_left, 3);
        assert_eq!(info.ring_right, 3);
        assert_eq!(info.strip_cols, 12);
    }

    #[test]
    fn tiny_net_reuse_split() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let packed = PackedBnn::compile(&net);
        let sc = Scanner::new(&packed, 16, ScanConfig::new(8));
        let info = sc.reuse_info().expect("tiny net must support reuse");
        assert_eq!(info.prefix_blocks, 1, "stem + res1");
        assert_eq!(info.stride, 1);
        assert!(info.strip_cols >= info.ring_left);
    }

    #[test]
    fn scan_smoke_matches_naive_on_tiny_net() {
        let mut rng = StdRng::seed_from_u64(31);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let packed = PackedBnn::compile(&net);
        let sc = Scanner::new(&packed, 16, ScanConfig::new(8));
        let mut img = BitImage::new(48, 40);
        let mut state = 5u32;
        for y in 0..40 {
            for x in 0..48 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state & 0x18000 == 0 {
                    img.set(x, y, true);
                }
            }
        }
        let mut ws = Workspace::new();
        let fast = sc.scan(&img, &mut ws);
        let slow = sc.scan_naive(&img, &mut ws);
        assert_eq!(fast.verdicts, slow.verdicts, "bit-identical verdicts");
        assert_eq!(fast.regions, slow.regions);
        assert!(fast.reused > 0, "reuse path must engage: {fast:?}");
    }
}
