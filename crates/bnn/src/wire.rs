//! Binary wire codec for compiled models.
//!
//! Lives in this crate (rather than the persistence layer) because the
//! packed types keep their fields private; the on-disk framing —
//! magic, versioning, files — is `hotspot-core::persist`'s job.

use crate::bitpack::BitFilter;
use crate::packed::{PackedBnn, PackedConv, PackedResidual};
use crate::scaling::ScalingMode;
use hotspot_tensor::{WireError, WireReader, WireWriter};

fn put_scaling(w: &mut WireWriter, s: ScalingMode) {
    w.put_u8(match s {
        ScalingMode::PlainSign => 0,
        ScalingMode::Shared => 1,
        ScalingMode::PerChannel => 2,
    });
}

fn get_scaling(r: &mut WireReader<'_>) -> Result<ScalingMode, WireError> {
    match r.get_u8()? {
        0 => Ok(ScalingMode::PlainSign),
        1 => Ok(ScalingMode::Shared),
        2 => Ok(ScalingMode::PerChannel),
        b => Err(WireError(format!("invalid scaling-mode byte {b}"))),
    }
}

impl BitFilter {
    pub(crate) fn encode_wire(&self, w: &mut WireWriter) {
        let (k, c, kh, kw) = self.dims();
        w.put_usize(k);
        w.put_usize(c);
        w.put_usize(kh);
        w.put_usize(kw);
        w.put_u64_slice(self.as_words());
    }

    pub(crate) fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let k = r.get_usize()?;
        let c = r.get_usize()?;
        let kh = r.get_usize()?;
        let kw = r.get_usize()?;
        let words = r.get_u64_vec()?;
        BitFilter::from_raw_parts(k, c, kh, kw, words)
            .map_err(|m| WireError(format!("bit filter: {m}")))
    }
}

impl PackedConv {
    pub(crate) fn encode_wire(&self, w: &mut WireWriter, multilevel: bool) {
        w.put_f32_slice(self.bn_scale());
        w.put_f32_slice(self.bn_shift());
        self.filter().encode_wire(w);
        w.put_f32_slice(self.alpha_w());
        w.put_usize(self.stride());
        w.put_usize(self.pad());
        w.put_usize(self.kernel());
        put_scaling(w, self.scaling());
        if multilevel {
            w.put_usize(self.extra_levels().len());
            for (filter, alpha) in self.extra_levels() {
                filter.encode_wire(w);
                w.put_f32_slice(alpha);
            }
        } else {
            assert!(
                self.extra_levels().is_empty(),
                "single-level wire format cannot carry residual levels"
            );
        }
    }

    pub(crate) fn decode_wire(r: &mut WireReader<'_>, multilevel: bool) -> Result<Self, WireError> {
        let bn_scale = r.get_f32_vec()?;
        let bn_shift = r.get_f32_vec()?;
        let filter = BitFilter::decode_wire(r)?;
        let alpha_w = r.get_f32_vec()?;
        let stride = r.get_usize()?;
        let pad = r.get_usize()?;
        let kernel = r.get_usize()?;
        let scaling = get_scaling(r)?;
        if bn_scale.len() != bn_shift.len() {
            return Err(WireError("bn scale/shift length mismatch".into()));
        }
        if alpha_w.len() != filter.dims().0 {
            return Err(WireError("alpha_w/filter count mismatch".into()));
        }
        let extra_levels = if multilevel {
            // A residual level encodes to well past 32 bytes (a bit
            // filter plus a per-filter scale vector); bounding by the
            // remaining payload rejects hostile counts up front.
            let n_extra = r.get_count(32)?;
            let mut extra = Vec::with_capacity(n_extra);
            for _ in 0..n_extra {
                let lf = BitFilter::decode_wire(r)?;
                let alpha = r.get_f32_vec()?;
                if lf.dims() != filter.dims() {
                    return Err(WireError("residual level filter shape mismatch".into()));
                }
                if alpha.len() != lf.dims().0 {
                    return Err(WireError(
                        "residual level alpha/filter count mismatch".into(),
                    ));
                }
                extra.push((lf, alpha));
            }
            extra
        } else {
            Vec::new()
        };
        Ok(PackedConv::from_raw_parts(
            bn_scale,
            bn_shift,
            filter,
            alpha_w,
            stride,
            pad,
            kernel,
            scaling,
            extra_levels,
        ))
    }
}

impl PackedResidual {
    pub(crate) fn encode_wire(&self, w: &mut WireWriter, multilevel: bool) {
        self.conv1().encode_wire(w, multilevel);
        self.conv2().encode_wire(w, multilevel);
        match self.shortcut() {
            Some(s) => {
                w.put_bool(true);
                s.encode_wire(w, multilevel);
            }
            None => w.put_bool(false),
        }
    }

    pub(crate) fn decode_wire(r: &mut WireReader<'_>, multilevel: bool) -> Result<Self, WireError> {
        let conv1 = PackedConv::decode_wire(r, multilevel)?;
        let conv2 = PackedConv::decode_wire(r, multilevel)?;
        let shortcut = if r.get_bool()? {
            Some(PackedConv::decode_wire(r, multilevel)?)
        } else {
            None
        };
        Ok(PackedResidual::from_raw_parts(conv1, conv2, shortcut))
    }
}

impl PackedBnn {
    /// Encodes the model body (no header) into `w` in the current
    /// (multi-level) wire layout: each packed convolution carries its
    /// residual bit planes and per-level scales after the base fields.
    pub fn encode_wire(&self, w: &mut WireWriter) {
        self.encode_wire_versioned(w, true);
    }

    /// Encodes the model body in the *legacy* single-level layout used
    /// by pre-`BRNNHS04` artifacts.  Only models with `levels() == 1`
    /// can be framed this way; the codec panics otherwise.  Exists so
    /// tests (and tooling) can fabricate legacy fixtures without
    /// keeping binary blobs in the tree.
    #[doc(hidden)]
    pub fn encode_wire_v3(&self, w: &mut WireWriter) {
        self.encode_wire_versioned(w, false);
    }

    fn encode_wire_versioned(&self, w: &mut WireWriter, multilevel: bool) {
        self.stem().encode_wire(w, multilevel);
        w.put_usize(self.blocks().len());
        for b in self.blocks() {
            b.encode_wire(w, multilevel);
        }
        w.put_tensor(self.fc_weight());
        w.put_tensor(self.fc_bias());
    }

    /// Decodes a model body previously written by [`encode_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    ///
    /// [`encode_wire`]: PackedBnn::encode_wire
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_wire_versioned(r, true)
    }

    /// Decodes a legacy single-level body (pre-`BRNNHS04` layouts,
    /// which predate residual levels).  The result always has
    /// `levels() == 1`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire_v3(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_wire_versioned(r, false)
    }

    fn decode_wire_versioned(r: &mut WireReader<'_>, multilevel: bool) -> Result<Self, WireError> {
        let stem = PackedConv::decode_wire(r, multilevel)?;
        // A residual block encodes to well over 32 bytes (two packed
        // convs plus the shortcut flag); bounding the count by the
        // remaining payload rejects hostile prefixes before allocating.
        let n_blocks = r.get_count(32)?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            blocks.push(PackedResidual::decode_wire(r, multilevel)?);
        }
        let fc_weight = r.get_tensor()?;
        let fc_bias = r.get_tensor()?;
        Ok(PackedBnn::from_raw_parts(stem, blocks, fc_weight, fc_bias))
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{BnnResNet, NetConfig};
    use crate::packed::PackedBnn;
    use hotspot_tensor::{Tensor, WireReader, WireWriter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn model_wire_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = PackedBnn::compile(&net);
        let mut w = WireWriter::new();
        model.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = PackedBnn::decode_wire(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "payload fully consumed");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
    }

    #[test]
    fn multilevel_model_wire_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(23);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let model = PackedBnn::compile(&net);
        assert_eq!(model.levels(), 2);
        let mut w = WireWriter::new();
        model.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = PackedBnn::decode_wire(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "payload fully consumed");
        assert_eq!(restored.levels(), 2);
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
    }

    #[test]
    fn legacy_v3_wire_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(29);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = PackedBnn::compile(&net);
        let mut w = WireWriter::new();
        model.encode_wire_v3(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = PackedBnn::decode_wire_v3(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0, "payload fully consumed");
        assert_eq!(restored.levels(), 1);
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
    }

    #[test]
    #[should_panic(expected = "single-level wire format")]
    fn legacy_encoder_rejects_multilevel_models() {
        let mut rng = StdRng::seed_from_u64(31);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let model = PackedBnn::compile(&net);
        let mut w = WireWriter::new();
        model.encode_wire_v3(&mut w);
    }

    #[test]
    fn truncated_model_rejected() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = PackedBnn::compile(&net);
        let mut w = WireWriter::new();
        model.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..bytes.len() / 2]);
        assert!(PackedBnn::decode_wire(&mut r).is_err());
    }
}
