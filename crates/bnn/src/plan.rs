//! An explicit, pre-compiled execution plan for packed inference.
//!
//! [`PackedBnn::forward`] walks the network structurally, deciding
//! shapes and buffers as it goes.  An [`ExecPlan`] hoists all of that
//! out of the hot path: [`PackedBnn::plan`] compiles the model, for one
//! input resolution, into a flat sequence of [`Step`]s with every
//! output shape precomputed and activations assigned to three
//! ping-pong buffers (a residual block needs at most three live
//! activations: block input, main path, and the accumulating output).
//! [`ExecPlan::run_into`] then executes the steps with every buffer —
//! activations, packed sign words, popcount scratch, scale maps, the
//! pooled features — drawn from a [`Workspace`], so a warm plan
//! performs **zero heap allocations per forward** (enforced by the
//! `alloc_steady_state` integration test).
//!
//! The plan borrows the model (`ExecPlan<'m>`) and is immutable after
//! compilation, so one plan can be shared by many rayon workers, each
//! running chunks of a batch with its own workspace — this is how
//! `BnnDetector` shards large batches.
//!
//! # Example
//!
//! ```
//! use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
//! use hotspot_tensor::Workspace;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
//! let packed = PackedBnn::compile(&net);
//! let plan = packed.plan((16, 16));
//! let mut ws = Workspace::new();
//! let input = vec![1.0f32; 2 * 16 * 16]; // two ±1 clips
//! let mut logits = vec![0.0f32; 2 * 2];
//! plan.run_into(&input, 2, &mut ws, &mut logits); // warm-up: allocates
//! plan.run_into(&input, 2, &mut ws, &mut logits); // steady state: no allocs
//! ```

use crate::kernels::{active_backend, KernelBackend};
use crate::packed::{ConvPrep, PackedBnn, PackedConv};
use hotspot_telemetry::{Clock, SlotProfiler};
use hotspot_tensor::workspace::Workspace;
use hotspot_tensor::{global_avg_pool_into, Tensor};
use std::sync::Arc;

/// Where a step reads its activation from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// The caller's input slice (only the stem reads here).
    Input,
    /// One of the three ping-pong activation buffers.
    Buf(usize),
}

/// One layer-execution step of a compiled plan.
#[derive(Debug)]
enum Step<'m> {
    /// Run a packed conv from `src` into buffer `dst` (overwrites it).
    /// `prep` carries the shape-derived state — geometry tables, fused
    /// sign rules, kernel backend — precomputed at plan-compile time.
    /// Boxed so the `Add` variant stays small.
    Conv {
        conv: &'m PackedConv,
        prep: Box<ConvPrep>,
        src: Src,
        dst: usize,
        in_hw: (usize, usize),
        out_elems: usize,
    },
    /// Elementwise `buf[dst] += buf[src]` over `elems` per-item
    /// elements (the residual shortcut merge).
    Add {
        src: usize,
        dst: usize,
        elems: usize,
    },
    /// Copy the caller's input slice into buffer `dst`.  Only emitted
    /// as the first step of a suffix segment (a plan starting at an
    /// interior residual block), where the "input" is a feature map
    /// that the first block may need twice — once for its main path
    /// and once for its shortcut merge.
    CopyInput { dst: usize, elems: usize },
}

/// A [`PackedBnn`] compiled into a flat layer sequence for one input
/// resolution (see module docs).
#[derive(Debug)]
pub struct ExecPlan<'m> {
    model: &'m PackedBnn,
    backend: KernelBackend,
    input_c: usize,
    input_hw: (usize, usize),
    steps: Vec<Step<'m>>,
    /// One profiling-slot name per step (same order as `steps`),
    /// matching [`crate::BnnResNet::summary`] naming: `stem`,
    /// `resN.conv1/.conv2/.shortcut`, plus `resN.add` for the merges.
    step_names: Vec<String>,
    /// Per-item element capacity needed by each ping-pong buffer.
    buf_elems: [usize; 3],
    /// Channels, spatial size, and buffer holding the final feature map.
    feat_c: usize,
    final_hw: (usize, usize),
    final_buf: usize,
}

impl<'m> ExecPlan<'m> {
    pub(crate) fn compile(model: &'m PackedBnn, input_hw: (usize, usize)) -> Self {
        ExecPlan::compile_with_backend(model, input_hw, active_backend())
    }

    /// Compiles with an explicit kernel backend (all backends are
    /// bit-identical; used by equivalence tests and benchmarks).
    pub(crate) fn compile_with_backend(
        model: &'m PackedBnn,
        input_hw: (usize, usize),
        backend: KernelBackend,
    ) -> Self {
        ExecPlan::compile_capped(model, input_hw, backend, usize::MAX)
    }

    /// Compiles with the executed residual level count capped at
    /// `max_levels` (clamped per conv to `1..=M`).  The cascade's
    /// triage stage uses this to run an M-level model in single-bit
    /// mode without recompiling or duplicating it.
    pub(crate) fn compile_capped(
        model: &'m PackedBnn,
        input_hw: (usize, usize),
        backend: KernelBackend,
        max_levels: usize,
    ) -> Self {
        ExecPlan::compile_segment(
            model,
            input_hw,
            backend,
            max_levels,
            0..model.blocks().len(),
        )
    }

    /// Compiles a contiguous *segment* of the model: when
    /// `blocks.start == 0` the segment begins at the stem and reads
    /// ±1 pixels; otherwise it begins at residual block `blocks.start`
    /// and reads the feature map that block expects (the previous
    /// block's output), delivered through the plan's input slice via a
    /// leading [`Step::CopyInput`].  The full-chip scanner uses this to
    /// split the net into a stride-1/2 prefix (run once per band) and a
    /// suffix (run per window on reassembled prefix features).
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is out of range, or empty while starting
    /// past the stem (a plan must execute at least one layer).
    pub(crate) fn compile_segment(
        model: &'m PackedBnn,
        input_hw: (usize, usize),
        backend: KernelBackend,
        max_levels: usize,
        blocks: std::ops::Range<usize>,
    ) -> Self {
        assert!(
            blocks.end <= model.blocks().len(),
            "block range out of range"
        );
        assert!(
            blocks.start == 0 || blocks.start < blocks.end,
            "a suffix segment must contain at least one block"
        );
        let stem = model.stem();
        let mut steps = Vec::new();
        let mut step_names = Vec::new();
        let mut buf_elems = [0usize; 3];

        let (mut h, mut w);
        let mut c;
        let input_c;
        if blocks.start == 0 {
            (h, w) = stem.output_hw(input_hw.0, input_hw.1);
            c = stem.out_channels();
            input_c = stem.in_channels();
            buf_elems[0] = c * h * w;
            steps.push(Step::Conv {
                conv: stem,
                prep: Box::new(stem.prepare_capped(input_hw.0, input_hw.1, backend, max_levels)),
                src: Src::Input,
                dst: 0,
                in_hw: input_hw,
                out_elems: c * h * w,
            });
            step_names.push("stem".to_string());
        } else {
            (h, w) = input_hw;
            c = model.blocks()[blocks.start - 1].out_channels();
            input_c = c;
            buf_elems[0] = c * h * w;
            steps.push(Step::CopyInput {
                dst: 0,
                elems: c * h * w,
            });
            step_names.push("input".to_string());
        }
        let mut cur = 0usize;

        for bi in blocks.clone() {
            let block = &model.blocks()[bi];
            let a = cur;
            // The two buffers not holding the block input: `b` for the
            // mid activation (and later the projection shortcut, which
            // may overwrite it), `d` for the block output.
            let (b, d) = match a {
                0 => (1, 2),
                1 => (2, 0),
                _ => (0, 1),
            };
            let conv1 = block.conv1();
            let (h1, w1) = conv1.output_hw(h, w);
            let e1 = conv1.out_channels() * h1 * w1;
            buf_elems[b] = buf_elems[b].max(e1);
            steps.push(Step::Conv {
                conv: conv1,
                prep: Box::new(conv1.prepare_capped(h, w, backend, max_levels)),
                src: Src::Buf(a),
                dst: b,
                in_hw: (h, w),
                out_elems: e1,
            });
            step_names.push(format!("res{}.conv1", bi + 1));
            let conv2 = block.conv2();
            let (h2, w2) = conv2.output_hw(h1, w1);
            let e2 = conv2.out_channels() * h2 * w2;
            buf_elems[d] = buf_elems[d].max(e2);
            steps.push(Step::Conv {
                conv: conv2,
                prep: Box::new(conv2.prepare_capped(h1, w1, backend, max_levels)),
                src: Src::Buf(b),
                dst: d,
                in_hw: (h1, w1),
                out_elems: e2,
            });
            step_names.push(format!("res{}.conv2", bi + 1));
            match block.shortcut() {
                Some(sc) => {
                    let (hs, ws) = sc.output_hw(h, w);
                    let es = sc.out_channels() * hs * ws;
                    assert_eq!(es, e2, "projection shortcut shape mismatch");
                    buf_elems[b] = buf_elems[b].max(es);
                    steps.push(Step::Conv {
                        conv: sc,
                        prep: Box::new(sc.prepare_capped(h, w, backend, max_levels)),
                        src: Src::Buf(a),
                        dst: b,
                        in_hw: (h, w),
                        out_elems: es,
                    });
                    step_names.push(format!("res{}.shortcut", bi + 1));
                    steps.push(Step::Add {
                        src: b,
                        dst: d,
                        elems: e2,
                    });
                    step_names.push(format!("res{}.add", bi + 1));
                }
                None => {
                    assert_eq!(c * h * w, e2, "identity shortcut shape mismatch");
                    steps.push(Step::Add {
                        src: a,
                        dst: d,
                        elems: e2,
                    });
                    step_names.push(format!("res{}.add", bi + 1));
                }
            }
            cur = d;
            c = conv2.out_channels();
            h = h2;
            w = w2;
        }

        ExecPlan {
            model,
            backend,
            input_c,
            input_hw,
            steps,
            step_names,
            buf_elems,
            feat_c: c,
            final_hw: (h, w),
            final_buf: cur,
        }
    }

    /// The input resolution this plan was compiled for.
    pub fn input_hw(&self) -> (usize, usize) {
        self.input_hw
    }

    /// The kernel backend every conv step of this plan dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// The residual binarization level count this plan executes — the
    /// maximum over its conv steps after any `plan_capped` clamp.
    pub fn levels(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Conv { prep, .. } => prep.levels(),
                Step::Add { .. } | Step::CopyInput { .. } => 1,
            })
            .max()
            .unwrap_or(1)
    }

    /// Number of layer steps (convs + shortcut merges).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Per-item f32 capacity of the three ping-pong buffers —
    /// the plan's activation footprint.
    pub fn buffer_elems(&self) -> [usize; 3] {
        self.buf_elems
    }

    /// Profiling-slot names for this plan: one per step (in `steps`
    /// order, named after [`crate::BnnResNet::summary`] layers), then
    /// `gap` and `fc` for the classifier head.
    pub fn slot_names(&self) -> Vec<String> {
        let mut names = self.step_names.clone();
        names.push("gap".to_string());
        names.push("fc".to_string());
        names
    }

    /// A [`SlotProfiler`] sized and named for this plan, for use with
    /// [`run_into_profiled`](ExecPlan::run_into_profiled).  Parallel
    /// workers build one each and [`SlotProfiler::merge`] afterwards.
    pub fn profiler(&self) -> SlotProfiler {
        SlotProfiler::new(self.slot_names())
    }

    /// Like [`profiler`](ExecPlan::profiler) with an explicit clock
    /// (deterministic tests).
    pub fn profiler_with_clock(&self, clock: Arc<dyn Clock>) -> SlotProfiler {
        SlotProfiler::with_clock(self.slot_names(), clock)
    }

    /// Runs the plan on a `[n, c, h, w]` input slice (`±1` values,
    /// `c`/`h`/`w` as compiled), writing `[n, classes]` logits into
    /// `logits`.  All intermediates come from `ws`; after one warm-up
    /// call with the same `n`, subsequent calls allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the compiled shapes.
    pub fn run_into(&self, input: &[f32], n: usize, ws: &mut Workspace, logits: &mut [f32]) {
        self.run_impl(input, n, ws, logits, None, false);
    }

    /// [`run_into`](ExecPlan::run_into) routed through the batched
    /// bit-sliced XNOR-GEMM tier: conv steps call
    /// [`PackedConv::forward_prepped_batch`]
    /// (crate::packed::PackedConv::forward_prepped_batch), which tiles
    /// interior pixels of all `n` clips as dense B columns of a
    /// `popcount(A ^ B)` GEMM when `n >= 2` and the layer has a GEMM
    /// prep.  Bit-identical to `n` separate [`run_into`]
    /// (ExecPlan::run_into) calls (property-tested per backend); same
    /// zero-allocation-once-warm workspace discipline.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the compiled shapes.
    pub fn run_batch_into(&self, input: &[f32], n: usize, ws: &mut Workspace, logits: &mut [f32]) {
        let classes = self.model.fc_weight().shape()[0];
        let item = self.input_c * self.input_hw.0 * self.input_hw.1;
        assert_eq!(input.len(), n * item, "input length mismatch");
        assert_eq!(logits.len(), n * classes, "logits length mismatch");
        let chunk = self.batch_chunk();
        for (inp, lg) in input
            .chunks(chunk * item)
            .zip(logits.chunks_mut(chunk * classes))
        {
            self.run_impl(inp, inp.len() / item, ws, lg, None, true);
        }
    }

    /// Items per internal sub-batch of the batched tier.  Running the
    /// whole batch layer-by-layer scales the three ping-pong f32
    /// buffers with `n`, and past the last-level cache that costs more
    /// than GEMM tiling wins — batch 16 of the paper's 128×128 net is
    /// a ~24 MB working set.  So batched entry points split the batch
    /// into chunks sized to a fixed working-set budget; a chunk of
    /// even 3–4 items already fills the GEMM tiles of the smallest
    /// late-layer feature maps.  Item order (and therefore every
    /// output bit) is unchanged — items are independent.
    fn batch_chunk(&self) -> usize {
        static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        if let Some(c) = OVERRIDE.get_or_init(|| {
            std::env::var("HOTSPOT_BATCH_CHUNK")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&c: &usize| c >= 2)
        }) {
            return *c;
        }
        const WORKING_SET_BUDGET: usize = 4 << 20;
        let (h, w) = self.input_hw;
        let per_item =
            (self.buf_elems.iter().sum::<usize>() + self.input_c * h * w) * size_of::<f32>();
        (WORKING_SET_BUDGET / per_item.max(1)).clamp(2, 64)
    }

    /// [`run_into`](ExecPlan::run_into) with per-layer timing: each
    /// step's wall-clock nanoseconds accumulate into the matching slot
    /// of `prof` (built by [`profiler`](ExecPlan::profiler)).  The
    /// profiled path performs the same zero heap allocations as the
    /// unprofiled one once warm — profiling only adds clock reads and
    /// `u64` arithmetic.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (as [`run_into`](ExecPlan::run_into))
    /// or when `prof` was built for a different plan shape.
    pub fn run_into_profiled(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        logits: &mut [f32],
        prof: &mut SlotProfiler,
    ) {
        assert_eq!(
            prof.slot_count(),
            self.steps.len() + 2,
            "profiler was built for a different plan"
        );
        self.run_impl(input, n, ws, logits, Some(prof), false);
    }

    /// [`run_batch_into`](ExecPlan::run_batch_into) with per-layer
    /// timing, as [`run_into_profiled`](ExecPlan::run_into_profiled).
    /// Chunked sub-batches accumulate into the same slots (one
    /// `record_since` per chunk per step).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or a profiler from a different plan.
    pub fn run_batch_into_profiled(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        logits: &mut [f32],
        prof: &mut SlotProfiler,
    ) {
        assert_eq!(
            prof.slot_count(),
            self.steps.len() + 2,
            "profiler was built for a different plan"
        );
        let classes = self.model.fc_weight().shape()[0];
        let item = self.input_c * self.input_hw.0 * self.input_hw.1;
        assert_eq!(input.len(), n * item, "input length mismatch");
        assert_eq!(logits.len(), n * classes, "logits length mismatch");
        let chunk = self.batch_chunk();
        for (inp, lg) in input
            .chunks(chunk * item)
            .zip(logits.chunks_mut(chunk * classes))
        {
            self.run_impl(inp, inp.len() / item, ws, lg, Some(prof), true);
        }
    }

    fn run_impl(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        logits: &mut [f32],
        mut prof: Option<&mut SlotProfiler>,
        batched: bool,
    ) {
        let (h, w) = self.input_hw;
        assert_eq!(
            input.len(),
            n * self.input_c * h * w,
            "input length mismatch"
        );
        let classes = self.model.fc_weight().shape()[0];
        assert_eq!(logits.len(), n * classes, "logits length mismatch");

        let mut bufs = [
            ws.take_f32(n * self.buf_elems[0]),
            ws.take_f32(n * self.buf_elems[1]),
            ws.take_f32(n * self.buf_elems[2]),
        ];
        self.exec_steps(input, n, ws, &mut bufs, &mut prof, batched);

        // Global average pool + full-precision classifier, with the
        // same accumulation order as the structural forward.
        let gap_slot = self.steps.len();
        let t0 = prof.as_ref().map(|p| p.begin());
        let (fh, fw) = self.final_hw;
        let mut pooled = ws.take_f32(n * self.feat_c);
        global_avg_pool_into(
            &bufs[self.final_buf][..n * self.feat_c * fh * fw],
            n,
            self.feat_c,
            fh,
            fw,
            &mut pooled,
        );
        if let (Some(p), Some(t)) = (prof.as_deref_mut(), t0) {
            p.record_since(gap_slot, t);
        }
        let t0 = prof.as_ref().map(|p| p.begin());
        let fcw = self.model.fc_weight().as_slice();
        let fcb = self.model.fc_bias().as_slice();
        let inp = self.feat_c;
        for ni in 0..n {
            for oi in 0..classes {
                let mut acc = fcb[oi];
                for ii in 0..inp {
                    acc += fcw[oi * inp + ii] * pooled[ni * inp + ii];
                }
                logits[ni * classes + oi] = acc;
            }
        }
        if let (Some(p), Some(t)) = (prof, t0) {
            p.record_since(gap_slot + 1, t);
        }
        ws.give_f32(pooled);
        let [b0, b1, b2] = bufs;
        ws.give_f32(b0);
        ws.give_f32(b1);
        ws.give_f32(b2);
    }

    /// Executes the layer steps of the plan, leaving the final feature
    /// map in `bufs[self.final_buf]`.
    fn exec_steps(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        bufs: &mut [Vec<f32>; 3],
        prof: &mut Option<&mut SlotProfiler>,
        batched: bool,
    ) {
        for (si, step) in self.steps.iter().enumerate() {
            let t0 = prof.as_ref().map(|p| p.begin());
            match step {
                Step::Conv {
                    conv,
                    prep,
                    src,
                    dst,
                    in_hw,
                    out_elems,
                } => {
                    let out_len = n * out_elems;
                    let fwd = if batched {
                        PackedConv::forward_prepped_batch
                    } else {
                        PackedConv::forward_prepped
                    };
                    match src {
                        Src::Input => fwd(conv, prep, input, n, ws, &mut bufs[*dst][..out_len]),
                        Src::Buf(s) => {
                            let in_len = n * conv.in_channels() * in_hw.0 * in_hw.1;
                            let (src_buf, dst_buf) = two_bufs(bufs, *s, *dst);
                            fwd(
                                conv,
                                prep,
                                &src_buf[..in_len],
                                n,
                                ws,
                                &mut dst_buf[..out_len],
                            );
                        }
                    }
                }
                Step::Add { src, dst, elems } => {
                    let len = n * elems;
                    let (src_buf, dst_buf) = two_bufs(bufs, *src, *dst);
                    for (o, v) in dst_buf[..len].iter_mut().zip(&src_buf[..len]) {
                        *o += v;
                    }
                }
                Step::CopyInput { dst, elems } => {
                    let len = n * elems;
                    bufs[*dst][..len].copy_from_slice(&input[..len]);
                }
            }
            if let (Some(p), Some(t)) = (prof.as_deref_mut(), t0) {
                p.record_since(si, t);
            }
        }
    }

    /// The shape of the feature map the layer steps produce, as
    /// `(channels, height, width)` — what [`run_features_into`]
    /// (ExecPlan::run_features_into) writes per batch item.
    pub fn feature_shape(&self) -> (usize, usize, usize) {
        (self.feat_c, self.final_hw.0, self.final_hw.1)
    }

    /// Runs only the layer steps (no pooling or classifier), writing
    /// the raw `[n, c, h, w]` feature map into `features` (shape from
    /// [`feature_shape`](ExecPlan::feature_shape)).  The full-chip
    /// scanner runs a prefix segment this way once per band and feeds
    /// the features to per-window suffix plans.  Same workspace
    /// discipline as [`run_into`](ExecPlan::run_into): zero heap
    /// allocations once warm.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the compiled shapes.
    pub fn run_features_into(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        features: &mut [f32],
    ) {
        self.run_features_impl(input, n, ws, features, false);
    }

    /// [`run_features_into`](ExecPlan::run_features_into) routed
    /// through the batched XNOR-GEMM tier (see [`run_batch_into`]
    /// (ExecPlan::run_batch_into)).  Bit-identical to the per-item
    /// path; the scanner uses this for multi-window suffix batches.
    ///
    /// # Panics
    ///
    /// Panics when a slice length disagrees with the compiled shapes.
    pub fn run_features_batch_into(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        features: &mut [f32],
    ) {
        self.run_features_impl(input, n, ws, features, true);
    }

    fn run_features_impl(
        &self,
        input: &[f32],
        n: usize,
        ws: &mut Workspace,
        features: &mut [f32],
        batched: bool,
    ) {
        let (h, w) = self.input_hw;
        assert_eq!(
            input.len(),
            n * self.input_c * h * w,
            "input length mismatch"
        );
        let (fc, fh, fw) = self.feature_shape();
        assert_eq!(
            features.len(),
            n * fc * fh * fw,
            "feature buffer length mismatch"
        );
        // Same working-set chunking as `run_batch_into`.
        let chunk = if batched {
            self.batch_chunk()
        } else {
            n.max(1)
        };
        if n > chunk {
            let item = self.input_c * h * w;
            for (inp, ft) in input
                .chunks(chunk * item)
                .zip(features.chunks_mut(chunk * fc * fh * fw))
            {
                self.run_features_impl(inp, inp.len() / item, ws, ft, batched);
            }
            return;
        }
        let mut bufs = [
            ws.take_f32(n * self.buf_elems[0]),
            ws.take_f32(n * self.buf_elems[1]),
            ws.take_f32(n * self.buf_elems[2]),
        ];
        self.exec_steps(input, n, ws, &mut bufs, &mut None, batched);
        features.copy_from_slice(&bufs[self.final_buf][..n * fc * fh * fw]);
        let [b0, b1, b2] = bufs;
        ws.give_f32(b0);
        ws.give_f32(b1);
        ws.give_f32(b2);
    }

    /// Whether any conv step of this plan carries a GEMM prep — i.e.
    /// whether [`run_batch_into`](ExecPlan::run_batch_into) actually
    /// engages the bit-sliced XNOR-GEMM tier for batches of 2+ (layers
    /// whose output is all border pixels compile without one).
    /// Benchmarks report this so throughput numbers name the tier that
    /// produced them.
    pub fn gemm_tier(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, Step::Conv { prep, .. } if prep.gemm_tier()))
    }

    /// Convenience wrapper: runs the plan on a `[n, c, h, w]` tensor
    /// and returns `[n, classes]` logits (allocates the result).
    pub fn run(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 4, "plan input must be NCHW");
        let n = x.shape()[0];
        assert_eq!(x.shape()[1], self.input_c, "channel mismatch");
        assert_eq!(
            (x.shape()[2], x.shape()[3]),
            self.input_hw,
            "plan compiled for a different input resolution"
        );
        let classes = self.model.fc_weight().shape()[0];
        let mut logits = vec![0.0f32; n * classes];
        self.run_into(x.as_slice(), n, ws, &mut logits);
        Tensor::from_vec(&[n, classes], logits)
    }
}

/// Disjoint (source, destination) views of two ping-pong buffers.
fn two_bufs(bufs: &mut [Vec<f32>; 3], src: usize, dst: usize) -> (&[f32], &mut [f32]) {
    assert_ne!(src, dst, "a step cannot read and write the same buffer");
    if src < dst {
        let (lo, hi) = bufs.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(src);
        (&hi[0], &mut lo[dst])
    }
}

impl PackedBnn {
    /// Compiles the model into an [`ExecPlan`] for clips of the given
    /// `(h, w)` input resolution, dispatching conv steps to the best
    /// kernel backend for this CPU (see
    /// [`active_backend`](crate::kernels::active_backend)).
    pub fn plan(&self, input_hw: (usize, usize)) -> ExecPlan<'_> {
        ExecPlan::compile(self, input_hw)
    }

    /// [`PackedBnn::plan`] pinned to an explicit kernel backend (all
    /// backends are bit-identical; used by equivalence tests and
    /// benchmarks).
    pub fn plan_with_backend(
        &self,
        input_hw: (usize, usize),
        backend: KernelBackend,
    ) -> ExecPlan<'_> {
        ExecPlan::compile_with_backend(self, input_hw, backend)
    }

    /// [`PackedBnn::plan`] with the executed residual level count
    /// capped at `max_levels` (clamped per conv to `1..=M`).  An
    /// M-level model capped at 1 runs — bit for bit — as the
    /// single-level model built from the same level-0 planes; this is
    /// the cascade's fast triage stage, and also how one trained model
    /// yields the whole accuracy-vs-throughput frontier.
    pub fn plan_capped(&self, input_hw: (usize, usize), max_levels: usize) -> ExecPlan<'_> {
        ExecPlan::compile_capped(self, input_hw, active_backend(), max_levels)
    }

    /// [`PackedBnn::plan_capped`] pinned to an explicit kernel backend.
    pub fn plan_capped_with_backend(
        &self,
        input_hw: (usize, usize),
        backend: KernelBackend,
        max_levels: usize,
    ) -> ExecPlan<'_> {
        ExecPlan::compile_capped(self, input_hw, backend, max_levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BnnResNet, NetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_packed(seed: u64) -> PackedBnn {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        PackedBnn::compile(&net)
    }

    fn pm_input(n: usize, side: usize, seed: u32) -> Vec<f32> {
        let mut state = seed;
        (0..n * side * side)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state & 0x10000 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    #[test]
    fn plan_matches_structural_forward_exactly() {
        let packed = tiny_packed(42);
        let input = pm_input(3, 16, 7);
        let x = Tensor::from_vec(&[3, 1, 16, 16], input.clone());
        let expect = packed.forward(&x);
        let plan = packed.plan((16, 16));
        let mut ws = Workspace::new();
        let mut logits = vec![0.0f32; 3 * 2];
        plan.run_into(&input, 3, &mut ws, &mut logits);
        assert_eq!(expect.as_slice(), &logits[..], "plan must be bit-identical");
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let packed = tiny_packed(9);
        let input = pm_input(2, 16, 3);
        let plan = packed.plan((16, 16));
        let mut ws = Workspace::new();
        let mut first = vec![0.0f32; 2 * 2];
        plan.run_into(&input, 2, &mut ws, &mut first);
        let mut second = vec![0.0f32; 2 * 2];
        plan.run_into(&input, 2, &mut ws, &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn plan_handles_varying_batch_sizes_with_one_workspace() {
        let packed = tiny_packed(5);
        let plan = packed.plan((16, 16));
        let mut ws = Workspace::new();
        for n in [1usize, 4, 2, 8, 1] {
            let input = pm_input(n, 16, n as u32);
            let mut logits = vec![0.0f32; n * 2];
            plan.run_into(&input, n, &mut ws, &mut logits);
            let x = Tensor::from_vec(&[n, 1, 16, 16], input);
            assert_eq!(packed.forward(&x).as_slice(), &logits[..], "n={n}");
        }
    }

    #[test]
    fn shared_plan_runs_from_multiple_threads() {
        let packed = tiny_packed(11);
        let plan = packed.plan((16, 16));
        let input = pm_input(2, 16, 1);
        let mut expect = vec![0.0f32; 2 * 2];
        plan.run_into(&input, 2, &mut Workspace::new(), &mut expect);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plan = &plan;
                let input = &input;
                let expect = &expect;
                scope.spawn(move || {
                    let mut ws = Workspace::new();
                    let mut logits = vec![0.0f32; 2 * 2];
                    plan.run_into(input, 2, &mut ws, &mut logits);
                    assert_eq!(&logits, expect);
                });
            }
        });
    }

    #[test]
    fn multilevel_plan_matches_structural_forward_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let packed = PackedBnn::compile(&net);
        let input = pm_input(3, 16, 13);
        let x = Tensor::from_vec(&[3, 1, 16, 16], input.clone());
        let expect = packed.forward(&x);
        let plan = packed.plan((16, 16));
        assert_eq!(plan.levels(), 2);
        let mut ws = Workspace::new();
        let mut logits = vec![0.0f32; 3 * 2];
        plan.run_into(&input, 3, &mut ws, &mut logits);
        assert_eq!(expect.as_slice(), &logits[..], "plan must be bit-identical");
    }

    #[test]
    fn capped_plan_runs_level_zero_only() {
        let mut rng = StdRng::seed_from_u64(88);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(3), &mut rng);
        let packed = PackedBnn::compile(&net);
        let full = packed.plan((16, 16));
        let capped = packed.plan_capped((16, 16), 1);
        assert_eq!(full.levels(), 3);
        assert_eq!(capped.levels(), 1);
        let input = pm_input(2, 16, 17);
        let mut ws = Workspace::new();
        let mut lo = vec![0.0f32; 2 * 2];
        let mut hi = vec![0.0f32; 2 * 2];
        capped.run_into(&input, 2, &mut ws, &mut lo);
        full.run_into(&input, 2, &mut ws, &mut hi);
        // Correction planes must actually change the logits; a capped
        // plan that silently ran all levels would make these equal.
        assert_ne!(lo, hi, "residual levels should perturb the logits");
    }

    #[test]
    fn step_count_covers_every_layer() {
        let packed = tiny_packed(1);
        let plan = packed.plan((16, 16));
        // Stem + per block: conv1 + conv2 + merge (+ projection).
        let min = 1 + packed.blocks().len() * 3;
        assert!(plan.step_count() >= min, "{} < {min}", plan.step_count());
        assert!(plan.buffer_elems().iter().all(|&e| e > 0));
    }

    #[test]
    fn profiled_run_is_bit_identical_and_covers_every_slot() {
        let packed = tiny_packed(21);
        let plan = packed.plan((16, 16));
        let input = pm_input(2, 16, 5);
        let mut ws = Workspace::new();
        let mut plain = vec![0.0f32; 2 * 2];
        plan.run_into(&input, 2, &mut ws, &mut plain);
        let mut prof = plan.profiler();
        let mut profiled = vec![0.0f32; 2 * 2];
        plan.run_into_profiled(&input, 2, &mut ws, &mut profiled, &mut prof);
        assert_eq!(plain, profiled, "profiling must not change the math");

        let report = prof.report();
        assert_eq!(report.len(), plan.step_count() + 2);
        assert!(report.iter().all(|s| s.calls == 1), "{report:?}");
        assert_eq!(report[0].name, "stem");
        assert_eq!(report[report.len() - 2].name, "gap");
        assert_eq!(report[report.len() - 1].name, "fc");
        assert!(report.iter().any(|s| s.name == "res1.conv1"));
        assert!(report.iter().any(|s| s.name == "res2.shortcut"));
        // A second profiled run doubles every call count.
        plan.run_into_profiled(&input, 2, &mut ws, &mut profiled, &mut prof);
        assert!(prof.report().iter().all(|s| s.calls == 2));
    }

    #[test]
    fn profiler_slots_cover_all_conv_layers_of_the_paper_net() {
        use crate::model::{BnnResNet, NetConfig};
        let mut rng = StdRng::seed_from_u64(12);
        let net = BnnResNet::new(&NetConfig::paper_12layer(), &mut rng);
        let packed = PackedBnn::compile(&net);
        let plan = packed.plan((128, 128));
        let names = plan.slot_names();
        // 11 binary conv layers (stem + 5 blocks × 2) + fc = the
        // paper's 12 weight layers, every one with its own slot.
        let convs = names
            .iter()
            .filter(|n| *n == "stem" || n.ends_with(".conv1") || n.ends_with(".conv2"))
            .count();
        assert_eq!(convs, 11, "{names:?}");
        assert!(names.contains(&"fc".to_string()));
    }

    #[test]
    #[should_panic(expected = "different plan")]
    fn mismatched_profiler_rejected() {
        let packed = tiny_packed(4);
        let plan = packed.plan((16, 16));
        let mut prof = hotspot_telemetry::SlotProfiler::new(vec!["only".into()]);
        let input = pm_input(1, 16, 2);
        let mut logits = vec![0.0f32; 2];
        plan.run_into_profiled(&input, 1, &mut Workspace::new(), &mut logits, &mut prof);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_rejected() {
        let packed = tiny_packed(2);
        let plan = packed.plan((16, 16));
        let mut logits = vec![0.0f32; 2];
        plan.run_into(&[0.0; 10], 1, &mut Workspace::new(), &mut logits);
    }
}
