//! Binarized residual neural networks for layout hotspot detection —
//! the core contribution of the DAC'19 paper this workspace reproduces.
//!
//! The crate provides both halves of a BNN system:
//!
//! * **Training path** (float-simulated binarization, exactly the
//!   paper's Algorithm 1): [`BinConv2d`] binarizes weights to
//!   `α_W · sign(W)` with `α_W = ‖W‖₁/n` and activations to
//!   `α_X ⊙ sign(X)` with the per-channel box-filtered scale of Eq. 14,
//!   runs a standard float convolution, and back-propagates through the
//!   `sign` with the straight-through estimator of Eq. 10–13.
//!   [`BnnBlock`] composes BatchNorm → Binarize → BinaryConv (Fig. 3),
//!   [`BinaryResidualBlock`] adds the shortcut connections, and
//!   [`BnnResNet`] assembles the paper's 12-layer network (Fig. 2).
//!
//! * **Inference path** (bit-packed): [`BitTensor`] packs ±1
//!   activations 64-per-word along the channel axis and
//!   [`xnor_conv2d`] evaluates binary convolution with XNOR +
//!   popcount — one word operation replaces 64 multiply–accumulates,
//!   which is where the paper's 8× speed-up over a float CNN comes
//!   from.  [`PackedBnn`] compiles a trained [`BnnResNet`] into this
//!   form.
//!
//! # Example
//!
//! ```
//! use hotspot_bnn::{BnnResNet, NetConfig};
//! use hotspot_nn::Layer;
//! use hotspot_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
//! let clip = Tensor::ones(&[1, 1, 16, 16]); // a binary layout clip
//! let logits = net.forward(&clip, false);
//! assert_eq!(logits.shape(), &[1, 2]);
//! ```

pub mod bitpack;
pub mod block;
pub mod hw;
pub mod kernels;
pub mod layer;
pub mod model;
pub mod packed;
pub mod plan;
pub mod scaling;
pub mod scan;
pub mod slot;
pub mod ste;
pub mod wire;

pub use bitpack::{
    exact_sign_rule, pack_affine_mean_into, pack_rules_into, pack_signs_into, BitFilter, BitTensor,
    SignRule,
};
pub use block::{BinaryResidualBlock, BnnBlock};
pub use hw::{dispatch_report, estimate_hardware, DispatchReport, HwConfig, HwEstimate};
pub use kernels::{active_backend, gemm_backend, ConvGeometry, KernelBackend, PopcountGemm};
pub use layer::BinConv2d;
pub use model::{BnnResNet, LayerSummary, NetConfig, MAX_LEVELS};
pub use packed::{
    xnor_conv2d, xnor_conv2d_backend, xnor_conv2d_into, xnor_conv2d_into_backend, ConvPrep,
    PackedBnn, PackedConv, PackedResidual, ACC_PLANES,
};
pub use plan::ExecPlan;
pub use scaling::{
    box_filter, box_filter_into, box_filter_sliding_into, input_scale_per_channel,
    input_scale_shared, output_scale_shared, output_scale_shared_into, residual_weight_levels,
    weight_scale, ScalingMode,
};
pub use scan::{merge_hits, scan_grid, Region, ScanConfig, ScanReport, Scanner, WindowVerdict};
pub use slot::ModelSlot;
pub use ste::{residual_binarize, sign_tensor, ste_grad};
