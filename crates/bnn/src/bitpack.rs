//! Bit-packed ±1 tensors for XNOR inference.
//!
//! Activations and weights are packed along the **channel** axis,
//! 64 channels per `u64` word, so the inner product over a receptive
//! field becomes, per kernel tap, a single `XOR` + `popcount` on each
//! channel word — this is the packing that turns 64 multiply–
//! accumulates into one word operation.

use hotspot_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A bit-packed ±1 activation tensor in NCHW semantics.
///
/// Bit `c % 64` of word `c / 64` at pixel `(n, y, x)` is `1` when the
/// source value was `≥ 0` (the `sign(0) = +1` convention).  Unused high
/// bits of the last channel word are zero in every pixel, which the
/// XNOR kernel relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTensor {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    words_per_pixel: usize,
    data: Vec<u64>,
}

impl BitTensor {
    /// Packs a float NCHW tensor by sign.
    ///
    /// # Panics
    ///
    /// Panics when `t` is not 4-D.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.ndim(), 4, "BitTensor packs NCHW tensors");
        let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
        let wpp = c.div_ceil(64);
        let mut data = vec![0u64; n * h * w * wpp];
        pack_signs_into(t.as_slice(), n, c, h, w, &mut data);
        BitTensor {
            n,
            c,
            h,
            w,
            words_per_pixel: wpp,
            data,
        }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Words per pixel (`ceil(c / 64)`).
    pub fn words_per_pixel(&self) -> usize {
        self.words_per_pixel
    }

    /// The packed channel words of pixel `(n, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn pixel_words(&self, n: usize, y: usize, x: usize) -> &[u64] {
        assert!(n < self.n && y < self.h && x < self.w, "pixel out of range");
        let base = ((n * self.h + y) * self.w + x) * self.words_per_pixel;
        &self.data[base..base + self.words_per_pixel]
    }

    /// The ±1 value of one element.
    pub fn value(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        assert!(c < self.c, "channel out of range");
        let word = self.pixel_words(n, y, x)[c / 64];
        if (word >> (c % 64)) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// The raw packed words, pixel-major: index
    /// `((n·h + y)·w + x)·words_per_pixel + word`.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Unpacks back to a ±1 float tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.n, self.c, self.h, self.w]);
        for ni in 0..self.n {
            for ci in 0..self.c {
                for y in 0..self.h {
                    for x in 0..self.w {
                        *out.at_mut(&[ni, ci, y, x]) = self.value(ni, ci, y, x);
                    }
                }
            }
        }
        out
    }
}

/// Packs the signs of an NCHW float slice into channel-packed pixel
/// words (the [`BitTensor`] layout) in a caller-provided buffer: bit
/// `c % 64` of word `c / 64` at pixel `(n, y, x)` is `1` when the value
/// is `≥ 0`.  Every word of `data` is overwritten, including the zero
/// padding bits above channel `c` that the XNOR kernel relies on, so a
/// reused scratch buffer needs no re-zeroing.
///
/// # Panics
///
/// Panics when either slice length disagrees with the dimensions.
pub fn pack_signs_into(src: &[f32], n: usize, c: usize, h: usize, w: usize, data: &mut [u64]) {
    let wpp = c.div_ceil(64);
    let plane = h * w;
    assert_eq!(src.len(), n * c * plane, "source length mismatch");
    assert_eq!(data.len(), n * plane * wpp, "packed buffer length mismatch");
    // Pixel-major packing: accumulate each pixel's channel word(s)
    // locally, touching the output buffer once per word.
    for ni in 0..n {
        let item = &src[ni * c * plane..(ni + 1) * c * plane];
        for p in 0..plane {
            let base = (ni * plane + p) * wpp;
            let mut word = 0u64;
            let mut word_idx = 0;
            for ci in 0..c {
                let bit = ci % 64;
                if item[ci * plane + p] >= 0.0 {
                    word |= 1u64 << bit;
                }
                if bit == 63 {
                    data[base + word_idx] = word;
                    word = 0;
                    word_idx += 1;
                }
            }
            if !c.is_multiple_of(64) {
                data[base + word_idx] = word;
            }
        }
    }
}

/// Bit-packed ±1 convolution weights `[k, c, kh, kw]`, channel-packed
/// to match [`BitTensor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitFilter {
    k: usize,
    c: usize,
    kh: usize,
    kw: usize,
    words_per_tap: usize,
    data: Vec<u64>,
}

impl BitFilter {
    /// Packs a float weight tensor by sign.
    ///
    /// # Panics
    ///
    /// Panics when `w` is not 4-D.
    pub fn from_tensor(w: &Tensor) -> Self {
        assert_eq!(w.ndim(), 4, "BitFilter packs [k, c, kh, kw] weights");
        let (k, c, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let wpt = c.div_ceil(64);
        let mut data = vec![0u64; k * kh * kw * wpt];
        let src = w.as_slice();
        for ki in 0..k {
            for ci in 0..c {
                let word = ci / 64;
                let bit = ci % 64;
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = src[((ki * c + ci) * kh + ky) * kw + kx];
                        if v >= 0.0 {
                            data[((ki * kh + ky) * kw + kx) * wpt + word] |= 1u64 << bit;
                        }
                    }
                }
            }
        }
        BitFilter {
            k,
            c,
            kh,
            kw,
            words_per_tap: wpt,
            data,
        }
    }

    /// Rebuilds a filter from its raw dimensions and packed words, as
    /// produced by [`BitFilter::as_words`]. Used by the wire codec.
    ///
    /// # Errors
    ///
    /// Returns a message when the word count does not match the
    /// dimensions or a padding bit above channel `c` is set (the XNOR
    /// kernel relies on zeroed padding bits).
    pub fn from_raw_parts(
        k: usize,
        c: usize,
        kh: usize,
        kw: usize,
        data: Vec<u64>,
    ) -> Result<Self, String> {
        if k == 0 || c == 0 || kh == 0 || kw == 0 {
            return Err(format!("degenerate filter dims [{k}, {c}, {kh}, {kw}]"));
        }
        let wpt = c.div_ceil(64);
        if data.len() != k * kh * kw * wpt {
            return Err(format!(
                "filter [{k}, {c}, {kh}, {kw}] needs {} words, got {}",
                k * kh * kw * wpt,
                data.len()
            ));
        }
        if !c.is_multiple_of(64) {
            let mask = !((1u64 << (c % 64)) - 1);
            if data.chunks_exact(wpt).any(|tap| tap[wpt - 1] & mask != 0) {
                return Err("padding bits above channel count are set".into());
            }
        }
        Ok(BitFilter {
            k,
            c,
            kh,
            kw,
            words_per_tap: wpt,
            data,
        })
    }

    /// Shape as `(k, c, kh, kw)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.kh, self.kw)
    }

    /// The packed channel words of tap `(k, ky, kx)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn tap_words(&self, k: usize, ky: usize, kx: usize) -> &[u64] {
        assert!(
            k < self.k && ky < self.kh && kx < self.kw,
            "tap out of range"
        );
        let base = ((k * self.kh + ky) * self.kw + kx) * self.words_per_tap;
        &self.data[base..base + self.words_per_tap]
    }

    /// Number of channels packed per tap.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// The raw packed words, tap-major: index
    /// `((k·kh + ky)·kw + kx)·words_per_tap + word`.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Words per tap (`ceil(c / 64)`).
    pub fn words_per_tap(&self) -> usize {
        self.words_per_tap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        // 70 channels crosses a word boundary.
        let mut t = Tensor::zeros(&[2, 70, 3, 3]);
        let mut state = 12345u32;
        for v in t.as_mut_slice() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 16) as f32 / 32768.0 - 1.0;
        }
        let packed = BitTensor::from_tensor(&t);
        assert_eq!(packed.words_per_pixel(), 2);
        let unpacked = packed.to_tensor();
        for (orig, bin) in t.as_slice().iter().zip(unpacked.as_slice()) {
            let expect = if *orig >= 0.0 { 1.0 } else { -1.0 };
            assert_eq!(*bin, expect);
        }
    }

    #[test]
    fn unused_bits_are_zero() {
        let t = Tensor::full(&[1, 3, 2, 2], 1.0); // 3 channels → 61 unused bits
        let packed = BitTensor::from_tensor(&t);
        for y in 0..2 {
            for x in 0..2 {
                let w = packed.pixel_words(0, y, x)[0];
                assert_eq!(w, 0b111, "only 3 low bits set, got {w:#b}");
            }
        }
    }

    #[test]
    fn sign_zero_packs_positive() {
        let t = Tensor::zeros(&[1, 1, 1, 1]);
        let packed = BitTensor::from_tensor(&t);
        assert_eq!(packed.value(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn filter_pack_matches_signs() {
        let w = Tensor::from_vec(&[1, 2, 1, 2], vec![0.5, -0.5, -0.1, 0.1]);
        let f = BitFilter::from_tensor(&w);
        assert_eq!(f.dims(), (1, 2, 1, 2));
        // Tap (0,0,0): channels [0.5, -0.1] → bits 0b01.
        assert_eq!(f.tap_words(0, 0, 0)[0], 0b01);
        // Tap (0,0,1): channels [-0.5, 0.1] → bits 0b10.
        assert_eq!(f.tap_words(0, 0, 1)[0], 0b10);
    }

    #[test]
    #[should_panic(expected = "pixel out of range")]
    fn pixel_bounds_checked() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        BitTensor::from_tensor(&t).pixel_words(0, 2, 0);
    }
}
