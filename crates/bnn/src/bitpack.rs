//! Bit-packed ±1 tensors for XNOR inference.
//!
//! Activations and weights are packed along the **channel** axis,
//! 64 channels per `u64` word, so the inner product over a receptive
//! field becomes, per kernel tap, a single `XOR` + `popcount` on each
//! channel word — this is the packing that turns 64 multiply–
//! accumulates into one word operation.

use hotspot_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A bit-packed ±1 activation tensor in NCHW semantics.
///
/// Bit `c % 64` of word `c / 64` at pixel `(n, y, x)` is `1` when the
/// source value was `≥ 0` (the `sign(0) = +1` convention).  Unused high
/// bits of the last channel word are zero in every pixel, which the
/// XNOR kernel relies on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTensor {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    words_per_pixel: usize,
    data: Vec<u64>,
}

impl BitTensor {
    /// Packs a float NCHW tensor by sign.
    ///
    /// # Panics
    ///
    /// Panics when `t` is not 4-D.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.ndim(), 4, "BitTensor packs NCHW tensors");
        let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
        let wpp = c.div_ceil(64);
        let mut data = vec![0u64; n * h * w * wpp];
        pack_signs_into(t.as_slice(), n, c, h, w, &mut data);
        BitTensor {
            n,
            c,
            h,
            w,
            words_per_pixel: wpp,
            data,
        }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Words per pixel (`ceil(c / 64)`).
    pub fn words_per_pixel(&self) -> usize {
        self.words_per_pixel
    }

    /// The packed channel words of pixel `(n, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn pixel_words(&self, n: usize, y: usize, x: usize) -> &[u64] {
        assert!(n < self.n && y < self.h && x < self.w, "pixel out of range");
        let base = ((n * self.h + y) * self.w + x) * self.words_per_pixel;
        &self.data[base..base + self.words_per_pixel]
    }

    /// The ±1 value of one element.
    pub fn value(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        assert!(c < self.c, "channel out of range");
        let word = self.pixel_words(n, y, x)[c / 64];
        if (word >> (c % 64)) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// The raw packed words, pixel-major: index
    /// `((n·h + y)·w + x)·words_per_pixel + word`.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Unpacks back to a ±1 float tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.n, self.c, self.h, self.w]);
        for ni in 0..self.n {
            for ci in 0..self.c {
                for y in 0..self.h {
                    for x in 0..self.w {
                        *out.at_mut(&[ni, ci, y, x]) = self.value(ni, ci, y, x);
                    }
                }
            }
        }
        out
    }
}

/// Packs the signs of an NCHW float slice into channel-packed pixel
/// words (the [`BitTensor`] layout) in a caller-provided buffer: bit
/// `c % 64` of word `c / 64` at pixel `(n, y, x)` is `1` when the value
/// is `≥ 0`.  Every word of `data` is overwritten, including the zero
/// padding bits above channel `c` that the XNOR kernel relies on, so a
/// reused scratch buffer needs no re-zeroing.
///
/// # Panics
///
/// Panics when either slice length disagrees with the dimensions.
pub fn pack_signs_into(src: &[f32], n: usize, c: usize, h: usize, w: usize, data: &mut [u64]) {
    let wpp = c.div_ceil(64);
    let plane = h * w;
    assert_eq!(src.len(), n * c * plane, "source length mismatch");
    assert_eq!(data.len(), n * plane * wpp, "packed buffer length mismatch");
    // Pixel-major packing: accumulate each pixel's channel word(s)
    // locally, touching the output buffer once per word.
    for ni in 0..n {
        let item = &src[ni * c * plane..(ni + 1) * c * plane];
        for p in 0..plane {
            let base = (ni * plane + p) * wpp;
            let mut word = 0u64;
            let mut word_idx = 0;
            for ci in 0..c {
                let bit = ci % 64;
                if item[ci * plane + p] >= 0.0 {
                    word |= 1u64 << bit;
                }
                if bit == 63 {
                    data[base + word_idx] = word;
                    word = 0;
                    word_idx += 1;
                }
            }
            if !c.is_multiple_of(64) {
                data[base + word_idx] = word;
            }
        }
    }
}

/// A per-channel binarization rule: which raw inputs pack to bit `1`.
///
/// [`exact_sign_rule`] folds a batch-norm affine `s·x + b` into one of
/// these so the packed path can binarize **raw** activations directly —
/// `rule.bit(x)` equals `s·x + b >= 0.0` bit-for-bit (in `f32`, for
/// every non-NaN finite-affine case) without ever materializing the
/// normalized tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignRule {
    /// Bit is `1` iff `x >= threshold` (positive scale).
    Ge(f32),
    /// Bit is `1` iff `x <= threshold` (negative scale).
    Le(f32),
    /// Bit is constant regardless of `x` (zero scale, or an affine
    /// whose sign never changes).
    Const(bool),
}

impl SignRule {
    /// Evaluates the rule on a raw activation.
    #[inline]
    pub fn bit(self, x: f32) -> bool {
        match self {
            SignRule::Ge(t) => x >= t,
            SignRule::Le(t) => x <= t,
            SignRule::Const(b) => b,
        }
    }
}

/// Maps an `f32` onto the order-preserving unsigned key line (negative
/// floats reversed below positive ones); inverse of [`f32_from_key`].
#[inline]
fn f32_key(x: f32) -> u32 {
    let b = x.to_bits();
    if b & 0x8000_0000 != 0 {
        !b
    } else {
        b | 0x8000_0000
    }
}

#[inline]
fn f32_from_key(k: u32) -> f32 {
    f32::from_bits(if k & 0x8000_0000 != 0 {
        k & 0x7fff_ffff
    } else {
        !k
    })
}

/// Derives the [`SignRule`] that reproduces `s·x + b >= 0.0` exactly.
///
/// Naively comparing `x` against `−b/s` is *not* bit-identical to the
/// `f32` affine (division rounds differently than the multiply–add
/// chain).  Instead this exploits that `x ↦ (s·x + b >= 0.0)` is
/// monotone in `x` for fixed `s, b` (IEEE multiply and add are
/// monotone), and binary-searches the ordered-key line of all non-NaN
/// `f32` values for the exact crossover.  The returned rule agrees with
/// the affine comparison for every non-NaN `x` (`Const` rules may
/// disagree only on NaN/infinite-affine corner cases, which the float
/// reference path never produces).
pub fn exact_sign_rule(scale: f32, shift: f32) -> SignRule {
    if scale.is_nan() || shift.is_nan() {
        return SignRule::Const(false); // affine is NaN for every x
    }
    if scale == 0.0 {
        return SignRule::Const(shift >= 0.0);
    }
    let pred = |x: f32| scale * x + shift >= 0.0;
    let p_neg = pred(f32::NEG_INFINITY);
    let p_pos = pred(f32::INFINITY);
    let key_neg_inf = f32_key(f32::NEG_INFINITY);
    let key_pos_inf = f32_key(f32::INFINITY);
    if scale > 0.0 {
        // pred is monotone non-decreasing along the key line.
        if p_neg {
            return SignRule::Const(true);
        }
        if !p_pos {
            return SignRule::Const(false);
        }
        let (mut lo, mut hi) = (key_neg_inf, key_pos_inf);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if pred(f32_from_key(mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        SignRule::Ge(f32_from_key(hi))
    } else {
        // pred is monotone non-increasing along the key line.
        if p_pos {
            return SignRule::Const(true);
        }
        if !p_neg {
            return SignRule::Const(false);
        }
        let (mut lo, mut hi) = (key_neg_inf, key_pos_inf);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if pred(f32_from_key(mid)) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SignRule::Le(f32_from_key(lo))
    }
}

/// Packs raw NCHW activations through per-channel [`SignRule`]s into
/// the [`BitTensor`] pixel-word layout — the fused binarize+pack used
/// by the `PlainSign` packed path (no `normed` buffer).  Every word of
/// `data` is overwritten, padding bits included.
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions or
/// `rules.len() != c`.
pub fn pack_rules_into(
    src: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    rules: &[SignRule],
    data: &mut [u64],
) {
    let wpp = c.div_ceil(64);
    let plane = h * w;
    assert_eq!(src.len(), n * c * plane, "source length mismatch");
    assert_eq!(data.len(), n * plane * wpp, "packed buffer length mismatch");
    assert_eq!(rules.len(), c, "one SignRule per channel");
    for ni in 0..n {
        let item = &src[ni * c * plane..(ni + 1) * c * plane];
        for p in 0..plane {
            let base = (ni * plane + p) * wpp;
            let mut word = 0u64;
            let mut word_idx = 0;
            for (ci, rule) in rules.iter().enumerate() {
                let bit = ci % 64;
                if rule.bit(item[ci * plane + p]) {
                    word |= 1u64 << bit;
                }
                if bit == 63 {
                    data[base + word_idx] = word;
                    word = 0;
                    word_idx += 1;
                }
            }
            if !c.is_multiple_of(64) {
                data[base + word_idx] = word;
            }
        }
    }
}

/// Fused pass for the scaled packed path, one batch item at a time:
/// applies the batch-norm affine `v = s·x + b`, packs `v >= 0.0` into
/// pixel words, and accumulates the `|v|` channel mean into `mean`
/// (`h·w`) — the `K = |T_in|·(1/c)` map the scale filter consumes —
/// without materializing the normalized tensor.  Every word of `data`
/// is overwritten.
///
/// The loop is channel-outer so each channel plane streams
/// sequentially through the cache (the input is channel-major;
/// pixel-outer iteration would stride by a whole plane per read).
/// Each pixel's mean still accumulates its channels in ascending
/// order, so the sums are bit-identical to the old materializing path.
///
/// # Panics
///
/// Panics when a slice length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn pack_affine_mean_into(
    item: &[f32],
    c: usize,
    h: usize,
    w: usize,
    scale: &[f32],
    shift: &[f32],
    data: &mut [u64],
    mean: &mut [f32],
) {
    let wpp = c.div_ceil(64);
    let plane = h * w;
    assert_eq!(item.len(), c * plane, "source length mismatch");
    assert_eq!(data.len(), plane * wpp, "packed buffer length mismatch");
    assert_eq!(mean.len(), plane, "mean buffer length mismatch");
    assert!(
        scale.len() == c && shift.len() == c,
        "one affine per channel"
    );
    data.fill(0);
    mean.fill(0.0);
    for ci in 0..c {
        let (s, b) = (scale[ci], shift[ci]);
        let bit = (ci % 64) as u32;
        let src = &item[ci * plane..(ci + 1) * plane];
        if wpp == 1 {
            for ((&x, word), m) in src.iter().zip(data.iter_mut()).zip(mean.iter_mut()) {
                let v = s * x + b;
                *word |= ((v >= 0.0) as u64) << bit;
                *m += v.abs();
            }
        } else {
            let words = data.iter_mut().skip(ci / 64).step_by(wpp);
            for ((&x, word), m) in src.iter().zip(words).zip(mean.iter_mut()) {
                let v = s * x + b;
                *word |= ((v >= 0.0) as u64) << bit;
                *m += v.abs();
            }
        }
    }
    let inv_c = 1.0 / c as f32;
    for m in mean.iter_mut() {
        *m *= inv_c;
    }
}

/// Bit-packed ±1 convolution weights `[k, c, kh, kw]`, channel-packed
/// to match [`BitTensor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitFilter {
    k: usize,
    c: usize,
    kh: usize,
    kw: usize,
    words_per_tap: usize,
    data: Vec<u64>,
}

impl BitFilter {
    /// Packs a float weight tensor by sign.
    ///
    /// # Panics
    ///
    /// Panics when `w` is not 4-D.
    pub fn from_tensor(w: &Tensor) -> Self {
        assert_eq!(w.ndim(), 4, "BitFilter packs [k, c, kh, kw] weights");
        let (k, c, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let wpt = c.div_ceil(64);
        let mut data = vec![0u64; k * kh * kw * wpt];
        let src = w.as_slice();
        for ki in 0..k {
            for ci in 0..c {
                let word = ci / 64;
                let bit = ci % 64;
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = src[((ki * c + ci) * kh + ky) * kw + kx];
                        if v >= 0.0 {
                            data[((ki * kh + ky) * kw + kx) * wpt + word] |= 1u64 << bit;
                        }
                    }
                }
            }
        }
        BitFilter {
            k,
            c,
            kh,
            kw,
            words_per_tap: wpt,
            data,
        }
    }

    /// Rebuilds a filter from its raw dimensions and packed words, as
    /// produced by [`BitFilter::as_words`]. Used by the wire codec.
    ///
    /// # Errors
    ///
    /// Returns a message when the word count does not match the
    /// dimensions or a padding bit above channel `c` is set (the XNOR
    /// kernel relies on zeroed padding bits).
    pub fn from_raw_parts(
        k: usize,
        c: usize,
        kh: usize,
        kw: usize,
        data: Vec<u64>,
    ) -> Result<Self, String> {
        if k == 0 || c == 0 || kh == 0 || kw == 0 {
            return Err(format!("degenerate filter dims [{k}, {c}, {kh}, {kw}]"));
        }
        let wpt = c.div_ceil(64);
        if data.len() != k * kh * kw * wpt {
            return Err(format!(
                "filter [{k}, {c}, {kh}, {kw}] needs {} words, got {}",
                k * kh * kw * wpt,
                data.len()
            ));
        }
        if !c.is_multiple_of(64) {
            let mask = !((1u64 << (c % 64)) - 1);
            if data.chunks_exact(wpt).any(|tap| tap[wpt - 1] & mask != 0) {
                return Err("padding bits above channel count are set".into());
            }
        }
        Ok(BitFilter {
            k,
            c,
            kh,
            kw,
            words_per_tap: wpt,
            data,
        })
    }

    /// Shape as `(k, c, kh, kw)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.kh, self.kw)
    }

    /// The packed channel words of tap `(k, ky, kx)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn tap_words(&self, k: usize, ky: usize, kx: usize) -> &[u64] {
        assert!(
            k < self.k && ky < self.kh && kx < self.kw,
            "tap out of range"
        );
        let base = ((k * self.kh + ky) * self.kw + kx) * self.words_per_tap;
        &self.data[base..base + self.words_per_tap]
    }

    /// Number of channels packed per tap.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// The raw packed words, tap-major: index
    /// `((k·kh + ky)·kw + kx)·words_per_tap + word`.
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Words per tap (`ceil(c / 64)`).
    pub fn words_per_tap(&self) -> usize {
        self.words_per_tap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        // 70 channels crosses a word boundary.
        let mut t = Tensor::zeros(&[2, 70, 3, 3]);
        let mut state = 12345u32;
        for v in t.as_mut_slice() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 16) as f32 / 32768.0 - 1.0;
        }
        let packed = BitTensor::from_tensor(&t);
        assert_eq!(packed.words_per_pixel(), 2);
        let unpacked = packed.to_tensor();
        for (orig, bin) in t.as_slice().iter().zip(unpacked.as_slice()) {
            let expect = if *orig >= 0.0 { 1.0 } else { -1.0 };
            assert_eq!(*bin, expect);
        }
    }

    #[test]
    fn unused_bits_are_zero() {
        let t = Tensor::full(&[1, 3, 2, 2], 1.0); // 3 channels → 61 unused bits
        let packed = BitTensor::from_tensor(&t);
        for y in 0..2 {
            for x in 0..2 {
                let w = packed.pixel_words(0, y, x)[0];
                assert_eq!(w, 0b111, "only 3 low bits set, got {w:#b}");
            }
        }
    }

    #[test]
    fn sign_zero_packs_positive() {
        let t = Tensor::zeros(&[1, 1, 1, 1]);
        let packed = BitTensor::from_tensor(&t);
        assert_eq!(packed.value(0, 0, 0, 0), 1.0);
    }

    #[test]
    fn filter_pack_matches_signs() {
        let w = Tensor::from_vec(&[1, 2, 1, 2], vec![0.5, -0.5, -0.1, 0.1]);
        let f = BitFilter::from_tensor(&w);
        assert_eq!(f.dims(), (1, 2, 1, 2));
        // Tap (0,0,0): channels [0.5, -0.1] → bits 0b01.
        assert_eq!(f.tap_words(0, 0, 0)[0], 0b01);
        // Tap (0,0,1): channels [-0.5, 0.1] → bits 0b10.
        assert_eq!(f.tap_words(0, 0, 1)[0], 0b10);
    }

    #[test]
    #[should_panic(expected = "pixel out of range")]
    fn pixel_bounds_checked() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        BitTensor::from_tensor(&t).pixel_words(0, 2, 0);
    }

    /// Steps an f32 to its successor/predecessor on the key line.
    fn nudge(x: f32, up: bool) -> f32 {
        let k = f32_key(x);
        f32_from_key(if up { k + 1 } else { k - 1 })
    }

    #[test]
    fn exact_sign_rule_matches_affine_at_boundaries() {
        let scales = [2.5f32, -1.75, 0.3, -0.0001, 1e-30, -1e30, 0.0, -0.0];
        let shifts = [0.0f32, -0.0, 1.0, -1.0, 0.37, -12345.678, 1e-38, -3e38];
        let probes = [
            0.0f32, -0.0, 1.0, -1.0, 0.5, -0.5, 1e30, -1e30, 3.4e38, -3.4e38,
        ];
        for &s in &scales {
            for &b in &shifts {
                let rule = exact_sign_rule(s, b);
                let check = |x: f32| {
                    assert_eq!(
                        rule.bit(x),
                        s * x + b >= 0.0,
                        "s={s} b={b} x={x} rule={rule:?}"
                    );
                };
                for &x in &probes {
                    check(x);
                    check(nudge(x, true));
                    check(nudge(x, false));
                }
                // Probe around the rule's own threshold too.
                if let SignRule::Ge(t) | SignRule::Le(t) = rule {
                    check(t);
                    check(nudge(t, true));
                    check(nudge(t, false));
                }
            }
        }
    }

    #[test]
    fn pack_rules_matches_pack_signs_on_normed_data() {
        // 70 channels crosses the word boundary.
        let (n, c, h, w) = (2usize, 70usize, 3usize, 2usize);
        let plane = h * w;
        let mut raw = vec![0.0f32; n * c * plane];
        let mut state = 99u32;
        for v in raw.iter_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 16) as f32 / 16384.0 - 2.0;
        }
        let scale: Vec<f32> = (0..c).map(|i| (i as f32 - 35.0) * 0.11).collect();
        let shift: Vec<f32> = (0..c).map(|i| 0.5 - i as f32 * 0.017).collect();
        // Reference: materialize the affine, pack by sign.
        let mut normed = raw.clone();
        for ni in 0..n {
            for ci in 0..c {
                for p in 0..plane {
                    let i = (ni * c + ci) * plane + p;
                    normed[i] = scale[ci] * raw[i] + shift[ci];
                }
            }
        }
        let wpp = c.div_ceil(64);
        let mut expect = vec![0u64; n * plane * wpp];
        pack_signs_into(&normed, n, c, h, w, &mut expect);
        // Fused: rules over raw data.
        let rules: Vec<SignRule> = scale
            .iter()
            .zip(&shift)
            .map(|(&s, &b)| exact_sign_rule(s, b))
            .collect();
        let mut got = vec![!0u64; n * plane * wpp]; // dirty buffer
        pack_rules_into(&raw, n, c, h, w, &rules, &mut got);
        assert_eq!(got, expect);
        // Fused affine+mean pass agrees as well.
        let mut got2 = vec![!0u64; plane * wpp];
        let mut mean = vec![0.0f32; plane];
        pack_affine_mean_into(
            &raw[..c * plane],
            c,
            h,
            w,
            &scale,
            &shift,
            &mut got2,
            &mut mean,
        );
        assert_eq!(got2, expect[..plane * wpp]);
        for (p, &m) in mean.iter().enumerate() {
            let want: f32 =
                (0..c).map(|ci| normed[ci * plane + p].abs()).sum::<f32>() * (1.0 / c as f32);
            assert_eq!(m, want, "mean at {p}");
        }
    }
}
