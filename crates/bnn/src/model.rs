//! The paper's 12-layer binarized residual network (Fig. 2).

use crate::block::{BinaryResidualBlock, BnnBlock};
use crate::scaling::ScalingMode;
use hotspot_nn::{Dense, GlobalAvgPool, Layer, Param};
use hotspot_tensor::Tensor;
use rand::Rng;

/// Upper bound on residual binarization levels `M` accepted by
/// [`NetConfig::check`].  The packed engine sizes fixed per-level
/// scratch (border accumulators, level tables) against this bound.
pub const MAX_LEVELS: usize = 8;

/// Architecture description for [`BnnResNet`].
///
/// The paper derives its network from ResNet-18 by replacing float
/// convolutions with binary convolution blocks, then shrinking to 12
/// layers and re-tuning filter counts ("the deeper a layer is, the more
/// filters it contains; keep as few filters as possible").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Input image side length `l_s` (the paper settles on 128).
    pub input_size: usize,
    /// Filters in the stem convolution block.
    pub stem_filters: usize,
    /// One `(filters, stride)` entry per residual block.
    pub stages: Vec<(usize, usize)>,
    /// Binarization scaling mode (the paper's default is per-channel).
    pub scaling: ScalingMode,
    /// Residual binarization levels `M` per weight tensor (ReBNet-style
    /// residual-of-residual binarization; 1 = the classic single-bit
    /// network, bit-for-bit).
    pub levels: usize,
}

impl NetConfig {
    /// The paper's 12-layer configuration: one stem binary convolution,
    /// five residual blocks (2 binary convolutions each), and a final
    /// dense classifier — 11 convolution layers + 1 fully connected =
    /// 12 weight layers, with filter counts growing with depth.
    pub fn paper_12layer() -> Self {
        NetConfig {
            input_size: 128,
            stem_filters: 8,
            stages: vec![(8, 1), (16, 2), (32, 2), (64, 2), (64, 2)],
            scaling: ScalingMode::PerChannel,
            levels: 1,
        }
    }

    /// A reduced configuration for fast tests and laptop-scale
    /// benchmark runs: same topology shape, fewer filters, smaller
    /// input.
    pub fn tiny(input_size: usize) -> Self {
        NetConfig {
            input_size,
            stem_filters: 4,
            stages: vec![(4, 1), (8, 2)],
            scaling: ScalingMode::PerChannel,
            levels: 1,
        }
    }

    /// Returns the configuration with `levels` residual binarization
    /// levels per weight tensor (builder-style).
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Number of weight layers (binary convolutions + the final dense).
    pub fn layer_count(&self) -> usize {
        // Stem + 2 per residual block + projection shortcuts are
        // conventionally not counted (as in ResNet) + final dense.
        1 + 2 * self.stages.len() + 1
    }

    /// Checks internal consistency, returning a description of the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns a message when the input size does not survive the stage
    /// strides or any count is zero.
    pub fn check(&self) -> Result<(), String> {
        if self.input_size == 0 || self.stem_filters == 0 || self.stages.is_empty() {
            return Err("input size, stem filters, and stages must all be non-empty".into());
        }
        if self.levels == 0 || self.levels > MAX_LEVELS {
            return Err(format!(
                "residual binarization levels must be in 1..={MAX_LEVELS}, got {}",
                self.levels
            ));
        }
        let mut size = self.input_size;
        for &(f, s) in &self.stages {
            if f == 0 || s == 0 {
                return Err("stage filters and stride must be positive".into());
            }
            if !size.is_multiple_of(s) {
                return Err(format!(
                    "stride {s} does not divide feature map size {size}"
                ));
            }
            size /= s;
            if size == 0 {
                return Err("feature map shrank to zero".into());
            }
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the input size does not survive the stage strides or
    /// any count is zero (see [`check`](NetConfig::check) for the
    /// non-panicking variant).
    pub fn validate(&self) {
        if let Err(m) = self.check() {
            panic!("{m}");
        }
    }
}

/// Per-layer description produced by [`BnnResNet::summary`], used to
/// reproduce the architecture table of Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSummary {
    /// Layer name, e.g. `"res2.conv1"`.
    pub name: String,
    /// Output shape `[c, h, w]` (or `[features]` for the classifier).
    pub output_shape: Vec<usize>,
    /// Trainable scalar parameters.
    pub params: usize,
    /// Binary (XNOR + popcount) multiply–accumulate operations for one
    /// input, zero for float layers.
    pub binary_ops: u64,
    /// Float multiply–accumulate operations for one input.
    pub float_ops: u64,
}

/// The binarized residual network of the DAC'19 paper.
///
/// Topology: stem [`BnnBlock`] → [`BinaryResidualBlock`]s → global
/// average pooling → full-precision dense classifier (2 logits).
pub struct BnnResNet {
    config: NetConfig,
    stem: BnnBlock,
    blocks: Vec<BinaryResidualBlock>,
    gap: GlobalAvgPool,
    fc: Dense,
}

impl BnnResNet {
    /// Builds the network with Xavier-initialised master weights.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent (see
    /// [`NetConfig::validate`]).
    pub fn new<R: Rng>(config: &NetConfig, rng: &mut R) -> Self {
        config.validate();
        let mut stem = BnnBlock::new(1, config.stem_filters, 3, 1, 1, config.scaling, rng);
        stem.set_levels(config.levels);
        let mut blocks = Vec::new();
        let mut channels = config.stem_filters;
        for &(filters, stride) in &config.stages {
            let mut block =
                BinaryResidualBlock::new(channels, filters, stride, config.scaling, rng);
            block.set_levels(config.levels);
            blocks.push(block);
            channels = filters;
        }
        let fc = Dense::new(channels, 2, rng);
        BnnResNet {
            config: config.clone(),
            stem,
            blocks,
            gap: GlobalAvgPool::new(),
            fc,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The stem block.
    pub fn stem(&self) -> &BnnBlock {
        &self.stem
    }

    /// The residual blocks.
    pub fn blocks(&self) -> &[BinaryResidualBlock] {
        &self.blocks
    }

    /// The final classifier's weight tensor (`[2, channels]`).
    pub fn fc_weight(&self) -> &Tensor {
        &self.fc.weight().value
    }

    /// The final classifier's bias tensor (`[2]`).
    pub fn fc_bias(&self) -> &Tensor {
        &self.fc.bias().value
    }

    /// Per-layer summary for the architecture printout (Fig. 2
    /// reproduction): names, output shapes, parameter counts, and
    /// binary/float operation counts per input clip.
    pub fn summary(&self) -> Vec<LayerSummary> {
        let mut rows = Vec::new();
        let mut size = self.config.input_size;
        let mut channels = 1usize;

        let conv_row =
            |name: &str, cin: usize, cout: usize, k: usize, out_size: usize| -> LayerSummary {
                let macs = (cin * k * k * cout) as u64 * (out_size * out_size) as u64;
                LayerSummary {
                    name: name.to_string(),
                    output_shape: vec![cout, out_size, out_size],
                    // BN gamma/beta + binary conv weights.
                    params: 2 * cin + cout * cin * k * k,
                    binary_ops: macs,
                    float_ops: 0,
                }
            };

        rows.push(conv_row(
            "stem",
            channels,
            self.config.stem_filters,
            3,
            size,
        ));
        channels = self.config.stem_filters;
        for (i, &(filters, stride)) in self.config.stages.iter().enumerate() {
            let out_size = size / stride;
            rows.push(conv_row(
                &format!("res{}.conv1", i + 1),
                channels,
                filters,
                3,
                out_size,
            ));
            rows.push(conv_row(
                &format!("res{}.conv2", i + 1),
                filters,
                filters,
                3,
                out_size,
            ));
            if stride != 1 || channels != filters {
                rows.push(conv_row(
                    &format!("res{}.shortcut", i + 1),
                    channels,
                    filters,
                    1,
                    out_size,
                ));
            }
            channels = filters;
            size = out_size;
        }
        rows.push(LayerSummary {
            name: "gap".into(),
            output_shape: vec![channels],
            params: 0,
            binary_ops: 0,
            float_ops: (channels * size * size) as u64,
        });
        rows.push(LayerSummary {
            name: "fc".into(),
            output_shape: vec![2],
            params: channels * 2 + 2,
            binary_ops: 0,
            float_ops: (channels * 2) as u64,
        });
        rows
    }
}

impl Layer for BnnResNet {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = self.stem.forward(input, training);
        for b in &mut self.blocks {
            x = b.forward(&x, training);
        }
        let pooled = self.gap.forward(&x, training);
        self.fc.forward(&pooled, training)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.fc.backward(grad_out);
        let mut g = self.gap.backward(&g);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        self.stem.backward(&g)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.for_each_param(f);
        for b in &mut self.blocks {
            b.for_each_param(f);
        }
        self.fc.for_each_param(f);
    }

    fn for_each_state(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.stem.for_each_state(f);
        for b in &mut self.blocks {
            b.for_each_state(f);
        }
        self.fc.for_each_state(f);
    }

    fn describe(&self) -> String {
        format!(
            "BnnResNet(input {0}x{0}, {1} weight layers)",
            self.config.input_size,
            self.config.layer_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_is_12_layers() {
        let cfg = NetConfig::paper_12layer();
        cfg.validate();
        assert_eq!(cfg.layer_count(), 12);
        assert_eq!(cfg.input_size, 128);
        // Filter counts grow with depth.
        let filters: Vec<usize> = cfg.stages.iter().map(|&(f, _)| f).collect();
        assert!(filters.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn forward_backward_shapes_tiny() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let x = Tensor::ones(&[2, 1, 16, 16]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2]);
        let g = net.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn forward_paper_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = BnnResNet::new(&NetConfig::paper_12layer(), &mut rng);
        let x = Tensor::ones(&[1, 1, 128, 128]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
    }

    #[test]
    fn summary_counts_match_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let summary = net.summary();
        let total: usize = summary.iter().map(|r| r.params).sum();
        assert_eq!(total, net.param_count());
        // Binary ops dominate float ops in this architecture.
        let bin: u64 = summary.iter().map(|r| r.binary_ops).sum();
        let fl: u64 = summary.iter().map(|r| r.float_ops).sum();
        assert!(bin > 10 * fl, "binary {bin} vs float {fl}");
    }

    #[test]
    fn summary_names_cover_topology() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = BnnResNet::new(&NetConfig::paper_12layer(), &mut rng);
        let names: Vec<String> = net.summary().into_iter().map(|r| r.name).collect();
        assert!(names.contains(&"stem".to_string()));
        assert!(names.contains(&"res5.conv2".to_string()));
        assert!(names.contains(&"res2.shortcut".to_string()));
        assert!(names.contains(&"fc".to_string()));
        // Stage 1 keeps shape: no shortcut projection.
        assert!(!names.contains(&"res1.shortcut".to_string()));
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn invalid_stride_rejected() {
        NetConfig {
            input_size: 9,
            stem_filters: 4,
            stages: vec![(8, 2)],
            scaling: ScalingMode::PerChannel,
            levels: 1,
        }
        .validate();
    }

    #[test]
    fn levels_validated_and_propagated() {
        assert!(NetConfig::tiny(16).with_levels(0).check().is_err());
        assert!(NetConfig::tiny(16).with_levels(9).check().is_err());
        let cfg = NetConfig::tiny(16).with_levels(2);
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(6);
        let net = BnnResNet::new(&cfg, &mut rng);
        assert_eq!(net.stem().conv().levels(), 2);
        for b in net.blocks() {
            let (b1, b2) = b.main_path();
            assert_eq!(b1.conv().levels(), 2);
            assert_eq!(b2.conv().levels(), 2);
            if let Some(s) = b.projection() {
                assert_eq!(s.conv().levels(), 2);
            }
        }
    }

    #[test]
    fn training_step_changes_weights() {
        use hotspot_nn::{NAdam, Optimizer, SoftmaxCrossEntropy};
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = BnnResNet::new(&NetConfig::tiny(8), &mut rng);
        // A constant input would be normalized to exactly zero by the
        // stem batch-norm, zeroing the activation scale and with it
        // every gradient; use a varied input.
        let mut x = Tensor::ones(&[2, 1, 8, 8]);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = if (i / 3) % 2 == 0 { 1.0 } else { -1.0 };
        }
        let loss = SoftmaxCrossEntropy::new();
        let mut before = Vec::new();
        net.for_each_param(&mut |p| before.extend_from_slice(p.value.as_slice()));
        let mut opt = NAdam::new(0.01);
        net.zero_grads();
        let logits = net.forward(&x, true);
        let (_, g) = loss.forward(&logits, &[0, 1]);
        let _ = net.backward(&g);
        opt.step(&mut net);
        let mut after = Vec::new();
        net.for_each_param(&mut |p| after.extend_from_slice(p.value.as_slice()));
        assert_ne!(before, after);
    }
}
