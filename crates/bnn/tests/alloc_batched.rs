//! Allocation regression test for the batched XNOR-GEMM tier.
//!
//! Same contract as `alloc_steady_state.rs`, for the batched
//! entry point: after one warm-up, `ExecPlan::run_batch_into` performs
//! **zero** heap allocations — the GEMM B tile, the popcount
//! accumulator block, and every staging buffer come from the
//! [`Workspace`] arena.  The dense im2row repack and the per-tile
//! epilogue are the parts most tempted to allocate (per-tile scratch,
//! per-level vectors), so this test guards the new tier specifically.
//!
//! The file intentionally holds a single `#[test]`: the counter is
//! process-global, and a sibling test allocating on another thread
//! while the measured window is open would produce false positives.

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Wraps the system allocator and counts every allocation made while
/// the measurement window is open (see `alloc_steady_state.rs`).
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_batched_forward_performs_zero_heap_allocations() {
    // M = 2 so the extra residual level reuses the packed B tiles —
    // the level loop is the likeliest place for a per-level temporary.
    let mut rng = StdRng::seed_from_u64(11);
    let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
    let packed = PackedBnn::compile(&net);
    let plan = packed.plan((16, 16));
    assert!(
        plan.gemm_tier(),
        "test net must compile with a GEMM tier or this guards nothing"
    );

    let n = 8;
    let mut state = 0xba7c_u32;
    let input: Vec<f32> = (0..n * 16 * 16)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let mut logits = vec![0.0f32; n * 2];

    // Warm-up: grows the workspace pool to its steady-state footprint.
    let mut ws = Workspace::new();
    plan.run_batch_into(&input, n, &mut ws, &mut logits);
    let warm = logits.clone();

    // Measured window: the second batched forward, warm workspace.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    plan.run_batch_into(&input, n, &mut ws, &mut logits);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state batched forward allocated {allocs} time(s); \
         the GEMM tier must draw B tiles and accumulators from the \
         workspace only"
    );
    assert_eq!(logits, warm, "the warm run must stay bit-identical");

    // The batched path must also interleave cleanly with the per-item
    // path on the same workspace without re-growing it.
    plan.run_into(&input, n, &mut ws, &mut logits);
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    plan.run_batch_into(&input, n, &mut ws, &mut logits);
    plan.run_into(&input, n, &mut ws, &mut logits);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "alternating batched/per-item forwards allocated {allocs} \
         time(s) on a warm workspace"
    );
    assert_eq!(logits, warm);
}
