//! Allocation regression test for the workspace-backed inference path.
//!
//! The contract from the execution-plan design (see DESIGN.md): after
//! one warm-up forward has grown the [`Workspace`] to its steady-state
//! footprint, every subsequent `ExecPlan::run_into` call performs
//! **zero** heap allocations.  This test enforces that with a counting
//! global allocator, so a future change that sneaks a `Vec::new` or a
//! `Tensor` temporary into the hot path fails CI instead of silently
//! regressing throughput.
//!
//! The file intentionally holds a single `#[test]`: the counter is
//! process-global, and a sibling test allocating on another thread
//! while the measured window is open would produce false positives.

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_tensor::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Wraps the system allocator and counts every allocation made while
/// the measurement window is open.  Deallocations are not counted:
/// freeing is fine in a steady state, allocating is not (and the plan
/// path does neither).
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_plan_forward_performs_zero_heap_allocations() {
    let mut rng = StdRng::seed_from_u64(7);
    let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
    let packed = PackedBnn::compile(&net);
    let plan = packed.plan((16, 16));

    let n = 3;
    let mut state = 0x5eed_u32;
    let input: Vec<f32> = (0..n * 16 * 16)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    let mut logits = vec![0.0f32; n * 2];

    // Warm-up: grows the workspace pool to its steady-state footprint.
    let mut ws = Workspace::new();
    plan.run_into(&input, n, &mut ws, &mut logits);
    let warm = logits.clone();

    // Measured window: the second forward through the warm workspace.
    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    plan.run_into(&input, n, &mut ws, &mut logits);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state plan forward allocated {allocs} time(s); \
         the warm path must reuse workspace buffers only"
    );
    // And the answer is still right (identical to the warm-up run).
    assert_eq!(logits, warm);

    // Working-set shape (DESIGN.md §5f): the fused binarize-pack path
    // removed the full-resolution `normed` f32 staging buffer, so a
    // scaled conv step now holds at most five f32 buffers at once —
    // the three plan ping-pong buffers plus the scale map and the
    // per-pixel channel mean.  The old path needed a sixth.  Pinning
    // the pool shape here catches that buffer (or any new staging
    // temporary) sneaking back into the hot path.
    let [f32s, i32s, u64s, f64s] = ws.pooled_buffer_counts();
    assert!(
        f32s <= 5,
        "expected at most 5 pooled f32 buffers (plan b0/b1/b2 + scale \
         map + channel mean), got {f32s}"
    );
    assert!(i32s <= 1, "one popcount accumulator block, got {i32s}");
    assert!(u64s <= 1, "one packed-words buffer, got {u64s}");
    assert!(
        f64s <= 1,
        "one sliding-filter column-sum buffer, got {f64s}"
    );

    // Telemetry contract (DESIGN.md §5e): a warm profiled forward also
    // allocates nothing — SlotProfiler::record_since is plain u64
    // arithmetic into preallocated slot arrays, and the clock is a
    // monotonic counter read.  The profiler itself allocates at build
    // time, outside the measured window.
    let mut prof = plan.profiler();
    plan.run_into_profiled(&input, n, &mut ws, &mut logits, &mut prof);

    ALLOC_CALLS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    plan.run_into_profiled(&input, n, &mut ws, &mut logits, &mut prof);
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOC_CALLS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "warm profiled forward allocated {allocs} time(s); \
         per-layer timing must stay allocation-free"
    );
    assert_eq!(logits, warm, "profiling must not change the math");
    assert!(prof.report().iter().all(|s| s.calls == 2));
}
