//! Property-based tests for the binarization machinery.

use hotspot_bnn::{
    exact_sign_rule, input_scale_per_channel, output_scale_shared, sign_tensor, ste_grad,
    weight_scale, xnor_conv2d, xnor_conv2d_backend, BinaryResidualBlock, BitFilter, BitTensor,
    BnnResNet, KernelBackend, NetConfig, PackedBnn, PackedConv, ScalingMode,
};
use hotspot_nn::Layer;
use hotspot_tensor::{conv2d, Tensor, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_tensor(shape: &'static [usize]) -> impl Strategy<Value = Tensor> {
    let numel: usize = shape.iter().product();
    prop::collection::vec(-2.0f32..2.0, numel).prop_map(move |v| Tensor::from_vec(shape, v))
}

proptest! {
    /// sign() produces exactly ±1 and is idempotent.
    #[test]
    fn sign_is_idempotent(x in arb_tensor(&[64])) {
        let s = sign_tensor(&x);
        prop_assert!(s.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        prop_assert_eq!(sign_tensor(&s), s);
    }

    /// Bit-packing is the identity on ±1 data: pack(unpack(pack(x))) ==
    /// pack(x), and unpack(pack(x)) == sign(x).
    #[test]
    fn bitpack_round_trip(x in arb_tensor(&[2, 5, 4, 4])) {
        let packed = BitTensor::from_tensor(&x);
        let unpacked = packed.to_tensor();
        prop_assert_eq!(&unpacked, &sign_tensor(&x));
        prop_assert_eq!(BitTensor::from_tensor(&unpacked), packed);
    }

    /// The XNOR kernel equals the float convolution of sign tensors,
    /// for random strides and paddings.
    #[test]
    fn xnor_equals_float_sign_conv(
        x in arb_tensor(&[1, 5, 6, 6]),
        w in arb_tensor(&[3, 5, 3, 3]),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let expect = conv2d(&sign_tensor(&x), &sign_tensor(&w), None, stride, pad);
        let got = xnor_conv2d(
            &BitTensor::from_tensor(&x),
            &BitFilter::from_tensor(&w),
            stride,
            pad,
        );
        prop_assert_eq!(got.shape(), expect.shape());
        for (a, b) in got.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    /// The STE never amplifies a gradient and kills it outside (−1, 1).
    #[test]
    fn ste_is_a_contraction(x in arb_tensor(&[32]), g in arb_tensor(&[32])) {
        let out = ste_grad(&x, &g);
        for ((&xi, &gi), &oi) in x.as_slice().iter().zip(g.as_slice()).zip(out.as_slice()) {
            if xi.abs() < 1.0 {
                prop_assert_eq!(oi, gi);
            } else {
                prop_assert_eq!(oi, 0.0);
            }
        }
        prop_assert!(out.l1_norm() <= g.l1_norm() + 1e-6);
    }

    /// Weight scales are the per-filter mean |w|: non-negative, and
    /// scaling the weights scales them linearly.
    #[test]
    fn weight_scale_homogeneous(w in arb_tensor(&[4, 2, 3, 3]), s in 0.1f32..4.0) {
        let a = weight_scale(&w);
        prop_assert!(a.iter().all(|&v| v >= 0.0));
        let scaled = &w * s;
        let b = weight_scale(&scaled);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((s * x - y).abs() < 1e-4);
        }
    }

    /// Scale maps are non-negative and bounded by max |x|.
    #[test]
    fn scale_maps_bounded(x in arb_tensor(&[1, 3, 6, 6])) {
        let max_abs = x.as_slice().iter().map(|v| v.abs()).fold(0.0f32, f32::max);
        let pc = input_scale_per_channel(&x, 3, 3);
        prop_assert!(pc.as_slice().iter().all(|&v| v >= 0.0 && v <= max_abs + 1e-5));
        let sh = output_scale_shared(&x, 3, 1, 1);
        prop_assert_eq!(sh.shape(), &[1, 6, 6]);
        prop_assert!(sh.as_slice().iter().all(|&v| v >= 0.0 && v <= max_abs + 1e-5));
    }

    /// Workspace reuse never changes results: running a compiled plan
    /// twice through one (dirty) workspace is bit-identical to a
    /// fresh-workspace run and to the structural packed forward, for
    /// random networks and inputs.
    #[test]
    fn plan_reuse_is_bit_identical(seed in 0u64..30, n in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let packed = PackedBnn::compile(&net);
        let plan = packed.plan((16, 16));
        let mut state = seed as u32 ^ 0xdead_beef;
        let input: Vec<f32> = (0..n * 16 * 16).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 { 1.0 } else { -1.0 }
        }).collect();
        let mut ws = Workspace::new();
        let mut first = vec![0.0f32; n * 2];
        plan.run_into(&input, n, &mut ws, &mut first);
        let mut second = vec![0.0f32; n * 2];
        plan.run_into(&input, n, &mut ws, &mut second);
        prop_assert_eq!(&first, &second);
        let mut fresh = vec![0.0f32; n * 2];
        plan.run_into(&input, n, &mut Workspace::new(), &mut fresh);
        prop_assert_eq!(&first, &fresh);
        let x = Tensor::from_vec(&[n, 1, 16, 16], input);
        prop_assert_eq!(packed.forward(&x).as_slice(), &first[..]);
    }

    /// Every compiled-in kernel backend produces **bit-identical**
    /// XNOR conv outputs to the scalar reference, across random
    /// shapes, strides, pads, and channel counts that cross the 64-bit
    /// word boundary (including the `c = 1` stem and 1×1 shortcut
    /// convolutions).  Popcounts are integer arithmetic, so equality
    /// is exact — no tolerance.
    #[test]
    fn kernel_backends_bit_identical(
        seed in 0u64..1000,
        c_idx in 0usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let c = [1usize, 3, 5, 63, 64, 65, 127, 130][c_idx];
        let (h, w) = (6usize, 7usize); // always >= k, so every case is valid
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut pm1 = |len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 == 0 { 1.0 } else { -1.0 }
                })
                .collect()
        };
        let x = Tensor::from_vec(&[2, c, h, w], pm1(2 * c * h * w));
        let wt = Tensor::from_vec(&[3, c, k, k], pm1(3 * c * k * k));
        let bx = BitTensor::from_tensor(&x);
        let bw = BitFilter::from_tensor(&wt);
        let reference = xnor_conv2d_backend(KernelBackend::Scalar, &bx, &bw, stride, pad);
        for backend in KernelBackend::available() {
            let got = xnor_conv2d_backend(backend, &bx, &bw, stride, pad);
            prop_assert_eq!(got.shape(), reference.shape());
            prop_assert_eq!(
                got.as_slice(), reference.as_slice(),
                "backend {} diverged from scalar (c={}, k={}, s={}, p={})",
                backend.name(), c, k, stride, pad
            );
        }
    }

    /// The exact sign rule agrees with the batch-norm affine compare
    /// `scale*x + shift >= 0` for every finite input — the property
    /// the fused binarize-pack path relies on for bit-exactness.
    #[test]
    fn sign_rule_matches_affine_compare(
        scale in -8.0f32..8.0,
        shift in -8.0f32..8.0,
        x in -16.0f32..16.0,
    ) {
        let rule = exact_sign_rule(scale, shift);
        prop_assert_eq!(
            rule.bit(x),
            scale * x + shift >= 0.0,
            "rule {:?} scale={} shift={} x={}", rule, scale, shift, x
        );
    }

    /// End-to-end: plans pinned to each available backend produce
    /// bit-identical logits for random networks and inputs.
    #[test]
    fn plan_backends_bit_identical(seed in 0u64..20, n in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let packed = PackedBnn::compile(&net);
        let mut state = seed as u32 ^ 0xabcd_1234;
        let input: Vec<f32> = (0..n * 16 * 16).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 { 1.0 } else { -1.0 }
        }).collect();
        let mut reference = vec![0.0f32; n * 2];
        packed
            .plan_with_backend((16, 16), KernelBackend::Scalar)
            .run_into(&input, n, &mut Workspace::new(), &mut reference);
        for backend in KernelBackend::available() {
            let plan = packed.plan_with_backend((16, 16), backend);
            prop_assert_eq!(plan.backend(), backend);
            let mut logits = vec![0.0f32; n * 2];
            plan.run_into(&input, n, &mut Workspace::new(), &mut logits);
            prop_assert_eq!(
                &logits, &reference,
                "plan backend {} diverged from scalar", backend.name()
            );
        }
    }

    /// Residual levels are strictly additive: an M-level model capped
    /// at M = 1 produces **bit-identical** logits to the single-level
    /// model compiled from the same weights, on every compiled-in
    /// kernel backend and for every scaling mode.  This is the
    /// refactor's backward-compatibility contract — level 0 of the
    /// residual stack *is* the pre-M-level representation.
    #[test]
    fn plan_mlevel_capped_at_one_matches_single_level(
        seed in 0u64..12,
        n in 1usize..4,
        mode_idx in 0usize..3,
    ) {
        let mode = [ScalingMode::PlainSign, ScalingMode::Shared, ScalingMode::PerChannel][mode_idx];
        let mut cfg = NetConfig::tiny(16);
        cfg.scaling = mode;
        let mut rng = StdRng::seed_from_u64(seed);
        let single = PackedBnn::compile(&BnnResNet::new(&cfg, &mut rng));
        let mut rng = StdRng::seed_from_u64(seed);
        let multi = PackedBnn::compile(&BnnResNet::new(&cfg.clone().with_levels(2), &mut rng));
        prop_assert_eq!(single.levels(), 1);
        prop_assert_eq!(multi.levels(), 2);
        let mut state = seed as u32 ^ 0x5a5a_5a5a;
        let input: Vec<f32> = (0..n * 16 * 16).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 { 1.0 } else { -1.0 }
        }).collect();
        for backend in KernelBackend::available() {
            let mut expect = vec![0.0f32; n * 2];
            single
                .plan_with_backend((16, 16), backend)
                .run_into(&input, n, &mut Workspace::new(), &mut expect);
            let mut capped = vec![0.0f32; n * 2];
            multi
                .plan_capped_with_backend((16, 16), backend, 1)
                .run_into(&input, n, &mut Workspace::new(), &mut capped);
            prop_assert_eq!(
                &capped, &expect,
                "capped M=2 model diverged from M=1 on {} ({:?})", backend.name(), mode
            );
        }
    }

    /// M-level plans are bit-identical across every compiled-in kernel
    /// backend, for M ∈ {1, 2}: the correction planes run through the
    /// same popcount kernels as level 0, so backend equivalence must
    /// hold at every level count.
    #[test]
    fn plan_mlevel_backends_bit_identical(
        seed in 0u64..10,
        n in 1usize..4,
        levels in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(levels), &mut rng);
        let packed = PackedBnn::compile(&net);
        prop_assert_eq!(packed.levels(), levels);
        let mut state = seed as u32 ^ 0x00c0_ffee;
        let input: Vec<f32> = (0..n * 16 * 16).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 { 1.0 } else { -1.0 }
        }).collect();
        let mut reference = vec![0.0f32; n * 2];
        packed
            .plan_with_backend((16, 16), KernelBackend::Scalar)
            .run_into(&input, n, &mut Workspace::new(), &mut reference);
        for backend in KernelBackend::available() {
            let plan = packed.plan_with_backend((16, 16), backend);
            let mut logits = vec![0.0f32; n * 2];
            plan.run_into(&input, n, &mut Workspace::new(), &mut logits);
            prop_assert_eq!(
                &logits, &reference,
                "M={} plan on backend {} diverged from scalar", levels, backend.name()
            );
        }
    }

    /// The batched XNOR-GEMM tier is **bit-identical** to per-item
    /// execution: `run_batch_into` over a batch of N clips produces the
    /// same logits as N separate `run_into` calls, across batch sizes
    /// that cover the GEMM tile tail cases, M ∈ {1, 2}, and every
    /// compiled-in kernel backend (forcing a backend forces its GEMM
    /// counterpart too).
    #[test]
    fn batched_gemm_tier_matches_per_item(
        seed in 0u64..8,
        batch_idx in 0usize..5,
        levels in 1usize..3,
    ) {
        let n = [1usize, 2, 3, 8, 17][batch_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(levels), &mut rng);
        let packed = PackedBnn::compile(&net);
        let mut state = seed as u32 ^ 0xb17b_a7c4;
        let input: Vec<f32> = (0..n * 16 * 16).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if state & 0x8000 == 0 { 1.0 } else { -1.0 }
        }).collect();
        for backend in KernelBackend::available() {
            let plan = packed.plan_with_backend((16, 16), backend);
            // Per-item reference: one run_into call per clip.
            let mut expect = vec![0.0f32; n * 2];
            let mut ws = Workspace::new();
            for i in 0..n {
                plan.run_into(
                    &input[i * 256..(i + 1) * 256], 1, &mut ws, &mut expect[i * 2..(i + 1) * 2],
                );
            }
            let mut batched = vec![0.0f32; n * 2];
            plan.run_batch_into(&input, n, &mut ws, &mut batched);
            prop_assert_eq!(
                &batched, &expect,
                "batched M={} n={} on {} diverged from per-item", levels, n, backend.name()
            );
            // Workspace reuse across batch sizes must stay identical.
            let mut again = vec![0.0f32; n * 2];
            plan.run_batch_into(&input, n, &mut ws, &mut again);
            prop_assert_eq!(&again, &expect);
        }
    }

    /// Conv-level batched/per-item equivalence at channel counts that
    /// cross the 64-bit word boundary — the dense B-repack handles
    /// word spills and partial high words, so exercise c just below,
    /// at, and above multiples of 64, with M ∈ {1, 2} and both an
    /// affine scale map and plain-sign scaling.
    #[test]
    fn batched_conv_word_boundary_channels(
        seed in 0u64..30,
        c_idx in 0usize..5,
        levels in 1usize..3,
        plain in any::<bool>(),
    ) {
        let c = [63usize, 64, 65, 127, 130][c_idx];
        let (k, h, w, kf) = (3usize, 9usize, 10usize, 4usize);
        fn next(state: &mut u64) -> u64 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *state
        }
        fn pm1(state: &mut u64, len: usize) -> Vec<f32> {
            (0..len)
                .map(|_| if next(state) >> 63 == 0 { 1.0 } else { -1.0 })
                .collect()
        }
        fn smallf(state: &mut u64, len: usize) -> Vec<f32> {
            (0..len)
                .map(|_| ((next(state) >> 40) as f32 / 16_777_216.0) - 0.5)
                .collect()
        }
        let st = &mut seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(5);
        let filter =
            BitFilter::from_tensor(&Tensor::from_vec(&[kf, c, k, k], pm1(st, kf * c * k * k)));
        let extra_levels: Vec<(BitFilter, Vec<f32>)> = (1..levels)
            .map(|_| {
                let f = BitFilter::from_tensor(
                    &Tensor::from_vec(&[kf, c, k, k], pm1(st, kf * c * k * k)),
                );
                let alpha: Vec<f32> = smallf(st, kf).iter().map(|v| v.abs() + 0.05).collect();
                (f, alpha)
            })
            .collect();
        let scaling = if plain { ScalingMode::PlainSign } else { ScalingMode::PerChannel };
        let conv = PackedConv::from_raw_parts(
            smallf(st, c).iter().map(|v| v + 1.5).collect(), // bn scale > 0
            smallf(st, c),
            filter,
            smallf(st, kf).iter().map(|v| v.abs() + 0.1).collect(),
            1,
            1,
            k,
            scaling,
            extra_levels,
        );
        let n = 3usize;
        let x: Vec<f32> = smallf(st, n * c * h * w);
        let (oh, ow) = conv.output_hw(h, w);
        let out_len = kf * oh * ow;
        for backend in KernelBackend::available() {
            let prep = conv.prepare_with_backend(h, w, backend);
            let mut ws = Workspace::new();
            let mut expect = vec![0.0f32; n * out_len];
            for i in 0..n {
                conv.forward_prepped(
                    &prep,
                    &x[i * c * h * w..(i + 1) * c * h * w],
                    1,
                    &mut ws,
                    &mut expect[i * out_len..(i + 1) * out_len],
                );
            }
            let mut batched = vec![0.0f32; n * out_len];
            conv.forward_prepped_batch(&prep, &x, n, &mut ws, &mut batched);
            prop_assert_eq!(
                &batched, &expect,
                "batched conv c={} M={} {:?} on {} diverged", c, levels, scaling, backend.name()
            );
        }
    }

    /// A residual block's backward returns a gradient of the input
    /// shape with finite values, for every scaling mode.
    #[test]
    fn residual_block_gradient_finite(seed in 0u64..50, mode_idx in 0usize..3) {
        let mode = [ScalingMode::PlainSign, ScalingMode::Shared, ScalingMode::PerChannel][mode_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut block = BinaryResidualBlock::new(2, 4, 2, mode, &mut rng);
        let mut state = seed as u32 + 1;
        let numel = 2 * 2 * 8 * 8;
        let x = Tensor::from_vec(&[2, 2, 8, 8], (0..numel).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 16) as f32 / 32768.0 - 1.0
        }).collect());
        let y = block.forward(&x, true);
        prop_assert_eq!(y.shape(), &[2, 4, 4, 4]);
        let g = block.backward(&Tensor::ones(y.shape()));
        prop_assert_eq!(g.shape(), x.shape());
        prop_assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }
}
