//! The scanner's backbone guarantee: full-chip scanning with
//! window-reuse is **bit-identical** to naive crop-and-classify —
//! every window margin, verdict, escalation flag, and merged region —
//! across strides, chip shapes (aligned, misaligned, smaller than the
//! window), cascade settings, dedup on/off, and kernel backends (CI
//! runs this file once per forced backend via
//! `HOTSPOT_KERNEL_BACKEND`).

use hotspot_bnn::{active_backend, BnnResNet, NetConfig, PackedBnn, ScanConfig, Scanner};
use hotspot_geometry::BitImage;
use hotspot_tensor::Workspace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn tiny_model() -> &'static PackedBnn {
    static M: OnceLock<PackedBnn> = OnceLock::new();
    M.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(7);
        PackedBnn::compile(&BnnResNet::new(
            &NetConfig::tiny(16).with_levels(2),
            &mut rng,
        ))
    })
}

fn paper_model() -> &'static PackedBnn {
    static M: OnceLock<PackedBnn> = OnceLock::new();
    M.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2019);
        PackedBnn::compile(&BnnResNet::new(
            &NetConfig::paper_12layer().with_levels(2),
            &mut rng,
        ))
    })
}

/// Deterministic random chip (LCG so proptest shrinking stays stable).
fn random_image(w: usize, h: usize, seed: u64, density_shift: u32) -> BitImage {
    let mut img = BitImage::new(w, h);
    let mut state = seed | 1;
    for y in 0..h {
        for x in 0..w {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 33) & ((1 << density_shift) - 1) == 0 {
                img.set(x, y, true);
            }
        }
    }
    img
}

#[allow(clippy::too_many_arguments)]
fn assert_scan_equivalent(
    model: &PackedBnn,
    window: usize,
    stride: usize,
    dims: (usize, usize),
    seed: u64,
    density_shift: u32,
    cascade_threshold: f32,
    triage_only: bool,
    dedup: bool,
) {
    let config = ScanConfig {
        stride,
        cascade_threshold,
        triage_only,
        dedup,
    };
    let scanner = Scanner::with_backend(model, window, config, active_backend());
    let img = random_image(dims.0, dims.1, seed, density_shift);
    let mut ws = Workspace::new();
    let fast = scanner.scan(&img, &mut ws);
    let slow = scanner.scan_naive(&img, &mut ws);
    assert_eq!(fast.windows, slow.windows);
    assert_eq!(
        fast.verdicts,
        slow.verdicts,
        "scan must be bit-identical to crop-and-classify \
         (window {window}, stride {stride}, dims {dims:?}, thr {cascade_threshold}, \
          triage_only {triage_only}, dedup {dedup}, backend {:?})",
        active_backend()
    );
    assert_eq!(fast.regions, slow.regions);
    assert_eq!(fast.escalated, slow.escalated);
    // Accounting: every window is served by exactly one path.
    assert_eq!(fast.reused + fast.fallback + fast.dedup_hits, fast.windows);
    assert_eq!(slow.fallback, slow.windows);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tiny 16-window net: strides below/at the window, chips aligned,
    /// misaligned, and smaller than the window.
    #[test]
    fn tiny_scan_equivalent(
        seed in any::<u64>(),
        density_shift in 1u32..4,
        stride_i in 0usize..3,
        dims_i in 0usize..5,
        thr_i in 0usize..3,
        triage_only in any::<bool>(),
        dedup in any::<bool>(),
    ) {
        let stride = [4usize, 8, 16][stride_i];
        let dims = [(16, 16), (23, 19), (40, 33), (48, 48), (10, 12)][dims_i];
        let thr = [0.0f32, 0.3, f32::INFINITY][thr_i];
        assert_scan_equivalent(
            tiny_model(), 16, stride, dims, seed, density_shift, thr, triage_only, dedup,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The paper's 12-layer net at its native 128 window, M = 2, the
    /// production strides {32, 64, 128}.  (151 wide forces an
    /// odd-offset flush column → the naive-fallback path.)
    #[test]
    fn paper_scan_equivalent(
        seed in any::<u64>(),
        stride_i in 0usize..3,
        dims_i in 0usize..3,
        thr_i in 0usize..3,
        dedup in any::<bool>(),
    ) {
        let stride = [32usize, 64, 128][stride_i];
        let dims = [(192, 256), (128, 128), (151, 170)][dims_i];
        let thr = [0.0f32, 0.3, f32::INFINITY][thr_i];
        assert_scan_equivalent(
            paper_model(), 128, stride, dims, seed, 3, thr, false, dedup,
        );
    }
}

/// Guards against the reuse machinery silently degrading to the naive
/// fallback: at the canonical stride-64 production setting the slab
/// path must actually serve windows.
#[test]
fn paper_scan_actually_reuses() {
    let scanner = Scanner::with_backend(paper_model(), 128, ScanConfig::new(64), active_backend());
    let img = random_image(256, 256, 41, 3);
    let mut ws = Workspace::new();
    let report = scanner.scan(&img, &mut ws);
    assert!(report.reused > 0, "reuse path disengaged: {report:?}");
    assert_eq!(
        report.fallback, 0,
        "all aligned windows must reuse: {report:?}"
    );
}

/// Chips smaller than the window run entirely through the fallback
/// path and still merge into a clamped region set.
#[test]
fn undersized_chip_scans_via_fallback() {
    let scanner = Scanner::with_backend(tiny_model(), 16, ScanConfig::new(8), active_backend());
    let img = random_image(10, 12, 5, 1);
    let mut ws = Workspace::new();
    let report = scanner.scan(&img, &mut ws);
    assert_eq!(report.windows, 1);
    assert_eq!(report.reused, 0);
    for r in &report.regions {
        assert!(r.x1 <= 10 && r.y1 <= 12, "region clamped to chip: {r:?}");
    }
}
