//! Block DCT feature tensors (DAC'17 style).

use hotspot_geometry::BitImage;
use hotspot_tensor::Tensor;

/// 2-D DCT-II of a square `n × n` block (orthonormal convention).
///
/// # Panics
///
/// Panics when `block.len() != n * n` or `n == 0`.
pub fn dct2(block: &[f32], n: usize) -> Vec<f32> {
    assert!(n > 0, "block size must be positive");
    assert_eq!(block.len(), n * n, "block size mismatch");
    let mut out = vec![0.0f32; n * n];
    let scale = |k: usize| -> f64 {
        if k == 0 {
            (1.0 / n as f64).sqrt()
        } else {
            (2.0 / n as f64).sqrt()
        }
    };
    for u in 0..n {
        for v in 0..n {
            let mut acc = 0.0f64;
            for y in 0..n {
                let cy = (std::f64::consts::PI * (2.0 * y as f64 + 1.0) * u as f64
                    / (2.0 * n as f64))
                    .cos();
                for x in 0..n {
                    let cx = (std::f64::consts::PI * (2.0 * x as f64 + 1.0) * v as f64
                        / (2.0 * n as f64))
                        .cos();
                    acc += block[y * n + x] as f64 * cy * cx;
                }
            }
            out[u * n + v] = (scale(u) * scale(v) * acc) as f32;
        }
    }
    out
}

/// Inverse 2-D DCT (DCT-III with orthonormal scaling): exact inverse of
/// [`dct2`].
///
/// # Panics
///
/// Panics when `coeffs.len() != n * n` or `n == 0`.
pub fn idct2(coeffs: &[f32], n: usize) -> Vec<f32> {
    assert!(n > 0, "block size must be positive");
    assert_eq!(coeffs.len(), n * n, "block size mismatch");
    let mut out = vec![0.0f32; n * n];
    let scale = |k: usize| -> f64 {
        if k == 0 {
            (1.0 / n as f64).sqrt()
        } else {
            (2.0 / n as f64).sqrt()
        }
    };
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0f64;
            for u in 0..n {
                let cy = (std::f64::consts::PI * (2.0 * y as f64 + 1.0) * u as f64
                    / (2.0 * n as f64))
                    .cos();
                for v in 0..n {
                    let cx = (std::f64::consts::PI * (2.0 * x as f64 + 1.0) * v as f64
                        / (2.0 * n as f64))
                        .cos();
                    acc += scale(u) * scale(v) * coeffs[u * n + v] as f64 * cy * cx;
                }
            }
            out[y * n + x] = acc as f32;
        }
    }
    out
}

/// Zigzag traversal order of an `n × n` matrix (JPEG style), used to
/// pick the `keep` lowest-frequency DCT coefficients.
fn zigzag_order(n: usize) -> Vec<(usize, usize)> {
    let mut order = Vec::with_capacity(n * n);
    for s in 0..(2 * n - 1) {
        let range: Vec<usize> = (0..n).filter(|&i| s >= i && s - i < n).collect();
        if s % 2 == 0 {
            for &i in range.iter().rev() {
                order.push((i, s - i));
            }
        } else {
            for &i in &range {
                order.push((i, s - i));
            }
        }
    }
    order
}

/// The DAC'17 feature tensor: tile the clip into `block × block`
/// pixel blocks, DCT each block, and keep the first `keep` zigzag
/// coefficients as channels.
///
/// Returns a `[keep, nb, nb]` tensor where `nb = side / block`.
///
/// # Panics
///
/// Panics when `block` does not divide the image side, the image is
/// not square, or `keep > block²`.
pub fn dct_feature_tensor(img: &BitImage, block: usize, keep: usize) -> Tensor {
    assert_eq!(
        img.width(),
        img.height(),
        "feature tensor expects square clips"
    );
    let side = img.width();
    assert!(
        block > 0 && side.is_multiple_of(block),
        "block {block} must divide {side}"
    );
    assert!(keep >= 1 && keep <= block * block, "keep out of range");
    let nb = side / block;
    let order = zigzag_order(block);
    let mut out = Tensor::zeros(&[keep, nb, nb]);
    let mut buf = vec![0.0f32; block * block];
    for by in 0..nb {
        for bx in 0..nb {
            for y in 0..block {
                for x in 0..block {
                    buf[y * block + x] = if img.get(bx * block + x, by * block + y) {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            let coeffs = dct2(&buf, block);
            for (ci, &(u, v)) in order.iter().take(keep).enumerate() {
                *out.at_mut(&[ci, by, bx]) = coeffs[u * block + v];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_block(n: usize, seed: u32) -> Vec<f32> {
        let mut state = seed;
        (0..n * n)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 16) as f32 / 65536.0
            })
            .collect()
    }

    #[test]
    fn dct_of_constant_block_is_dc_only() {
        let block = vec![0.5f32; 64];
        let coeffs = dct2(&block, 8);
        // DC = 0.5 * 8 (orthonormal: sum/n = 0.5*64/8).
        assert!((coeffs[0] - 4.0).abs() < 1e-5, "DC {}", coeffs[0]);
        for (i, &c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-5, "AC coeff {i} = {c}");
        }
    }

    #[test]
    fn dct_idct_round_trip() {
        let block = pseudo_block(8, 3);
        let coeffs = dct2(&block, 8);
        let back = idct2(&coeffs, 8);
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn dct_preserves_energy() {
        // Parseval: orthonormal transform preserves the L2 norm.
        let block = pseudo_block(8, 9);
        let coeffs = dct2(&block, 8);
        let e_in: f32 = block.iter().map(|v| v * v).sum();
        let e_out: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() < 1e-3, "{e_in} vs {e_out}");
    }

    #[test]
    fn zigzag_starts_low_frequency() {
        let order = zigzag_order(4);
        assert_eq!(order.len(), 16);
        assert_eq!(order[0], (0, 0));
        // The first three entries are the lowest frequencies.
        assert!(order[1] == (0, 1) || order[1] == (1, 0));
        // All cells visited exactly once.
        let mut seen = order.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn feature_tensor_shape_and_dc() {
        let mut img = BitImage::new(32, 32);
        // Fill the top-left 8x8 block entirely.
        for y in 0..8 {
            img.fill_row_span(y, 0, 8);
        }
        let t = dct_feature_tensor(&img, 8, 10);
        assert_eq!(t.shape(), &[10, 4, 4]);
        // DC of the filled block is 8 (1.0 * 64 / 8); empty blocks are 0.
        assert!((t.at(&[0, 0, 0]) - 8.0).abs() < 1e-4);
        assert_eq!(t.at(&[0, 3, 3]), 0.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn feature_tensor_validates_block() {
        dct_feature_tensor(&BitImage::new(30, 30), 8, 4);
    }
}
