//! Concentric-circle sampling (ICCAD'16 style).

use hotspot_geometry::BitImage;

/// Samples the clip along concentric rings around its centre,
/// returning one mean-density value per ring, innermost first.
///
/// This is a compact stand-in for the optimized concentric-circle
/// sampling feature of ICCAD'16: each ring integrates the pattern at a
/// fixed distance from the clip centre, which captures the radial
/// pattern profile around a potential hotspot.  `rings` rings of equal
/// radial width tile the inscribed circle.
///
/// # Panics
///
/// Panics when `rings` is zero or the image is not square.
///
/// # Example
///
/// ```
/// use hotspot_features::concentric_circle_sample;
/// use hotspot_geometry::BitImage;
///
/// let mut img = BitImage::new(32, 32);
/// for y in 12..20 {
///     img.fill_row_span(y, 12, 20); // a square at the centre
/// }
/// let f = concentric_circle_sample(&img, 8);
/// assert!(f[0] > f[7]); // dense centre, empty rim
/// ```
pub fn concentric_circle_sample(img: &BitImage, rings: usize) -> Vec<f32> {
    assert!(rings > 0, "rings must be positive");
    assert_eq!(img.width(), img.height(), "CCS expects square clips");
    let side = img.width();
    let c = (side as f64 - 1.0) / 2.0;
    let max_r = c; // inscribed circle
    let ring_width = max_r / rings as f64;
    let mut ones = vec![0u32; rings];
    let mut counts = vec![0u32; rings];
    for y in 0..side {
        for x in 0..side {
            let dx = x as f64 - c;
            let dy = y as f64 - c;
            let r = (dx * dx + dy * dy).sqrt();
            if r > max_r {
                continue;
            }
            let ring = ((r / ring_width) as usize).min(rings - 1);
            counts[ring] += 1;
            if img.get(x, y) {
                ones[ring] += 1;
            }
        }
    }
    ones.iter()
        .zip(&counts)
        .map(|(&o, &n)| if n == 0 { 0.0 } else { o as f32 / n as f32 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_count_matches() {
        let img = BitImage::new(64, 64);
        assert_eq!(concentric_circle_sample(&img, 12).len(), 12);
    }

    #[test]
    fn empty_image_all_zero() {
        let f = concentric_circle_sample(&BitImage::new(32, 32), 6);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_image_all_one() {
        let mut img = BitImage::new(32, 32);
        for y in 0..32 {
            img.fill_row_span(y, 0, 32);
        }
        let f = concentric_circle_sample(&img, 6);
        assert!(f.iter().all(|&v| (v - 1.0).abs() < 1e-6), "{f:?}");
    }

    #[test]
    fn centre_blob_loads_inner_rings() {
        let mut img = BitImage::new(64, 64);
        for y in 28..36 {
            img.fill_row_span(y, 28, 36);
        }
        let f = concentric_circle_sample(&img, 8);
        assert!(f[0] > 0.8, "inner ring {}", f[0]);
        assert_eq!(f[7], 0.0);
    }

    #[test]
    fn rim_ring_sees_border_pattern() {
        let mut img = BitImage::new(64, 64);
        // A vertical stripe near the left edge, inside the inscribed circle.
        for y in 28..36 {
            img.fill_row_span(y, 2, 6);
        }
        let f = concentric_circle_sample(&img, 8);
        assert!(f[7] > 0.0, "outer ring {:?}", f);
        assert_eq!(f[0], 0.0);
    }

    #[test]
    fn rotation_quarter_turn_invariant() {
        // CCS of an image and its 90°-rotation (via double flip +
        // transpose equivalent: flip both axes = 180°) match exactly.
        let mut img = BitImage::new(32, 32);
        img.fill_row_span(4, 8, 20);
        img.fill_row_span(20, 2, 10);
        let rotated = img.flip_horizontal().flip_vertical(); // 180°
        let a = concentric_circle_sample(&img, 8);
        let b = concentric_circle_sample(&rotated, 8);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
