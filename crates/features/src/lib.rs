//! Classical feature extractors for the baseline hotspot detectors.
//!
//! Three feature families back the three baselines the paper compares
//! against in Table 3:
//!
//! * [`dct`] — the block-DCT feature tensor of DAC'17 (Yang et al.):
//!   the clip is tiled into blocks, each block is transformed with a
//!   2-D DCT-II, and the lowest-frequency coefficients are kept in
//!   zigzag order as channels of a small spatial tensor.
//! * [`density`] — the density-grid encoding used by the SPIE'15
//!   AdaBoost detector (Matsunawa et al.): per-cell pattern density.
//! * [`ccs`] — concentric-circle sampling (ICCAD'16, Zhang et al.):
//!   ring-wise density samples around the clip centre.
//!
//! # Example
//!
//! ```
//! use hotspot_features::density::density_grid;
//! use hotspot_geometry::BitImage;
//!
//! let mut img = BitImage::new(32, 32);
//! img.fill_row_span(0, 0, 32);
//! let feats = density_grid(&img, 4);
//! assert_eq!(feats.len(), 16);
//! ```

pub mod ccs;
pub mod dct;
pub mod density;

pub use ccs::concentric_circle_sample;
pub use dct::{dct2, dct_feature_tensor, idct2};
pub use density::density_grid;
