//! Density-grid features (SPIE'15 style).

use hotspot_geometry::BitImage;

/// Per-cell pattern density over a `grid × grid` tiling of the clip.
///
/// Returns `grid²` values in row-major order, each in `[0, 1]`.  This
/// is the simplified layout encoding used by the SPIE'15 AdaBoost
/// detector.
///
/// # Panics
///
/// Panics when `grid` is zero or does not divide both image dimensions.
///
/// # Example
///
/// ```
/// use hotspot_features::density_grid;
/// use hotspot_geometry::BitImage;
///
/// let mut img = BitImage::new(8, 8);
/// for y in 0..4 {
///     img.fill_row_span(y, 0, 4); // fill one quadrant
/// }
/// let f = density_grid(&img, 2);
/// assert_eq!(f, vec![1.0, 0.0, 0.0, 0.0]);
/// ```
pub fn density_grid(img: &BitImage, grid: usize) -> Vec<f32> {
    assert!(grid > 0, "grid must be positive");
    let (w, h) = (img.width(), img.height());
    assert!(
        w % grid == 0 && h % grid == 0,
        "grid {grid} must divide {w}x{h}"
    );
    let (cw, ch) = (w / grid, h / grid);
    let inv = 1.0 / (cw * ch) as f32;
    let mut out = Vec::with_capacity(grid * grid);
    for gy in 0..grid {
        for gx in 0..grid {
            let mut ones = 0usize;
            for y in 0..ch {
                for x in 0..cw {
                    if img.get(gx * cw + x, gy * ch + y) {
                        ones += 1;
                    }
                }
            }
            out.push(ones as f32 * inv);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_image_uniform_density() {
        let mut img = BitImage::new(16, 16);
        for y in 0..16 {
            img.fill_row_span(y, 0, 16);
        }
        let f = density_grid(&img, 4);
        assert_eq!(f.len(), 16);
        assert!(f.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn empty_image_zero_density() {
        let f = density_grid(&BitImage::new(16, 16), 4);
        assert!(f.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn densities_sum_to_total_fraction() {
        let mut img = BitImage::new(16, 16);
        img.fill_row_span(3, 2, 11); // 9 pixels
        let f = density_grid(&img, 4);
        let mean: f32 = f.iter().sum::<f32>() / 16.0;
        assert!((mean - 9.0 / 256.0).abs() < 1e-6);
    }

    #[test]
    fn row_major_cell_order() {
        let mut img = BitImage::new(4, 4);
        img.set(3, 0, true); // top-right cell in row-major grid(2)
        let f = density_grid(&img, 2);
        assert_eq!(f, vec![0.0, 0.25, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn grid_must_divide() {
        density_grid(&BitImage::new(10, 10), 3);
    }
}
