//! Hotspot-detection metrics (paper §2.1, Table 1, Eq. 1–3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The confusion matrix of a hotspot-detection run (paper Table 1).
///
/// Conventions follow the paper: *positive* = hotspot.
///
/// # Example
///
/// ```
/// use hotspot_core::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // hit
/// cm.record(true, false);  // miss
/// cm.record(false, true);  // false alarm
/// cm.record(false, false); // correct rejection
/// assert_eq!(cm.accuracy(), 0.5);
/// assert_eq!(cm.false_alarms(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Hotspots predicted as hotspots.
    pub tp: u64,
    /// Non-hotspots predicted as hotspots.
    pub fp: u64,
    /// Non-hotspots predicted as non-hotspots.
    pub tn: u64,
    /// Hotspots predicted as non-hotspots.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one example.
    pub fn record(&mut self, actual_hotspot: bool, predicted_hotspot: bool) {
        match (actual_hotspot, predicted_hotspot) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total examples recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Detection accuracy (Eq. 1): `TP / (TP + FN)` — the hotspot
    /// recall, as defined by the ICCAD-2012 contest.
    ///
    /// Returns 0 when no hotspots were recorded.
    pub fn accuracy(&self) -> f64 {
        let hotspots = self.tp + self.fn_;
        if hotspots == 0 {
            0.0
        } else {
            self.tp as f64 / hotspots as f64
        }
    }

    /// False alarms (Eq. 2): the number of non-hotspots flagged as
    /// hotspots, `#FP`.
    pub fn false_alarms(&self) -> u64 {
        self.fp
    }

    /// Overall detection and simulation time (Eq. 3), in seconds:
    /// `(#FP + #TP)·t_ls + N·t_ev`, where `t_ls` is the lithography
    /// simulation time per flagged instance and `t_ev` the model
    /// evaluation time per instance.
    pub fn odst(&self, t_ls_seconds: f64, t_ev_seconds: f64) -> f64 {
        (self.fp + self.tp) as f64 * t_ls_seconds + self.total() as f64 * t_ev_seconds
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

impl fmt::Display for ConfusionMatrix {
    /// Renders the matrix in the layout of the paper's Table 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "                 actual NHS   actual HS")?;
        writeln!(f, "pred Non-Hotspot {:>10}  {:>10}", self.tn, self.fn_)?;
        write!(f, "pred Hotspot     {:>10}  {:>10}", self.fp, self.tp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        ConfusionMatrix {
            tp: 90,
            fn_: 10,
            fp: 30,
            tn: 870,
        }
    }

    #[test]
    fn accuracy_is_recall() {
        assert!((sample().accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(ConfusionMatrix::new().accuracy(), 0.0);
    }

    #[test]
    fn false_alarms_count_fp() {
        assert_eq!(sample().false_alarms(), 30);
    }

    #[test]
    fn odst_formula() {
        let cm = sample();
        // (30 + 90) * 10 + 1000 * 0.01 = 1200 + 10.
        assert!((cm.odst(10.0, 0.01) - 1210.0).abs() < 1e-9);
        // Zero eval time degenerates to pure simulation cost.
        assert!((cm.odst(10.0, 0.0) - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn record_routes_counts() {
        let mut cm = ConfusionMatrix::new();
        for _ in 0..3 {
            cm.record(true, true);
        }
        cm.record(true, false);
        cm.record(false, true);
        cm.record(false, false);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tp: 3,
                fn_: 1,
                fp: 1,
                tn: 1
            }
        );
        assert_eq!(cm.total(), 6);
    }

    #[test]
    fn merge_adds() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.tp, 180);
        assert_eq!(a.total(), 2000);
    }

    #[test]
    fn display_mentions_all_cells() {
        let s = sample().to_string();
        assert!(s.contains("870"));
        assert!(s.contains("90"));
        assert!(s.contains("Hotspot"));
    }
}
