//! Model, dataset, and checkpoint persistence.
//!
//! Training the BNN and litho-labelling a dataset are the two expensive
//! steps of the pipeline; both artifacts serialize compactly so they
//! can be built once and reused:
//!
//! * a compiled [`PackedBnn`] — the deployment artifact (binary weights
//!   are stored bit-packed, so the paper-scale model is ~tens of KiB);
//! * a [`SplitDataset`] — the labelled clips (bit-packed rasters);
//! * a [`TrainCheckpoint`] — the full mid-run training state for
//!   fault-tolerant resume (see [`crate::checkpoint`]).
//!
//! The on-disk format is a short magic/version header, a hand-rolled
//! little-endian payload (see `hotspot_tensor::wire`), and — since
//! version `03` — a CRC32 footer over header and payload.  Writes are
//! atomic: the bytes land in a same-directory temp file which is
//! fsynced and then renamed over the destination, so a crash mid-save
//! can never leave a half-written artifact under the final name.
//! Version-`02` files (no footer) remain loadable.  The build
//! environment is fully offline, so no external serialization crate is
//! involved.

use crate::checkpoint::TrainCheckpoint;
use hotspot_bnn::PackedBnn;
use hotspot_geometry::BitImage;
use hotspot_layout_gen::{LabeledClip, PatternFamily, SplitDataset};
use hotspot_tensor::{crc32, WireError, WireReader, WireWriter};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// `BRNNHS` + format version.  `04` added M-level residual
/// binarization (each packed conv carries extra bit planes with
/// per-level scales); `03` added the CRC32 footer and atomic writes;
/// `02` (the bincode → wire-codec move) is still readable.  Models in
/// `03`/`02` files decode with the legacy single-level layout and load
/// as M = 1.
const MAGIC: &[u8; 8] = b"BRNNHS04";

/// Previous artifact version: single-level model payload, CRC footer.
const MAGIC_V3: &[u8; 8] = b"BRNNHS03";

/// Oldest artifact version: single-level payload, no integrity footer.
const MAGIC_V2: &[u8; 8] = b"BRNNHS02";

/// Training-checkpoint artifact.  `03` added the residual binarization
/// level count; `02` added per-epoch wall-clock durations to the
/// history records.  Checkpoints never existed before the CRC era, so
/// every version carries the footer.
const MAGIC_CK: &[u8; 8] = b"BRNNCK03";

/// Previous checkpoint version: no level count (loads as M = 1).
const MAGIC_CK_V2: &[u8; 8] = b"BRNNCK02";

/// Oldest checkpoint version: epoch records without durations.  Still
/// loadable; the missing durations read back as zero.
const MAGIC_CK_V1: &[u8; 8] = b"BRNNCK01";

/// Error from save/load operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a brnn-hotspot artifact (bad magic/version).
    BadHeader,
    /// The CRC32 footer does not match the stored bytes — the file was
    /// corrupted or truncated after it was written.
    BadChecksum,
    /// The payload failed to (de)serialize.
    Codec(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadHeader => write!(f, "not a brnn-hotspot artifact (bad header)"),
            PersistError::BadChecksum => {
                write!(f, "artifact failed its integrity check (bad CRC32)")
            }
            PersistError::Codec(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Codec(e.0)
    }
}

/// Writes `bytes` to `path` atomically: temp sibling → fsync → rename,
/// then fsync of the parent directory so the rename itself is durable.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            // Directory fsync makes the rename durable; not every
            // filesystem supports it, so failure here is non-fatal.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Frames `body` as `magic ‖ body ‖ crc32(magic ‖ body)` and writes it
/// atomically.
fn save_framed(path: &Path, magic: &[u8; 8], writer: WireWriter) -> Result<(), PersistError> {
    let body = writer.into_bytes();
    let mut framed = Vec::with_capacity(magic.len() + body.len() + 4);
    framed.extend_from_slice(magic);
    framed.extend_from_slice(&body);
    let crc = crc32(&framed);
    framed.extend_from_slice(&crc.to_le_bytes());
    write_atomic(path, &framed)
}

/// Strips the CRC footer (verifying it) and the magic, returning the
/// raw payload.
fn unframe_checked(bytes: &[u8], magic: &[u8; 8]) -> Result<Vec<u8>, PersistError> {
    let covered_len = match bytes.len().checked_sub(4) {
        Some(n) if n >= magic.len() => n,
        _ => return Err(PersistError::BadChecksum),
    };
    let stored = match <[u8; 4]>::try_from(&bytes[covered_len..]) {
        Ok(footer) => u32::from_le_bytes(footer),
        // covered_len = len - 4, so the footer is always 4 bytes; a
        // typed error keeps even that invariant off the panic path.
        Err(_) => return Err(PersistError::BadChecksum),
    };
    if crc32(&bytes[..covered_len]) != stored {
        return Err(PersistError::BadChecksum);
    }
    Ok(bytes[magic.len()..covered_len].to_vec())
}

fn save_payload(path: &Path, writer: WireWriter) -> Result<(), PersistError> {
    save_framed(path, MAGIC, writer)
}

/// Reads an artifact payload, returning the body plus whether it uses
/// the multi-level (version-`04`) model layout.
fn load_payload(path: &Path) -> Result<(Vec<u8>, bool), PersistError> {
    let bytes = fs::read(path)?;
    if bytes.starts_with(MAGIC) {
        return Ok((unframe_checked(&bytes, MAGIC)?, true));
    }
    if bytes.starts_with(MAGIC_V3) {
        return Ok((unframe_checked(&bytes, MAGIC_V3)?, false));
    }
    // Legacy version-02 artifacts predate the integrity footer.
    match bytes.strip_prefix(MAGIC_V2) {
        Some(body) => Ok((body.to_vec(), false)),
        None => Err(PersistError::BadHeader),
    }
}

fn family_to_u8(f: PatternFamily) -> u8 {
    match f {
        PatternFamily::LineSpace => 0,
        PatternFamily::TipToTip => 1,
        PatternFamily::Jog => 2,
        PatternFamily::Bend => 3,
        PatternFamily::ViaArray => 4,
        PatternFamily::RandomRoute => 5,
        PatternFamily::Comb => 6,
        PatternFamily::Serpentine => 7,
        PatternFamily::ViaChain => 8,
    }
}

fn family_from_u8(b: u8) -> Result<PatternFamily, PersistError> {
    Ok(match b {
        0 => PatternFamily::LineSpace,
        1 => PatternFamily::TipToTip,
        2 => PatternFamily::Jog,
        3 => PatternFamily::Bend,
        4 => PatternFamily::ViaArray,
        5 => PatternFamily::RandomRoute,
        6 => PatternFamily::Comb,
        7 => PatternFamily::Serpentine,
        8 => PatternFamily::ViaChain,
        _ => return Err(PersistError::Codec(format!("invalid pattern family {b}"))),
    })
}

fn put_image(w: &mut WireWriter, img: &BitImage) {
    w.put_usize(img.width());
    w.put_usize(img.height());
    w.put_u64_slice(img.as_words());
}

fn get_image(r: &mut WireReader<'_>) -> Result<BitImage, PersistError> {
    let width = r.get_usize()?;
    let height = r.get_usize()?;
    let words = r.get_u64_vec()?;
    BitImage::from_words(width, height, words).map_err(PersistError::Codec)
}

fn put_clips(w: &mut WireWriter, clips: &[LabeledClip]) {
    w.put_usize(clips.len());
    for clip in clips {
        put_image(w, &clip.image);
        w.put_bool(clip.hotspot);
        w.put_u8(family_to_u8(clip.family));
    }
}

fn get_clips(r: &mut WireReader<'_>) -> Result<Vec<LabeledClip>, PersistError> {
    // A clip encodes to at least width + height + word-count prefix +
    // hotspot flag + family byte = 26 bytes; bounding the clip count by
    // the remaining payload rejects hostile prefixes before allocating.
    let n = r.get_count(26)?;
    let mut clips = Vec::with_capacity(n);
    for _ in 0..n {
        let image = get_image(r)?;
        let hotspot = r.get_bool()?;
        let family = family_from_u8(r.get_u8()?)?;
        clips.push(LabeledClip {
            image,
            hotspot,
            family,
        });
    }
    Ok(clips)
}

/// Saves a compiled XNOR model.
///
/// The write is atomic and the file carries a CRC32 footer; see the
/// module docs.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
///
/// # Example
///
/// ```no_run
/// use hotspot_core::persist::{load_model, save_model};
/// # use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(0);
/// # let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let model = PackedBnn::compile(&net);
/// save_model("model.brnn".as_ref(), &model)?;
/// let restored = load_model("model.brnn".as_ref())?;
/// # let _: PackedBnn = restored;
/// # Ok::<(), hotspot_core::persist::PersistError>(())
/// ```
pub fn save_model(path: &Path, model: &PackedBnn) -> Result<(), PersistError> {
    let mut w = WireWriter::new();
    model.encode_wire(&mut w);
    save_payload(path, w)
}

/// Loads a compiled XNOR model.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, a failed
/// integrity check, or a corrupted payload.
pub fn load_model(path: &Path) -> Result<PackedBnn, PersistError> {
    let (body, multilevel) = load_payload(path)?;
    let mut r = WireReader::new(&body);
    let model = if multilevel {
        PackedBnn::decode_wire(&mut r)?
    } else {
        PackedBnn::decode_wire_v3(&mut r)?
    };
    if r.remaining() != 0 {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after model payload",
            r.remaining()
        )));
    }
    Ok(model)
}

/// Saves a labelled dataset.
///
/// The write is atomic and the file carries a CRC32 footer; see the
/// module docs.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
pub fn save_dataset(path: &Path, dataset: &SplitDataset) -> Result<(), PersistError> {
    let mut w = WireWriter::new();
    put_clips(&mut w, &dataset.train);
    put_clips(&mut w, &dataset.test);
    save_payload(path, w)
}

/// Loads a labelled dataset.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, a failed
/// integrity check, or a corrupted payload.
pub fn load_dataset(path: &Path) -> Result<SplitDataset, PersistError> {
    let (body, _) = load_payload(path)?;
    let mut r = WireReader::new(&body);
    let train = get_clips(&mut r)?;
    let test = get_clips(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after dataset payload",
            r.remaining()
        )));
    }
    Ok(SplitDataset { train, test })
}

/// Saves a training checkpoint (magic `BRNNCK03`, CRC32 footer, atomic
/// write).
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
pub fn save_checkpoint(path: &Path, ck: &TrainCheckpoint) -> Result<(), PersistError> {
    let mut w = WireWriter::new();
    ck.encode_wire(&mut w);
    save_framed(path, MAGIC_CK, w)
}

/// Loads a training checkpoint.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, a failed
/// integrity check, or a corrupted payload.
pub fn load_checkpoint(path: &Path) -> Result<TrainCheckpoint, PersistError> {
    let bytes = fs::read(path)?;
    let magic = if bytes.starts_with(MAGIC_CK) {
        MAGIC_CK
    } else if bytes.starts_with(MAGIC_CK_V2) {
        MAGIC_CK_V2
    } else if bytes.starts_with(MAGIC_CK_V1) {
        MAGIC_CK_V1
    } else {
        return Err(PersistError::BadHeader);
    };
    let body = unframe_checked(&bytes, magic)?;
    let mut r = WireReader::new(&body);
    let ck = if magic == MAGIC_CK {
        TrainCheckpoint::decode_wire(&mut r)?
    } else if magic == MAGIC_CK_V2 {
        TrainCheckpoint::decode_wire_v2(&mut r)?
    } else {
        TrainCheckpoint::decode_wire_v1(&mut r)?
    };
    if r.remaining() != 0 {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after checkpoint payload",
            r.remaining()
        )));
    }
    Ok(ck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_bnn::{BnnResNet, NetConfig};
    use hotspot_nn::{NAdam, PlateauDecay};
    use hotspot_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("brnn_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn model_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("model");
        save_model(&path, &model).expect("save");
        let restored = load_model(&path).expect("load");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_round_trip() {
        let mut img = BitImage::new(8, 8);
        img.set(3, 3, true);
        let ds = SplitDataset {
            train: vec![LabeledClip {
                image: img.clone(),
                hotspot: true,
                family: PatternFamily::Jog,
            }],
            test: vec![LabeledClip {
                image: img,
                hotspot: false,
                family: PatternFamily::ViaArray,
            }],
        };
        let path = tmp("dataset");
        save_dataset(&path, &ds).expect("save");
        let restored = load_dataset(&path).expect("load");
        assert_eq!(restored, ds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"NOTAMODELxxxxxxxxxxx").expect("write");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::BadHeader));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_model_fails_integrity_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("truncated");
        save_model(&path, &model).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("rewrite");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::BadChecksum), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_byte_fails_integrity_check() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("flipped");
        save_model(&path, &model).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::BadChecksum), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v02_artifact_still_loads() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let mut w = WireWriter::new();
        model.encode_wire_v3(&mut w);
        let mut legacy = Vec::new();
        legacy.extend_from_slice(MAGIC_V2);
        legacy.extend_from_slice(&w.into_bytes());
        let path = tmp("legacy");
        std::fs::write(&path, &legacy).expect("write");
        let restored = load_model(&path).expect("legacy load");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multilevel_model_round_trip_preserves_levels_and_function() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        assert_eq!(model.levels(), 2);
        let path = tmp("model_m2");
        save_model(&path, &model).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        assert!(bytes.starts_with(b"BRNNHS04"), "new saves use version 04");
        let restored = load_model(&path).expect("load");
        assert_eq!(restored.levels(), 2, "level count survives the disk trip");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v03_artifact_still_loads() {
        let mut rng = StdRng::seed_from_u64(15);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        // Frame a legacy-layout body under the old magic with its CRC
        // footer, exactly as a pre-04 save_model would have.
        let mut w = WireWriter::new();
        model.encode_wire_v3(&mut w);
        let body = w.into_bytes();
        let mut framed = Vec::with_capacity(MAGIC_V3.len() + body.len() + 4);
        framed.extend_from_slice(MAGIC_V3);
        framed.extend_from_slice(&body);
        let crc = crc32(&framed);
        framed.extend_from_slice(&crc.to_le_bytes());
        let path = tmp("legacy_v03");
        std::fs::write(&path, &framed).expect("write");
        let restored = load_model(&path).expect("v03 must still load");
        assert_eq!(restored.levels(), 1, "pre-level artifacts imply M = 1");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_ck02_checkpoint_still_loads() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let (params, state) = crate::checkpoint::snapshot_net(&mut net);
        // Encode the version-02 body by hand (no level count after the
        // fingerprint) and frame it under the old magic.
        let mut w = WireWriter::new();
        w.put_u32(0x5150_C0DE);
        w.put_usize(3); // completed_epochs
        w.put_usize(1); // rollbacks
        w.put_usize(params.len());
        for t in &params {
            w.put_tensor(t);
        }
        w.put_usize(state.len());
        for s in &state {
            w.put_f32_slice(s);
        }
        NAdam::new(0.03).encode_wire(&mut w);
        PlateauDecay::new(0.03, 0.5, 2).encode_wire(&mut w);
        for word in rng.state() {
            w.put_u64(word);
        }
        w.put_usize(1); // one history record, v2 layout (with duration)
        w.put_f64(0.5);
        w.put_f64(0.55);
        w.put_u32(0.03f32.to_bits());
        w.put_bool(false);
        w.put_f64(2.5);
        let body = w.into_bytes();
        let mut framed = Vec::with_capacity(MAGIC_CK_V2.len() + body.len() + 4);
        framed.extend_from_slice(MAGIC_CK_V2);
        framed.extend_from_slice(&body);
        let crc = crc32(&framed);
        framed.extend_from_slice(&crc.to_le_bytes());

        let path = tmp("legacy_ck02");
        std::fs::write(&path, &framed).expect("write");
        let restored = load_checkpoint(&path).expect("ck02 must still load");
        assert_eq!(restored.fingerprint, 0x5150_C0DE);
        assert_eq!(restored.levels, 1, "pre-level checkpoints imply M = 1");
        assert_eq!(restored.completed_epochs, 3);
        assert_eq!(restored.history[0].duration_secs, 2.5);
        // Re-saving upgrades the artifact to the current version.
        save_checkpoint(&path, &restored).expect("re-save");
        let upgraded = std::fs::read(&path).expect("read");
        assert!(upgraded.starts_with(MAGIC_CK));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multilevel_checkpoint_round_trips_through_disk() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut net = BnnResNet::new(&NetConfig::tiny(16).with_levels(2), &mut rng);
        let (params, state) = crate::checkpoint::snapshot_net(&mut net);
        let ck = TrainCheckpoint {
            fingerprint: 0x0420_0304,
            levels: 2,
            completed_epochs: 5,
            rollbacks: 0,
            params,
            state,
            optimizer: NAdam::new(0.02),
            schedule: PlateauDecay::new(0.02, 0.5, 2),
            rng: rng.state(),
            history: Vec::new(),
        };
        let path = tmp("checkpoint_m2");
        save_checkpoint(&path, &ck).expect("save");
        let restored = load_checkpoint(&path).expect("load");
        assert_eq!(restored.levels, 2);
        assert_eq!(restored.params, ck.params);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join(format!("brnn_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut rng = StdRng::seed_from_u64(8);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = dir.join("model.brnn");
        save_model(&path, &model).expect("save");
        // Overwrite an existing file too — same invariant.
        save_model(&path, &model).expect("second save");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["model.brnn".to_string()], "dir: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trip_and_cross_type_rejection() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let (params, state) = crate::checkpoint::snapshot_net(&mut net);
        let ck = TrainCheckpoint {
            fingerprint: 0x1234_5678,
            levels: 1,
            completed_epochs: 2,
            rollbacks: 0,
            params,
            state,
            optimizer: NAdam::new(0.01),
            schedule: PlateauDecay::new(0.01, 0.5, 2),
            rng: rng.state(),
            history: Vec::new(),
        };
        let path = tmp("checkpoint");
        save_checkpoint(&path, &ck).expect("save");
        let restored = load_checkpoint(&path).expect("load");
        assert_eq!(restored.fingerprint, ck.fingerprint);
        assert_eq!(restored.completed_epochs, 2);
        assert_eq!(restored.params, ck.params);
        assert_eq!(restored.rng, ck.rng);
        // A checkpoint is not a model, and vice versa.
        assert!(matches!(
            load_model(&path).unwrap_err(),
            PersistError::BadHeader
        ));
        let model_path = tmp("not_a_checkpoint");
        let model = hotspot_bnn::PackedBnn::compile(&net);
        save_model(&model_path, &model).expect("save model");
        assert!(matches!(
            load_checkpoint(&model_path).unwrap_err(),
            PersistError::BadHeader
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&model_path);
    }

    #[test]
    fn legacy_ck01_checkpoint_still_loads() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let (params, state) = crate::checkpoint::snapshot_net(&mut net);
        // Encode the version-01 body by hand (epoch records carry no
        // duration) and frame it under the old magic.
        let mut w = WireWriter::new();
        w.put_u32(0xABCD_0123);
        w.put_usize(1); // completed_epochs
        w.put_usize(0); // rollbacks
        w.put_usize(params.len());
        for t in &params {
            w.put_tensor(t);
        }
        w.put_usize(state.len());
        for s in &state {
            w.put_f32_slice(s);
        }
        NAdam::new(0.02).encode_wire(&mut w);
        PlateauDecay::new(0.02, 0.5, 2).encode_wire(&mut w);
        for word in rng.state() {
            w.put_u64(word);
        }
        w.put_usize(1); // one history record, v1 layout
        w.put_f64(0.75);
        w.put_f64(0.8);
        w.put_u32(0.02f32.to_bits());
        w.put_bool(false);
        let body = w.into_bytes();
        let mut framed = Vec::with_capacity(MAGIC_CK_V1.len() + body.len() + 4);
        framed.extend_from_slice(MAGIC_CK_V1);
        framed.extend_from_slice(&body);
        let crc = crc32(&framed);
        framed.extend_from_slice(&crc.to_le_bytes());

        let path = tmp("legacy_ck01");
        std::fs::write(&path, &framed).expect("write");
        let restored = load_checkpoint(&path).expect("ck01 must still load");
        assert_eq!(restored.fingerprint, 0xABCD_0123);
        assert_eq!(restored.completed_epochs, 1);
        assert_eq!(restored.history.len(), 1);
        assert_eq!(restored.history[0].train_loss, 0.75);
        assert_eq!(
            restored.history[0].duration_secs, 0.0,
            "missing durations default to zero"
        );
        // Re-saving upgrades the artifact to the current version.
        save_checkpoint(&path, &restored).expect("re-save");
        let upgraded = std::fs::read(&path).expect("read");
        assert!(upgraded.starts_with(MAGIC_CK));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_model("/nonexistent/definitely/missing.brnn".as_ref()).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn all_pattern_families_round_trip() {
        for b in 0..9u8 {
            let fam = family_from_u8(b).expect("family");
            assert_eq!(family_to_u8(fam), b);
        }
        assert!(family_from_u8(9).is_err());
    }
}
