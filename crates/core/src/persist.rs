//! Model and dataset persistence.
//!
//! Training the BNN and litho-labelling a dataset are the two expensive
//! steps of the pipeline; both artifacts serialize compactly so they
//! can be built once and reused:
//!
//! * a compiled [`PackedBnn`] — the deployment artifact (binary weights
//!   are stored bit-packed, so the paper-scale model is ~tens of KiB);
//! * a [`SplitDataset`] — the labelled clips (bit-packed rasters).
//!
//! The on-disk format is bincode with a short magic/version header.

use hotspot_bnn::PackedBnn;
use hotspot_layout_gen::SplitDataset;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"BRNNHS01";

/// Error from save/load operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a brnn-hotspot artifact (bad magic/version).
    BadHeader,
    /// The payload failed to (de)serialize.
    Codec(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadHeader => write!(f, "not a brnn-hotspot artifact (bad header)"),
            PersistError::Codec(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn save<T: Serialize>(path: &Path, value: &T) -> Result<(), PersistError> {
    let body = bincode::serialize(value).map_err(|e| PersistError::Codec(e.to_string()))?;
    let mut file = fs::File::create(path)?;
    file.write_all(MAGIC)?;
    file.write_all(&body)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let mut file = fs::File::open(path)?;
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic).map_err(|_| PersistError::BadHeader)?;
    if &magic != MAGIC {
        return Err(PersistError::BadHeader);
    }
    let mut body = Vec::new();
    file.read_to_end(&mut body)?;
    bincode::deserialize(&body).map_err(|e| PersistError::Codec(e.to_string()))
}

/// Saves a compiled XNOR model.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
///
/// # Example
///
/// ```no_run
/// use hotspot_core::persist::{load_model, save_model};
/// # use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(0);
/// # let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let model = PackedBnn::compile(&net);
/// save_model("model.brnn".as_ref(), &model)?;
/// let restored = load_model("model.brnn".as_ref())?;
/// # let _: PackedBnn = restored;
/// # Ok::<(), hotspot_core::persist::PersistError>(())
/// ```
pub fn save_model(path: &Path, model: &PackedBnn) -> Result<(), PersistError> {
    save(path, model)
}

/// Loads a compiled XNOR model.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, or a
/// corrupted payload.
pub fn load_model(path: &Path) -> Result<PackedBnn, PersistError> {
    load(path)
}

/// Saves a labelled dataset.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
pub fn save_dataset(path: &Path, dataset: &SplitDataset) -> Result<(), PersistError> {
    save(path, dataset)
}

/// Loads a labelled dataset.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, or a
/// corrupted payload.
pub fn load_dataset(path: &Path) -> Result<SplitDataset, PersistError> {
    load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_bnn::{BnnResNet, NetConfig};
    use hotspot_geometry::BitImage;
    use hotspot_layout_gen::{LabeledClip, PatternFamily};
    use hotspot_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("brnn_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn model_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("model");
        save_model(&path, &model).expect("save");
        let restored = load_model(&path).expect("load");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_round_trip() {
        let mut img = BitImage::new(8, 8);
        img.set(3, 3, true);
        let ds = SplitDataset {
            train: vec![LabeledClip {
                image: img.clone(),
                hotspot: true,
                family: PatternFamily::Jog,
            }],
            test: vec![LabeledClip {
                image: img,
                hotspot: false,
                family: PatternFamily::ViaArray,
            }],
        };
        let path = tmp("dataset");
        save_dataset(&path, &ds).expect("save");
        let restored = load_dataset(&path).expect("load");
        assert_eq!(restored, ds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"NOTAMODELxxxxxxxxxxx").expect("write");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::BadHeader));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_model("/nonexistent/definitely/missing.brnn".as_ref()).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
