//! Model and dataset persistence.
//!
//! Training the BNN and litho-labelling a dataset are the two expensive
//! steps of the pipeline; both artifacts serialize compactly so they
//! can be built once and reused:
//!
//! * a compiled [`PackedBnn`] — the deployment artifact (binary weights
//!   are stored bit-packed, so the paper-scale model is ~tens of KiB);
//! * a [`SplitDataset`] — the labelled clips (bit-packed rasters).
//!
//! The on-disk format is a short magic/version header followed by a
//! hand-rolled little-endian payload (see `hotspot_tensor::wire`); the
//! build environment is fully offline, so no external serialization
//! crate is involved.

use hotspot_bnn::PackedBnn;
use hotspot_geometry::BitImage;
use hotspot_layout_gen::{LabeledClip, PatternFamily, SplitDataset};
use hotspot_tensor::{WireError, WireReader, WireWriter};
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// `BRNNHS` + format version. Bumped to `02` when the payload moved
/// from bincode to the in-tree wire codec.
const MAGIC: &[u8; 8] = b"BRNNHS02";

/// Error from save/load operations.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a brnn-hotspot artifact (bad magic/version).
    BadHeader,
    /// The payload failed to (de)serialize.
    Codec(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadHeader => write!(f, "not a brnn-hotspot artifact (bad header)"),
            PersistError::Codec(m) => write!(f, "serialization error: {m}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Codec(e.0)
    }
}

fn save_payload(path: &Path, writer: WireWriter) -> Result<(), PersistError> {
    let body = writer.into_bytes();
    let mut framed = Vec::with_capacity(MAGIC.len() + body.len());
    framed.extend_from_slice(MAGIC);
    framed.extend_from_slice(&body);
    fs::write(path, framed)?;
    Ok(())
}

fn load_payload(path: &Path) -> Result<Vec<u8>, PersistError> {
    let bytes = fs::read(path)?;
    match bytes.strip_prefix(MAGIC) {
        Some(body) => Ok(body.to_vec()),
        None => Err(PersistError::BadHeader),
    }
}

fn family_to_u8(f: PatternFamily) -> u8 {
    match f {
        PatternFamily::LineSpace => 0,
        PatternFamily::TipToTip => 1,
        PatternFamily::Jog => 2,
        PatternFamily::Bend => 3,
        PatternFamily::ViaArray => 4,
        PatternFamily::RandomRoute => 5,
        PatternFamily::Comb => 6,
        PatternFamily::Serpentine => 7,
        PatternFamily::ViaChain => 8,
    }
}

fn family_from_u8(b: u8) -> Result<PatternFamily, PersistError> {
    Ok(match b {
        0 => PatternFamily::LineSpace,
        1 => PatternFamily::TipToTip,
        2 => PatternFamily::Jog,
        3 => PatternFamily::Bend,
        4 => PatternFamily::ViaArray,
        5 => PatternFamily::RandomRoute,
        6 => PatternFamily::Comb,
        7 => PatternFamily::Serpentine,
        8 => PatternFamily::ViaChain,
        _ => return Err(PersistError::Codec(format!("invalid pattern family {b}"))),
    })
}

fn put_image(w: &mut WireWriter, img: &BitImage) {
    w.put_usize(img.width());
    w.put_usize(img.height());
    w.put_u64_slice(img.as_words());
}

fn get_image(r: &mut WireReader<'_>) -> Result<BitImage, PersistError> {
    let width = r.get_usize()?;
    let height = r.get_usize()?;
    let words = r.get_u64_vec()?;
    BitImage::from_words(width, height, words).map_err(PersistError::Codec)
}

fn put_clips(w: &mut WireWriter, clips: &[LabeledClip]) {
    w.put_usize(clips.len());
    for clip in clips {
        put_image(w, &clip.image);
        w.put_bool(clip.hotspot);
        w.put_u8(family_to_u8(clip.family));
    }
}

fn get_clips(r: &mut WireReader<'_>) -> Result<Vec<LabeledClip>, PersistError> {
    let n = r.get_usize()?;
    let mut clips = Vec::new();
    for _ in 0..n {
        let image = get_image(r)?;
        let hotspot = r.get_bool()?;
        let family = family_from_u8(r.get_u8()?)?;
        clips.push(LabeledClip {
            image,
            hotspot,
            family,
        });
    }
    Ok(clips)
}

/// Saves a compiled XNOR model.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
///
/// # Example
///
/// ```no_run
/// use hotspot_core::persist::{load_model, save_model};
/// # use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(0);
/// # let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
/// let model = PackedBnn::compile(&net);
/// save_model("model.brnn".as_ref(), &model)?;
/// let restored = load_model("model.brnn".as_ref())?;
/// # let _: PackedBnn = restored;
/// # Ok::<(), hotspot_core::persist::PersistError>(())
/// ```
pub fn save_model(path: &Path, model: &PackedBnn) -> Result<(), PersistError> {
    let mut w = WireWriter::new();
    model.encode_wire(&mut w);
    save_payload(path, w)
}

/// Loads a compiled XNOR model.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, or a
/// corrupted payload.
pub fn load_model(path: &Path) -> Result<PackedBnn, PersistError> {
    let body = load_payload(path)?;
    let mut r = WireReader::new(&body);
    let model = PackedBnn::decode_wire(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after model payload",
            r.remaining()
        )));
    }
    Ok(model)
}

/// Saves a labelled dataset.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialization failure.
pub fn save_dataset(path: &Path, dataset: &SplitDataset) -> Result<(), PersistError> {
    let mut w = WireWriter::new();
    put_clips(&mut w, &dataset.train);
    put_clips(&mut w, &dataset.test);
    save_payload(path, w)
}

/// Loads a labelled dataset.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O failure, wrong file type, or a
/// corrupted payload.
pub fn load_dataset(path: &Path) -> Result<SplitDataset, PersistError> {
    let body = load_payload(path)?;
    let mut r = WireReader::new(&body);
    let train = get_clips(&mut r)?;
    let test = get_clips(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Codec(format!(
            "{} trailing bytes after dataset payload",
            r.remaining()
        )));
    }
    Ok(SplitDataset { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_bnn::{BnnResNet, NetConfig};
    use hotspot_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("brnn_persist_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn model_round_trip_preserves_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("model");
        save_model(&path, &model).expect("save");
        let restored = load_model(&path).expect("load");
        let x = Tensor::ones(&[2, 1, 16, 16]);
        assert_eq!(model.forward(&x), restored.forward(&x));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dataset_round_trip() {
        let mut img = BitImage::new(8, 8);
        img.set(3, 3, true);
        let ds = SplitDataset {
            train: vec![LabeledClip {
                image: img.clone(),
                hotspot: true,
                family: PatternFamily::Jog,
            }],
            test: vec![LabeledClip {
                image: img,
                hotspot: false,
                family: PatternFamily::ViaArray,
            }],
        };
        let path = tmp("dataset");
        save_dataset(&path, &ds).expect("save");
        let restored = load_dataset(&path).expect("load");
        assert_eq!(restored, ds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"NOTAMODELxxxxxxxxxxx").expect("write");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::BadHeader));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_model_is_codec_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let model = hotspot_bnn::PackedBnn::compile(&net);
        let path = tmp("truncated");
        save_model(&path, &model).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("rewrite");
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Codec(_)), "got {err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_model("/nonexistent/definitely/missing.brnn".as_ref()).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn all_pattern_families_round_trip() {
        for b in 0..9u8 {
            let fam = family_from_u8(b).expect("family");
            assert_eq!(family_to_u8(fam), b);
        }
        assert!(family_from_u8(9).is_err());
    }
}
