//! Full-training-state checkpoints for fault-tolerant BNN training.
//!
//! A [`TrainCheckpoint`] captures everything [`crate::BnnDetector`]
//! needs to continue a run bit-identically to one that was never
//! interrupted: the float master weights and non-trainable state
//! (batch-norm running statistics) of the [`BnnResNet`], the `NAdam`
//! moment buffers and step counter, the [`PlateauDecay`] schedule, the
//! exact RNG stream position, the per-epoch telemetry so far, and a
//! fingerprint of the training configuration so a checkpoint can never
//! silently resume under different hyperparameters.
//!
//! On-disk framing (magic, CRC footer, atomic writes) is
//! [`crate::persist`]'s job; this module defines the payload and the
//! capture/restore plumbing.

use crate::bnn_detector::{BnnTrainConfig, EpochRecord};
use hotspot_bnn::BnnResNet;
use hotspot_nn::{Layer, NAdam, PlateauDecay};
use hotspot_tensor::{crc32, Tensor, WireError, WireReader, WireWriter};
use std::path::{Path, PathBuf};

/// A complete snapshot of an in-progress training run.
///
/// `completed_epochs` counts finished epochs across both training
/// phases (standard epochs first, then biased fine-tune epochs), so a
/// checkpoint taken anywhere in the run resumes into the right phase.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Fingerprint of the trajectory-relevant configuration fields
    /// (see [`config_fingerprint`]); resume refuses a mismatch.
    pub fingerprint: u32,
    /// Residual binarization level count `M` of the network being
    /// trained.  Legacy (pre-`BRNNCK03`) checkpoints predate residual
    /// levels and load as `1`.
    pub levels: usize,
    /// Epochs fully completed (standard + biased).
    pub completed_epochs: usize,
    /// Watchdog rollbacks consumed so far.
    pub rollbacks: usize,
    /// Master weights in [`Layer::for_each_param`] visit order.
    pub params: Vec<Tensor>,
    /// Non-trainable buffers in [`Layer::for_each_state`] visit order.
    pub state: Vec<Vec<f32>>,
    /// Optimizer state (moment buffers, step counter, learning rate).
    pub optimizer: NAdam,
    /// Plateau-decay schedule state.
    pub schedule: PlateauDecay,
    /// RNG stream position at the epoch boundary.
    pub rng: [u64; 4],
    /// Per-epoch telemetry up to `completed_epochs`.
    pub history: Vec<EpochRecord>,
}

/// Fingerprints the configuration fields that determine the training
/// trajectory.
///
/// Two configs with the same fingerprint produce bit-identical runs, so
/// a checkpoint from one may resume under the other.  Knobs that do not
/// affect the trajectory (verbosity, inference path, checkpoint cadence
/// and directory, watchdog budget) are deliberately excluded.
pub fn config_fingerprint(cfg: &BnnTrainConfig) -> u32 {
    let mut w = WireWriter::new();
    w.put_usize(cfg.net.input_size);
    w.put_usize(cfg.net.stem_filters);
    w.put_usize(cfg.net.stages.len());
    for &(f, s) in &cfg.net.stages {
        w.put_usize(f);
        w.put_usize(s);
    }
    w.put_u8(match cfg.net.scaling {
        hotspot_bnn::ScalingMode::PlainSign => 0,
        hotspot_bnn::ScalingMode::Shared => 1,
        hotspot_bnn::ScalingMode::PerChannel => 2,
    });
    w.put_usize(cfg.input_size);
    w.put_usize(cfg.epochs);
    w.put_usize(cfg.bias_epochs);
    w.put_u32(cfg.epsilon.to_bits());
    w.put_usize(cfg.batch_size);
    w.put_u32(cfg.learning_rate.to_bits());
    w.put_u32(cfg.lr_decay.to_bits());
    w.put_usize(cfg.lr_patience);
    w.put_u64(cfg.validation_fraction.to_bits());
    w.put_bool(cfg.augment);
    w.put_bool(cfg.balance_classes);
    w.put_u64(cfg.seed);
    // Residual binarization levels joined the config after the
    // fingerprint scheme shipped; hashing the field only when it is
    // not the single-level default keeps every pre-existing M = 1
    // checkpoint resumable under its original fingerprint.
    if cfg.net.levels != 1 {
        w.put_usize(cfg.net.levels);
    }
    crc32(&w.into_bytes())
}

/// Copies every parameter tensor and state buffer out of `net`.
pub fn snapshot_net(net: &mut BnnResNet) -> (Vec<Tensor>, Vec<Vec<f32>>) {
    let mut params = Vec::new();
    net.for_each_param(&mut |p| params.push(p.value.clone()));
    let mut state = Vec::new();
    net.for_each_state(&mut |s| state.push(s.to_vec()));
    (params, state)
}

/// Copies parameters and state buffers back into `net`.
///
/// # Errors
///
/// Returns a message when counts or shapes disagree with the network —
/// the checkpoint was taken from a different architecture.
pub fn restore_net(
    net: &mut BnnResNet,
    params: &[Tensor],
    state: &[Vec<f32>],
) -> Result<(), String> {
    let mut count = 0usize;
    let mut shape_err = None;
    net.for_each_param(&mut |p| {
        if let Some(src) = params.get(count) {
            if src.shape() == p.value.shape() {
                p.value.as_mut_slice().copy_from_slice(src.as_slice());
            } else if shape_err.is_none() {
                shape_err = Some(format!(
                    "parameter {count} shape mismatch: checkpoint {:?} vs network {:?}",
                    src.shape(),
                    p.value.shape()
                ));
            }
        }
        count += 1;
    });
    if let Some(e) = shape_err {
        return Err(e);
    }
    if count != params.len() {
        return Err(format!(
            "parameter count mismatch: checkpoint has {}, network has {count}",
            params.len()
        ));
    }
    let mut scount = 0usize;
    let mut state_err = None;
    net.for_each_state(&mut |s| {
        if let Some(src) = state.get(scount) {
            if src.len() == s.len() {
                s.copy_from_slice(src);
            } else if state_err.is_none() {
                state_err = Some(format!(
                    "state buffer {scount} length mismatch: checkpoint {} vs network {}",
                    src.len(),
                    s.len()
                ));
            }
        }
        scount += 1;
    });
    if let Some(e) = state_err {
        return Err(e);
    }
    if scount != state.len() {
        return Err(format!(
            "state buffer count mismatch: checkpoint has {}, network has {scount}",
            state.len()
        ));
    }
    Ok(())
}

fn put_record(w: &mut WireWriter, r: &EpochRecord) {
    w.put_f64(r.train_loss);
    w.put_f64(r.val_loss);
    w.put_u32(r.learning_rate.to_bits());
    w.put_bool(r.biased);
    w.put_f64(r.duration_secs);
}

/// Decodes one epoch record.  `with_duration` selects the layout:
/// version-`02` checkpoints append the wall-clock epoch duration;
/// version-`01` records predate it and decode with a zero duration.
fn get_record(r: &mut WireReader<'_>, with_duration: bool) -> Result<EpochRecord, WireError> {
    Ok(EpochRecord {
        train_loss: r.get_f64()?,
        val_loss: r.get_f64()?,
        learning_rate: f32::from_bits(r.get_u32()?),
        biased: r.get_bool()?,
        duration_secs: if with_duration { r.get_f64()? } else { 0.0 },
    })
}

impl TrainCheckpoint {
    /// Encodes the checkpoint body (no header) into `w` (the current,
    /// version-`03` layout: residual level count after the
    /// fingerprint).
    pub fn encode_wire(&self, w: &mut WireWriter) {
        w.put_u32(self.fingerprint);
        w.put_usize(self.levels);
        w.put_usize(self.completed_epochs);
        w.put_usize(self.rollbacks);
        w.put_usize(self.params.len());
        for t in &self.params {
            w.put_tensor(t);
        }
        w.put_usize(self.state.len());
        for s in &self.state {
            w.put_f32_slice(s);
        }
        self.optimizer.encode_wire(w);
        self.schedule.encode_wire(w);
        for word in self.rng {
            w.put_u64(word);
        }
        w.put_usize(self.history.len());
        for rec in &self.history {
            put_record(w, rec);
        }
    }

    /// Decodes a checkpoint body previously written by
    /// [`encode_wire`](TrainCheckpoint::encode_wire) (the current,
    /// version-`03` layout: residual level count + per-epoch
    /// durations).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_wire_versioned(r, true, true)
    }

    /// Decodes a legacy version-`02` checkpoint body (per-epoch
    /// durations, no residual level count; levels load as `1`).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire_v2(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_wire_versioned(r, false, true)
    }

    /// Decodes a legacy version-`01` checkpoint body (no per-epoch
    /// durations, no residual level count).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated or structurally invalid
    /// input.
    pub fn decode_wire_v1(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Self::decode_wire_versioned(r, false, false)
    }

    fn decode_wire_versioned(
        r: &mut WireReader<'_>,
        with_levels: bool,
        with_duration: bool,
    ) -> Result<Self, WireError> {
        let fingerprint = r.get_u32()?;
        let levels = if with_levels { r.get_usize()? } else { 1 };
        if levels == 0 {
            return Err(WireError("checkpoint level count cannot be zero".into()));
        }
        let completed_epochs = r.get_usize()?;
        let rollbacks = r.get_usize()?;
        let n_params = r.get_count(16)?;
        let params = (0..n_params)
            .map(|_| r.get_tensor())
            .collect::<Result<Vec<_>, _>>()?;
        let n_state = r.get_count(8)?;
        let state = (0..n_state)
            .map(|_| r.get_f32_vec())
            .collect::<Result<Vec<_>, _>>()?;
        let optimizer = NAdam::decode_wire(r)?;
        let schedule = PlateauDecay::decode_wire(r)?;
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.get_u64()?;
        }
        // v02 records are 8 + 8 + 4 + 1 + 8 bytes; v01 lacks the
        // trailing duration.
        let n_hist = r.get_count(if with_duration { 29 } else { 21 })?;
        let history = (0..n_hist)
            .map(|_| get_record(r, with_duration))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TrainCheckpoint {
            fingerprint,
            levels,
            completed_epochs,
            rollbacks,
            params,
            state,
            optimizer,
            schedule,
            rng,
            history,
        })
    }
}

/// File name for the checkpoint taken after `completed_epochs` epochs.
pub fn checkpoint_file_name(completed_epochs: usize) -> String {
    format!("epoch{completed_epochs:04}.brnnck")
}

/// The most recent checkpoint in `dir`, by completed-epoch number.
///
/// Scans for files named by [`checkpoint_file_name`] and returns the
/// highest epoch, or `None` when the directory is missing or holds no
/// checkpoints.
pub fn latest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(usize, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(epoch) = name
            .strip_prefix("epoch")
            .and_then(|rest| rest.strip_suffix(".brnnck"))
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
            best = Some((epoch, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_bnn::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ck_fixture() -> TrainCheckpoint {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let (params, state) = snapshot_net(&mut net);
        TrainCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            levels: 1,
            completed_epochs: 7,
            rollbacks: 1,
            params,
            state,
            optimizer: NAdam::new(0.05),
            schedule: PlateauDecay::new(0.05, 0.5, 2),
            rng: rng.state(),
            history: vec![EpochRecord {
                train_loss: 0.5,
                val_loss: 0.6,
                learning_rate: 0.05,
                biased: false,
                duration_secs: 12.25,
            }],
        }
    }

    #[test]
    fn checkpoint_wire_round_trip() {
        let ck = ck_fixture();
        let mut w = WireWriter::new();
        ck.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = TrainCheckpoint::decode_wire(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.fingerprint, ck.fingerprint);
        assert_eq!(restored.completed_epochs, 7);
        assert_eq!(restored.rollbacks, 1);
        assert_eq!(restored.params, ck.params);
        assert_eq!(restored.state, ck.state);
        assert_eq!(restored.rng, ck.rng);
        assert_eq!(restored.history, ck.history);
    }

    #[test]
    fn legacy_v1_history_decodes_with_zero_durations() {
        let ck = ck_fixture();
        // Encode the version-01 layout by hand: identical to
        // encode_wire except epoch records carry no duration.
        let mut w = WireWriter::new();
        w.put_u32(ck.fingerprint);
        w.put_usize(ck.completed_epochs);
        w.put_usize(ck.rollbacks);
        w.put_usize(ck.params.len());
        for t in &ck.params {
            w.put_tensor(t);
        }
        w.put_usize(ck.state.len());
        for s in &ck.state {
            w.put_f32_slice(s);
        }
        ck.optimizer.encode_wire(&mut w);
        ck.schedule.encode_wire(&mut w);
        for word in ck.rng {
            w.put_u64(word);
        }
        w.put_usize(ck.history.len());
        for rec in &ck.history {
            w.put_f64(rec.train_loss);
            w.put_f64(rec.val_loss);
            w.put_u32(rec.learning_rate.to_bits());
            w.put_bool(rec.biased);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = TrainCheckpoint::decode_wire_v1(&mut r).expect("v1 decode");
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.history.len(), ck.history.len());
        assert!(restored.history[0].same_trajectory(&ck.history[0]));
        assert_eq!(restored.history[0].duration_secs, 0.0);
        // The v1 decoder applied to a v2 body (or vice versa) fails or
        // leaves bytes over instead of silently misreading.
        let mut w2 = WireWriter::new();
        ck.encode_wire(&mut w2);
        let v2_bytes = w2.into_bytes();
        let mut r2 = WireReader::new(&v2_bytes);
        let misread = TrainCheckpoint::decode_wire_v1(&mut r2);
        assert!(misread.is_err() || r2.remaining() != 0);
    }

    #[test]
    fn multilevel_checkpoint_round_trips_levels() {
        let mut ck = ck_fixture();
        ck.levels = 3;
        let mut w = WireWriter::new();
        ck.encode_wire(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = TrainCheckpoint::decode_wire(&mut r).expect("decode");
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.levels, 3);
        assert_eq!(restored.params, ck.params);
    }

    #[test]
    fn legacy_v2_body_decodes_with_single_level() {
        let ck = ck_fixture();
        // Encode the version-02 layout by hand: identical to
        // encode_wire except no level count after the fingerprint.
        let mut w = WireWriter::new();
        w.put_u32(ck.fingerprint);
        w.put_usize(ck.completed_epochs);
        w.put_usize(ck.rollbacks);
        w.put_usize(ck.params.len());
        for t in &ck.params {
            w.put_tensor(t);
        }
        w.put_usize(ck.state.len());
        for s in &ck.state {
            w.put_f32_slice(s);
        }
        ck.optimizer.encode_wire(&mut w);
        ck.schedule.encode_wire(&mut w);
        for word in ck.rng {
            w.put_u64(word);
        }
        w.put_usize(ck.history.len());
        for rec in &ck.history {
            put_record(&mut w, rec);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let restored = TrainCheckpoint::decode_wire_v2(&mut r).expect("v2 decode");
        assert_eq!(r.remaining(), 0);
        assert_eq!(restored.levels, 1, "pre-level checkpoints imply M = 1");
        assert_eq!(restored.history, ck.history);
    }

    #[test]
    fn fingerprint_ignores_default_levels_but_tracks_extra() {
        // M = 1 must hash exactly as it did before the field existed,
        // so every legacy checkpoint keeps its original fingerprint.
        let base = BnnTrainConfig::fast();
        assert_eq!(base.net.levels, 1);
        let fp = config_fingerprint(&base);
        let mut multi = base.clone();
        multi.net.levels = 2;
        assert_ne!(config_fingerprint(&multi), fp);
        let mut multi3 = base.clone();
        multi3.net.levels = 3;
        assert_ne!(config_fingerprint(&multi3), config_fingerprint(&multi));
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let ck = ck_fixture();
        let mut w = WireWriter::new();
        ck.encode_wire(&mut w);
        let bytes = w.into_bytes();
        for frac in [1, 3, 10] {
            let cut = bytes.len() * frac / 11;
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(TrainCheckpoint::decode_wire(&mut r).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn snapshot_restore_is_lossless() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let (params, state) = snapshot_net(&mut net);
        // Perturb, then restore.
        net.for_each_param(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v += 1.0;
            }
        });
        net.for_each_state(&mut |s| {
            for v in s.iter_mut() {
                *v -= 3.0;
            }
        });
        restore_net(&mut net, &params, &state).expect("restore");
        let (params2, state2) = snapshot_net(&mut net);
        assert_eq!(params, params2);
        assert_eq!(state, state2);
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut small = BnnResNet::new(&NetConfig::tiny(16), &mut rng);
        let mut big = BnnResNet::new(
            &NetConfig {
                input_size: 16,
                stem_filters: 8,
                stages: vec![(8, 1), (16, 2), (16, 2)],
                scaling: hotspot_bnn::ScalingMode::PerChannel,
                levels: 1,
            },
            &mut rng,
        );
        let (params, state) = snapshot_net(&mut small);
        assert!(restore_net(&mut big, &params, &state).is_err());
    }

    #[test]
    fn fingerprint_tracks_trajectory_fields_only() {
        let base = BnnTrainConfig::fast();
        let fp = config_fingerprint(&base);
        let mut same = base.clone();
        same.verbose = !same.verbose;
        same.checkpoint_every = 5;
        same.max_rollbacks = 9;
        assert_eq!(config_fingerprint(&same), fp);
        let mut diff = base.clone();
        diff.seed += 1;
        assert_ne!(config_fingerprint(&diff), fp);
        let mut diff2 = base.clone();
        diff2.learning_rate *= 2.0;
        assert_ne!(config_fingerprint(&diff2), fp);
    }

    #[test]
    fn latest_checkpoint_picks_highest_epoch() {
        let dir = std::env::temp_dir().join(format!("brnn_ck_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for e in [1usize, 12, 3] {
            std::fs::write(dir.join(checkpoint_file_name(e)), b"x").expect("write");
        }
        std::fs::write(dir.join("unrelated.txt"), b"y").expect("write");
        let latest = latest_checkpoint(&dir).expect("found");
        assert!(latest.ends_with("epoch0012.brnnck"));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(latest_checkpoint(&dir).is_none());
    }
}
