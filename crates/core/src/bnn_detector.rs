//! The paper's detector: a binarized residual network trained with
//! Algorithm 1, hardened with checkpointing, resume, and a divergence
//! watchdog (see DESIGN.md §"Fault-tolerant training").

use crate::checkpoint::{
    checkpoint_file_name, config_fingerprint, restore_net, snapshot_net, TrainCheckpoint,
};
use crate::detector::HotspotDetector;
use crate::persist::{load_checkpoint, save_checkpoint, PersistError};
use hotspot_bnn::{BnnResNet, ExecPlan, NetConfig, PackedBnn};
use hotspot_geometry::BitImage;
use hotspot_layout_gen::LabeledClip;
use hotspot_nn::{
    Augment, Batcher, BiasedLabels, ImageDataset, Layer, NAdam, Optimizer, PlateauDecay,
    SoftmaxCrossEntropy,
};
use hotspot_telemetry::{
    metrics, span, trace, MonotonicClock, SlotProfiler, StderrSubscriber, Timer, Value,
};
use hotspot_tensor::{Tensor, WorkspacePool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Clips per inference shard: one ExecPlan execution, one workspace.
const SHARD: usize = 64;

/// Learning-rate factor applied by the watchdog on each rollback.
const ROLLBACK_LR_FACTOR: f32 = 0.5;

/// Which forward path classifies at inference time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePath {
    /// The bit-packed XNOR engine — the paper's deployed artifact and
    /// the source of its 8× speed-up.
    #[default]
    Packed,
    /// The float-simulated binarization used during training
    /// (reference path; slower, exact per-channel scaling).
    Float,
}

/// Training configuration for [`BnnDetector`] (paper §3.3–3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct BnnTrainConfig {
    /// Network architecture.
    pub net: NetConfig,
    /// Input side length `l_s` the clips are down-sampled to.
    pub input_size: usize,
    /// Epochs of standard (hard-label) training.
    pub epochs: usize,
    /// Epochs of biased-label fine-tuning (§3.4.3).
    pub bias_epochs: usize,
    /// Biased-label ε (the paper uses 0.2).
    pub epsilon: f32,
    /// Mini-batch size (the paper uses 128).
    pub batch_size: usize,
    /// Initial learning rate (the paper quotes 0.15 on MXNet; scaled
    /// configs default lower for NAdam stability at small batch
    /// counts).
    pub learning_rate: f32,
    /// Multiplicative LR decay applied on validation-loss plateau.
    pub lr_decay: f32,
    /// Plateau patience in epochs.
    pub lr_patience: usize,
    /// Fraction of the training set held out for the plateau schedule.
    pub validation_fraction: f64,
    /// Random horizontal/vertical flip augmentation (§3.4.1).
    pub augment: bool,
    /// Oversample hotspot clips toward a 1:2 class ratio during
    /// training.  The ICCAD-2012 benchmark is ~1:14 imbalanced; the
    /// paper absorbs this with sheer data volume plus biased learning,
    /// but scaled-down datasets need explicit rebalancing to learn the
    /// minority class at all.
    pub balance_classes: bool,
    /// Inference path used by `predict_batch`.
    pub inference: InferencePath,
    /// Seed for initialisation and batching.
    pub seed: u64,
    /// Log per-epoch progress to stderr.
    pub verbose: bool,
    /// Directory that receives one `epochNNNN.brnnck` checkpoint per
    /// [`checkpoint_every`](Self::checkpoint_every) completed epochs
    /// (created on demand).  `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in epochs; the final epoch is always
    /// checkpointed when a directory is set.
    pub checkpoint_every: usize,
    /// Divergence-watchdog budget: how many times a non-finite epoch
    /// may be rolled back (with the learning rate halved) before
    /// training gives up with [`TrainError::Diverged`].
    pub max_rollbacks: usize,
    /// Test-only fault injection: poison the first batch loss of this
    /// epoch with a NaN, once (the injection disarms after the first
    /// rollback so recovery paths can be exercised deterministically).
    pub fault_nan_epoch: Option<usize>,
}

impl BnnTrainConfig {
    /// The paper-scale configuration: 12-layer network on 128×128
    /// inputs, batch 128, initial LR 0.15, plateau decay, flips,
    /// ε = 0.2.
    pub fn paper() -> Self {
        let mut net = NetConfig::paper_12layer();
        // Shared (factored) scaling keeps the float training path
        // bit-identical to the packed XNOR inference engine; the
        // paper's per-channel variant is exercised by the scaling
        // ablation (see DESIGN.md §6).
        net.scaling = hotspot_bnn::ScalingMode::Shared;
        BnnTrainConfig {
            net,
            input_size: 128,
            epochs: 30,
            bias_epochs: 4,
            epsilon: 0.2,
            batch_size: 128,
            learning_rate: 0.15,
            lr_decay: 0.5,
            lr_patience: 2,
            validation_fraction: 0.1,
            augment: true,
            balance_classes: true,
            inference: InferencePath::Packed,
            seed: 2019,
            verbose: false,
            checkpoint_dir: None,
            checkpoint_every: 1,
            max_rollbacks: 3,
            fault_nan_epoch: None,
        }
    }

    /// A laptop-scale configuration used by the benchmark harness:
    /// same 12-layer topology at reduced width on 64×64 inputs.
    pub fn bench() -> Self {
        BnnTrainConfig {
            net: NetConfig {
                input_size: 64,
                stem_filters: 8,
                stages: vec![(8, 1), (16, 2), (32, 2), (32, 2)],
                scaling: hotspot_bnn::ScalingMode::Shared,
                levels: 1,
            },
            input_size: 64,
            epochs: 20,
            bias_epochs: 2,
            epsilon: 0.2,
            batch_size: 64,
            learning_rate: 0.01,
            lr_decay: 0.5,
            lr_patience: 2,
            validation_fraction: 0.1,
            augment: true,
            balance_classes: true,
            inference: InferencePath::Packed,
            seed: 2019,
            verbose: false,
            checkpoint_dir: None,
            checkpoint_every: 1,
            max_rollbacks: 3,
            fault_nan_epoch: None,
        }
    }

    /// A minimal configuration for unit and integration tests.
    pub fn fast() -> Self {
        let mut net = NetConfig::tiny(32);
        net.scaling = hotspot_bnn::ScalingMode::Shared;
        BnnTrainConfig {
            net,
            input_size: 32,
            epochs: 12,
            bias_epochs: 1,
            epsilon: 0.2,
            batch_size: 16,
            learning_rate: 0.02,
            lr_decay: 0.5,
            lr_patience: 2,
            validation_fraction: 0.2,
            augment: false,
            balance_classes: true,
            inference: InferencePath::Packed,
            seed: 7,
            verbose: false,
            checkpoint_dir: None,
            checkpoint_every: 1,
            max_rollbacks: 3,
            fault_nan_epoch: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`TrainConfigError`] found: size mismatch with
    /// the network, empty schedule, or out-of-range hyperparameters.
    pub fn validate(&self) -> Result<(), TrainConfigError> {
        if self.input_size == 0 {
            return Err(TrainConfigError::ZeroInputSize);
        }
        if self.input_size != self.net.input_size {
            return Err(TrainConfigError::InputSizeMismatch {
                detector: self.input_size,
                net: self.net.input_size,
            });
        }
        if self.batch_size == 0 {
            return Err(TrainConfigError::ZeroBatchSize);
        }
        if self.epochs + self.bias_epochs == 0 {
            return Err(TrainConfigError::NoEpochs);
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(TrainConfigError::BadLearningRate(self.learning_rate));
        }
        if !(self.lr_decay > 0.0 && self.lr_decay < 1.0) {
            return Err(TrainConfigError::BadLrDecay(self.lr_decay));
        }
        if self.lr_patience == 0 {
            return Err(TrainConfigError::ZeroLrPatience);
        }
        if !(0.0..1.0).contains(&self.validation_fraction) {
            return Err(TrainConfigError::BadValidationFraction(
                self.validation_fraction,
            ));
        }
        if !(0.0..1.0).contains(&self.epsilon) {
            return Err(TrainConfigError::BadEpsilon(self.epsilon));
        }
        if self.checkpoint_every == 0 {
            return Err(TrainConfigError::ZeroCheckpointCadence);
        }
        self.net.check().map_err(TrainConfigError::Net)
    }
}

/// A rejected [`BnnTrainConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainConfigError {
    /// `input_size` is zero.
    ZeroInputSize,
    /// `input_size` differs from the network's configured input.
    InputSizeMismatch {
        /// The detector-level input size.
        detector: usize,
        /// The network's configured input size.
        net: usize,
    },
    /// `batch_size` is zero.
    ZeroBatchSize,
    /// Both epoch counts are zero.
    NoEpochs,
    /// Non-finite or non-positive learning rate.
    BadLearningRate(f32),
    /// `lr_decay` outside `(0, 1)`.
    BadLrDecay(f32),
    /// `lr_patience` is zero.
    ZeroLrPatience,
    /// `validation_fraction` outside `[0, 1)`.
    BadValidationFraction(f64),
    /// Biased-label ε outside `[0, 1)`.
    BadEpsilon(f32),
    /// `checkpoint_every` is zero.
    ZeroCheckpointCadence,
    /// The network architecture itself is inconsistent.
    Net(String),
}

impl fmt::Display for TrainConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainConfigError::ZeroInputSize => write!(f, "input size must be positive"),
            TrainConfigError::InputSizeMismatch { detector, net } => write!(
                f,
                "detector input size must match the network config ({detector} vs {net})"
            ),
            TrainConfigError::ZeroBatchSize => write!(f, "batch size must be positive"),
            TrainConfigError::NoEpochs => write!(f, "total epoch count must be positive"),
            TrainConfigError::BadLearningRate(lr) => {
                write!(f, "learning rate must be positive and finite, got {lr}")
            }
            TrainConfigError::BadLrDecay(d) => write!(f, "lr decay must be in (0, 1), got {d}"),
            TrainConfigError::ZeroLrPatience => write!(f, "lr patience must be positive"),
            TrainConfigError::BadValidationFraction(v) => {
                write!(f, "validation fraction must be in [0, 1), got {v}")
            }
            TrainConfigError::BadEpsilon(e) => {
                write!(f, "bias epsilon must be in [0, 1), got {e}")
            }
            TrainConfigError::ZeroCheckpointCadence => {
                write!(f, "checkpoint cadence must be positive")
            }
            TrainConfigError::Net(m) => write!(f, "network config: {m}"),
        }
    }
}

impl Error for TrainConfigError {}

/// A failed training run.
#[derive(Debug)]
pub enum TrainError {
    /// The configuration was rejected.
    Config(TrainConfigError),
    /// No training clips were provided.
    NoData,
    /// Checkpoint I/O failed.
    Persist(PersistError),
    /// A checkpoint could not be applied (fingerprint mismatch,
    /// architecture mismatch, or internally inconsistent state).
    Checkpoint(String),
    /// The watchdog exhausted its rollback budget.
    Diverged {
        /// Epoch (zero-based, counting both phases) that kept
        /// producing non-finite losses or weights.
        epoch: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Config(e) => write!(f, "invalid training configuration: {e}"),
            TrainError::NoData => write!(f, "cannot train on zero clips"),
            TrainError::Persist(e) => write!(f, "checkpoint i/o: {e}"),
            TrainError::Checkpoint(m) => write!(f, "cannot resume: {m}"),
            TrainError::Diverged { epoch, rollbacks } => write!(
                f,
                "training diverged at epoch {epoch} after {rollbacks} rollbacks"
            ),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Config(e) => Some(e),
            TrainError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for TrainError {
    fn from(e: PersistError) -> Self {
        TrainError::Persist(e)
    }
}

impl From<TrainConfigError> for TrainError {
    fn from(e: TrainConfigError) -> Self {
        TrainError::Config(e)
    }
}

/// The DAC'19 BNN hotspot detector.
///
/// Training follows Algorithm 1: forward with binarized weights and
/// activations, backward through the straight-through estimator,
/// NAdam updates of the real-valued master weights, plateau LR decay,
/// flip augmentation, and a biased-label fine-tune.  After training the
/// network is compiled to the bit-packed XNOR engine for inference.
///
/// Runs are fault-tolerant: with
/// [`checkpoint_dir`](BnnTrainConfig::checkpoint_dir) set, every epoch
/// boundary can be persisted and a killed run continued bit-identically
/// via [`resume`](BnnDetector::resume); a NaN/Inf loss or weight rolls
/// the epoch back with a halved learning rate instead of poisoning the
/// model.
pub struct BnnDetector {
    config: BnnTrainConfig,
    /// The float network mutates activation caches during a forward
    /// pass, so the reference path serialises through a mutex.  The
    /// packed path never locks it.
    net: Option<Mutex<BnnResNet>>,
    packed: Option<PackedBnn>,
    /// Reusable scratch for the packed path: each rayon worker checks
    /// out a [`hotspot_tensor::Workspace`] per shard, so steady-state
    /// batch inference recycles buffers instead of reallocating.
    ws_pool: WorkspacePool,
    history: Vec<EpochRecord>,
    rollbacks: usize,
}

/// One epoch of training telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation loss observed by the plateau schedule (equals the
    /// training loss when no validation split exists).
    pub val_loss: f64,
    /// Learning rate in effect after the schedule update.
    pub learning_rate: f32,
    /// `true` for the biased fine-tune epochs.
    pub biased: bool,
    /// Wall-clock duration of the epoch in seconds (forward, backward,
    /// optimizer and validation; checkpoint I/O excluded).  Persisted
    /// in checkpoints, so a resumed run still reports the cumulative
    /// training time of the epochs it did not re-run.  Legacy
    /// `BRNNCK01` checkpoints predate the field and load as `0.0`.
    pub duration_secs: f64,
}

impl EpochRecord {
    /// `true` when `other` describes the same training trajectory
    /// point: every field equal except the wall-clock
    /// [`duration_secs`](EpochRecord::duration_secs), which is
    /// machine- and run-dependent by nature.  This is the right
    /// comparison for resume-determinism checks.
    pub fn same_trajectory(&self, other: &EpochRecord) -> bool {
        self.train_loss == other.train_loss
            && self.val_loss == other.val_loss
            && self.learning_rate == other.learning_rate
            && self.biased == other.biased
    }
}

impl BnnDetector {
    /// Creates an untrained detector.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent; use
    /// [`try_new`](BnnDetector::try_new) for a fallible constructor.
    pub fn new(config: BnnTrainConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an untrained detector, rejecting bad configurations.
    ///
    /// # Errors
    ///
    /// Returns [`TrainConfigError`] when the configuration is
    /// inconsistent.
    pub fn try_new(config: BnnTrainConfig) -> Result<Self, TrainConfigError> {
        config.validate()?;
        Ok(BnnDetector {
            config,
            net: None,
            packed: None,
            ws_pool: WorkspacePool::new(),
            history: Vec::new(),
            rollbacks: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &BnnTrainConfig {
        &self.config
    }

    /// The trained network, once [`fit`](HotspotDetector::fit) has run.
    /// Returns a lock guard — the float path's activation caches make
    /// the network single-borrower.
    pub fn network(&self) -> Option<MutexGuard<'_, BnnResNet>> {
        // A panic in a previous borrower only poisons the lock; the
        // network state itself stays valid (forward caches are
        // overwritten per pass), so recover rather than propagate.
        self.net
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// The compiled XNOR engine, once trained.
    pub fn packed(&self) -> Option<&PackedBnn> {
        self.packed.as_ref()
    }

    /// Per-epoch training telemetry from the most recent
    /// [`fit`](HotspotDetector::fit).
    pub fn history(&self) -> &[EpochRecord] {
        &self.history
    }

    /// Watchdog rollbacks consumed by the most recent training run.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Cumulative wall-clock training time in seconds, summed over the
    /// per-epoch durations in [`history`](BnnDetector::history).  For a
    /// resumed run this includes the epochs restored from the
    /// checkpoint, so the total reflects the whole logical run rather
    /// than just the final process.
    pub fn total_training_secs(&self) -> f64 {
        self.history.iter().map(|e| e.duration_secs).sum()
    }

    /// Converts a clip image to the network's ±1 input tensor,
    /// down-sampling to `input_size` when needed.
    ///
    /// # Panics
    ///
    /// Panics when the clip side is not a positive multiple of
    /// `input_size`.
    pub fn clip_to_tensor(&self, image: &BitImage) -> Tensor {
        let side = image.width();
        let target = self.config.input_size;
        assert!(
            side >= target && side.is_multiple_of(target),
            "clip side {side} must be a multiple of the input size {target}"
        );
        let image = if side > target {
            // §3.4.1: simple down-sampling; any block coverage marks
            // the output pixel (preserves thin features).
            image.downsample(side / target, 1e-9)
        } else {
            image.clone()
        };
        Tensor::from_vec(&[1, target, target], image.to_signed_f32())
    }

    fn build_dataset(&self, clips: &[LabeledClip]) -> ImageDataset {
        let mut ds = ImageDataset::new();
        for clip in clips {
            ds.push(self.clip_to_tensor(&clip.image), usize::from(clip.hotspot));
        }
        ds
    }

    /// Trains from scratch, returning errors instead of panicking.
    ///
    /// Equivalent to [`fit`](HotspotDetector::fit) with typed failure
    /// reporting; checkpointing and the divergence watchdog are
    /// governed by the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on empty input, checkpoint I/O failure,
    /// or unrecoverable divergence.
    pub fn try_fit(&mut self, clips: &[LabeledClip]) -> Result<(), TrainError> {
        self.train_impl(clips, None)
    }

    /// Continues a checkpointed run until training completes.
    ///
    /// `clips` must be the same training clips as the original run —
    /// the dataset pipeline is deterministic, so checkpoint + clips
    /// reproduce the uninterrupted trajectory bit-for-bit.  The
    /// checkpoint stores a fingerprint of the trajectory-relevant
    /// configuration and resume refuses a mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the checkpoint cannot be loaded or
    /// applied, and on the same failures as
    /// [`try_fit`](BnnDetector::try_fit).
    pub fn resume(&mut self, path: &Path, clips: &[LabeledClip]) -> Result<(), TrainError> {
        let ck = load_checkpoint(path)?;
        self.train_impl(clips, Some(ck))
    }

    fn train_impl(
        &mut self,
        clips: &[LabeledClip],
        start: Option<TrainCheckpoint>,
    ) -> Result<(), TrainError> {
        if clips.is_empty() {
            return Err(TrainError::NoData);
        }
        let cfg = self.config.clone();
        let fingerprint = config_fingerprint(&cfg);
        let dataset = self.build_dataset(clips);
        let (train, val) = if dataset.len() >= 10 {
            let (t, v) = dataset.split_validation(cfg.validation_fraction);
            (t, Some(v))
        } else {
            (dataset, None)
        };
        // Rebalance only the training portion (after the validation
        // split, so held-out clips stay untouched and unduplicated).
        let train = if cfg.balance_classes {
            oversample_hotspots(train)
        } else {
            train
        };

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut net = BnnResNet::new(&cfg.net, &mut rng);
        let mut opt = NAdam::new(cfg.learning_rate);
        let mut sched = PlateauDecay::new(cfg.learning_rate, cfg.lr_decay, cfg.lr_patience);
        let mut history: Vec<EpochRecord> = Vec::with_capacity(cfg.epochs + cfg.bias_epochs);
        let mut completed = 0usize;
        let mut rollbacks = 0usize;
        let total_epochs = cfg.epochs + cfg.bias_epochs;

        if let Some(ck) = start {
            if ck.fingerprint != fingerprint {
                return Err(TrainError::Checkpoint(format!(
                    "checkpoint fingerprint {:08x} does not match the current configuration \
                     {fingerprint:08x} — resume requires identical training hyperparameters",
                    ck.fingerprint
                )));
            }
            if ck.levels != cfg.net.levels {
                return Err(TrainError::Checkpoint(format!(
                    "checkpoint was trained with {} residual binarization level(s) but the \
                     current configuration uses {}",
                    ck.levels, cfg.net.levels
                )));
            }
            if ck.completed_epochs > total_epochs || ck.history.len() != ck.completed_epochs {
                return Err(TrainError::Checkpoint(format!(
                    "inconsistent checkpoint: {} completed epochs, {} history records, \
                     {total_epochs} total epochs configured",
                    ck.completed_epochs,
                    ck.history.len()
                )));
            }
            restore_net(&mut net, &ck.params, &ck.state).map_err(TrainError::Checkpoint)?;
            opt = ck.optimizer;
            sched = ck.schedule;
            rng = StdRng::from_state(ck.rng);
            history = ck.history;
            completed = ck.completed_epochs;
            rollbacks = ck.rollbacks;
        }

        // Structured telemetry: events always reach the process-global
        // subscriber (a no-op when none is installed); verbose mode
        // additionally pretty-prints the same events to stderr through
        // a run-local sink so it never perturbs global state.
        let verbose_sink = cfg.verbose.then_some(StderrSubscriber);
        let emit = |name: &'static str, fields: &[trace::Field]| {
            trace::dispatch_event(name, fields);
            if let Some(sink) = &verbose_sink {
                trace::dispatch_event_to(sink, name, fields);
            }
        };
        let registry = metrics::global();
        let epochs_counter = registry.counter("train_epochs_total");
        let rollback_counter = registry.counter("train_rollbacks_total");
        let checkpoint_counter = registry.counter("train_checkpoint_writes_total");
        let epoch_hist =
            registry.histogram("train_epoch_duration_ns", &metrics::duration_ns_buckets());
        let clock = MonotonicClock;
        let _fit_span = span!(
            "train.fit",
            total_epochs = total_epochs,
            start_epoch = completed,
            clips = clips.len()
        );

        let augment = if cfg.augment {
            Augment::flips()
        } else {
            Augment::none()
        };
        let batcher = Batcher::new(&train, cfg.batch_size, augment);
        let hard = SoftmaxCrossEntropy::new();
        let biased = SoftmaxCrossEntropy::with_bias(BiasedLabels::new(cfg.epsilon));

        // Runs one epoch; `None` means a batch loss went non-finite and
        // the epoch was abandoned before the poisoned gradient step.
        let run_epoch = |net: &mut BnnResNet,
                         rng: &mut StdRng,
                         opt: &mut NAdam,
                         loss: &SoftmaxCrossEntropy,
                         inject_nan: bool|
         -> Option<f64> {
            let mut total = 0.0;
            let mut batches = 0usize;
            for (batch, classes) in batcher.batches(rng) {
                net.zero_grads();
                let logits = net.forward(&batch, true);
                let (l, grad) = loss.forward(&logits, &classes);
                let l = if inject_nan && batches == 0 {
                    f32::NAN
                } else {
                    l
                };
                if !l.is_finite() {
                    return None;
                }
                total += f64::from(l);
                batches += 1;
                let _ = net.backward(&grad);
                opt.step(net);
            }
            Some(total / batches.max(1) as f64)
        };

        while completed < total_epochs {
            let biased_phase = completed >= cfg.epochs;
            let _epoch_span = span!("train.epoch", epoch = completed, biased = biased_phase);
            let epoch_timer = Timer::start(&clock);
            // Watchdog snapshot: everything needed to replay this epoch.
            let (snap_params, snap_state) = snapshot_net(&mut net);
            let snap_opt = opt.clone();
            let snap_sched = sched.clone();
            let snap_rng = rng.state();

            let inject = cfg.fault_nan_epoch == Some(completed) && rollbacks == 0;
            let loss_fn = if biased_phase { &biased } else { &hard };
            let epoch_loss = run_epoch(&mut net, &mut rng, &mut opt, loss_fn, inject);

            let mut healthy = epoch_loss.filter(|l| l.is_finite() && net_is_finite(&mut net));
            let mut observed = f64::NAN;
            if let Some(train_loss) = healthy {
                observed = if biased_phase {
                    train_loss
                } else {
                    match &val {
                        Some(val) => validation_loss(&mut net, val, cfg.batch_size, &hard),
                        None => train_loss,
                    }
                };
                if !observed.is_finite() {
                    healthy = None;
                }
            }

            match healthy {
                Some(train_loss) => {
                    let lr = if biased_phase {
                        opt.learning_rate()
                    } else {
                        let lr = sched.observe(observed as f32);
                        opt.set_learning_rate(lr);
                        lr
                    };
                    let duration_ns = epoch_timer.elapsed_ns();
                    let duration_secs = duration_ns as f64 / 1e9;
                    history.push(EpochRecord {
                        train_loss,
                        val_loss: observed,
                        learning_rate: lr,
                        biased: biased_phase,
                        duration_secs,
                    });
                    completed += 1;
                    epochs_counter.inc();
                    epoch_hist.observe(duration_ns as f64);
                    emit(
                        "train.epoch",
                        &[
                            ("epoch", Value::from(completed - 1)),
                            ("biased", Value::from(biased_phase)),
                            ("train_loss", Value::from(train_loss)),
                            ("val_loss", Value::from(observed)),
                            ("lr", Value::from(lr)),
                            ("duration_secs", Value::from(duration_secs)),
                        ],
                    );
                    if let Some(dir) = &cfg.checkpoint_dir {
                        let due = completed.is_multiple_of(cfg.checkpoint_every)
                            || completed == total_epochs;
                        if due {
                            let (params, state) = snapshot_net(&mut net);
                            let ck = TrainCheckpoint {
                                fingerprint,
                                levels: cfg.net.levels,
                                completed_epochs: completed,
                                rollbacks,
                                params,
                                state,
                                optimizer: opt.clone(),
                                schedule: sched.clone(),
                                rng: rng.state(),
                                history: history.clone(),
                            };
                            std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
                            let ck_timer = Timer::start(&clock);
                            save_checkpoint(&dir.join(checkpoint_file_name(completed)), &ck)?;
                            checkpoint_counter.inc();
                            emit(
                                "train.checkpoint",
                                &[
                                    ("epoch", Value::from(completed)),
                                    ("write_ms", Value::from(ck_timer.elapsed_ns() as f64 / 1e6)),
                                ],
                            );
                        }
                    }
                }
                None => {
                    if rollbacks >= cfg.max_rollbacks {
                        emit(
                            "train.diverged",
                            &[
                                ("epoch", Value::from(completed)),
                                ("rollbacks", Value::from(rollbacks)),
                            ],
                        );
                        return Err(TrainError::Diverged {
                            epoch: completed,
                            rollbacks,
                        });
                    }
                    rollbacks += 1;
                    restore_net(&mut net, &snap_params, &snap_state)
                        .map_err(TrainError::Checkpoint)?;
                    opt = snap_opt;
                    sched = snap_sched;
                    rng = StdRng::from_state(snap_rng);
                    sched.scale_lr(ROLLBACK_LR_FACTOR);
                    opt.set_learning_rate(sched.learning_rate());
                    rollback_counter.inc();
                    emit(
                        "train.rollback",
                        &[
                            ("epoch", Value::from(completed)),
                            ("rollback", Value::from(rollbacks)),
                            ("max_rollbacks", Value::from(cfg.max_rollbacks)),
                            ("lr", Value::from(sched.learning_rate())),
                        ],
                    );
                }
            }
        }

        self.history = history;
        self.rollbacks = rollbacks;
        self.packed = Some(PackedBnn::compile(&net));
        self.net = Some(Mutex::new(net));
        Ok(())
    }

    /// Logit margins (hotspot − non-hotspot) through the float path.
    fn float_margins(&self, images: &[&BitImage]) -> Vec<f32> {
        let tensors: Vec<Tensor> = images.iter().map(|i| self.clip_to_tensor(i)).collect();
        let mut net = self.network().expect("detector is not trained");
        let mut out = Vec::with_capacity(images.len());
        for chunk in tensors.chunks(SHARD) {
            let logits = net.forward(&Tensor::stack(chunk), false);
            for i in 0..chunk.len() {
                out.push(logits.at(&[i, 1]) - logits.at(&[i, 0]));
            }
        }
        out
    }

    /// Logit margins through the packed XNOR path: the model is
    /// compiled once into an [`hotspot_bnn::ExecPlan`], the batch is
    /// split into [`SHARD`]-clip shards, and rayon workers run shards
    /// concurrently against the shared plan, each with a workspace
    /// checked out from the detector's pool.
    fn packed_margins(&self, images: &[&BitImage]) -> Vec<f32> {
        let packed = self.packed.as_ref().expect("detector is not trained");
        let side = self.config.input_size;
        let plan = packed.plan((side, side));
        self.margins_with_plan(&plan, images)
    }

    /// Shard-parallel logit margins through an already-compiled plan
    /// (shared by the plain packed path and both cascade stages).
    fn margins_with_plan(&self, plan: &ExecPlan<'_>, images: &[&BitImage]) -> Vec<f32> {
        let side = self.config.input_size;
        let plane = side * side;
        let shards: Vec<&[&BitImage]> = images.chunks(SHARD).collect();
        let margins: Vec<Vec<f32>> = shards
            .into_par_iter()
            .map(|shard| {
                let n = shard.len();
                let mut ws = self.ws_pool.checkout();
                let mut input = ws.take_f32(n * plane);
                for (i, img) in shard.iter().enumerate() {
                    let t = self.clip_to_tensor(img);
                    input[i * plane..(i + 1) * plane].copy_from_slice(t.as_slice());
                }
                let mut logits = ws.take_f32(n * 2);
                // Multi-clip shards go through the bit-sliced XNOR-GEMM
                // tier; it is bit-identical to per-clip execution.
                plan.run_batch_into(&input, n, &mut ws, &mut logits);
                let out: Vec<f32> = (0..n).map(|i| logits[2 * i + 1] - logits[2 * i]).collect();
                ws.give_f32(logits);
                ws.give_f32(input);
                self.ws_pool.restore(ws);
                out
            })
            .collect();
        margins.into_iter().flatten().collect()
    }

    /// Runs the packed XNOR path over `images` with per-layer timing.
    ///
    /// Identical to the packed [`score_batch`](HotspotDetector::score_batch)
    /// — same shards, same rayon workers, same workspace pool — except
    /// each worker times every execution-plan step into its own
    /// [`SlotProfiler`]; the per-worker profilers are merged into one
    /// report covering every layer of the network (`"stem"`,
    /// `"resN.conv1"`, …, `"gap"`, `"fc"`).  Returns the logit margins
    /// alongside the merged profiler so callers get timing without a
    /// second forward pass.  The unprofiled path is untouched: when you
    /// don't call this, inference pays zero instrumentation cost.
    ///
    /// # Panics
    ///
    /// Panics when called before training.
    pub fn profile_packed_inference(&self, images: &[&BitImage]) -> (Vec<f32>, SlotProfiler) {
        let packed = self.packed.as_ref().expect("detector is not trained");
        let side = self.config.input_size;
        let plan = packed.plan((side, side));
        let plane = side * side;
        let _span = span!("infer.packed_profiled", clips = images.len());
        let shards: Vec<&[&BitImage]> = images.chunks(SHARD).collect();
        let results: Vec<(Vec<f32>, SlotProfiler)> = shards
            .into_par_iter()
            .map(|shard| {
                let n = shard.len();
                let mut prof = plan.profiler();
                let mut ws = self.ws_pool.checkout();
                let mut input = ws.take_f32(n * plane);
                for (i, img) in shard.iter().enumerate() {
                    let t = self.clip_to_tensor(img);
                    input[i * plane..(i + 1) * plane].copy_from_slice(t.as_slice());
                }
                let mut logits = ws.take_f32(n * 2);
                plan.run_into_profiled(&input, n, &mut ws, &mut logits, &mut prof);
                let out: Vec<f32> = (0..n).map(|i| logits[2 * i + 1] - logits[2 * i]).collect();
                ws.give_f32(logits);
                ws.give_f32(input);
                self.ws_pool.restore(ws);
                (out, prof)
            })
            .collect();
        let mut merged = plan.profiler();
        let mut margins = Vec::with_capacity(images.len());
        for (out, prof) in results {
            margins.extend(out);
            merged.merge(&prof);
        }
        (margins, merged)
    }

    /// Classifies clips through the float (training) path.
    ///
    /// # Panics
    ///
    /// Panics when called before training.
    pub fn predict_batch_float(&self, images: &[&BitImage]) -> Vec<bool> {
        self.float_margins(images)
            .into_iter()
            .map(|m| m >= 0.0)
            .collect()
    }

    /// Classifies clips through the packed XNOR path.
    ///
    /// # Panics
    ///
    /// Panics when called before training.
    pub fn predict_batch_packed(&self, images: &[&BitImage]) -> Vec<bool> {
        self.packed_margins(images)
            .into_iter()
            .map(|m| m >= 0.0)
            .collect()
    }

    /// Two-stage cascade classification: a fast single-bit triage pass
    /// scores every clip, and only clips whose logit margin falls
    /// inside `(-threshold, threshold)` — too close to the decision
    /// boundary to trust — are re-scored by the full M-level model.
    ///
    /// Both stages run the *same* compiled model: triage is a
    /// [`plan_capped`](PackedBnn::plan_capped) execution at M = 1
    /// (bit-for-bit the classic single-level network, since level 0 of
    /// the residual stack is exactly the old representation), so the
    /// cascade costs one model in memory.  With a single-level model,
    /// or `threshold == 0`, this is identical to
    /// [`predict_batch_packed`](BnnDetector::predict_batch_packed)'s
    /// decision at M = 1.
    ///
    /// # Panics
    ///
    /// Panics when called before training, or when `threshold` is
    /// negative or non-finite.
    pub fn classify_cascade(&self, images: &[&BitImage], threshold: f32) -> Vec<bool> {
        self.classify_cascade_with_stats(images, threshold).0
    }

    /// [`classify_cascade`](BnnDetector::classify_cascade) plus the
    /// number of clips escalated to the confirmation stage — the
    /// quantity that sets the cascade's effective throughput.
    ///
    /// # Panics
    ///
    /// As [`classify_cascade`](BnnDetector::classify_cascade).
    pub fn classify_cascade_with_stats(
        &self,
        images: &[&BitImage],
        threshold: f32,
    ) -> (Vec<bool>, usize) {
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "cascade threshold must be finite and non-negative, got {threshold}"
        );
        let packed = self.packed.as_ref().expect("detector is not trained");
        let side = self.config.input_size;
        let _span = span!("infer.cascade", clips = images.len());
        let clock = MonotonicClock;
        let triage_timer = Timer::start(&clock);
        let triage = packed.plan_capped((side, side), 1);
        let margins = self.margins_with_plan(&triage, images);
        let triage_ns = triage_timer.elapsed_ns();
        let mut preds: Vec<bool> = margins.iter().map(|&m| m >= 0.0).collect();
        if packed.levels() == 1 {
            return (preds, 0);
        }
        let flagged: Vec<usize> = margins
            .iter()
            .enumerate()
            .filter(|(_, m)| m.abs() < threshold)
            .map(|(i, _)| i)
            .collect();
        let confirm_timer = Timer::start(&clock);
        if !flagged.is_empty() {
            let confirm = packed.plan((side, side));
            let flagged_images: Vec<&BitImage> = flagged.iter().map(|&i| images[i]).collect();
            for (&i, &m) in flagged
                .iter()
                .zip(&self.margins_with_plan(&confirm, &flagged_images))
            {
                preds[i] = m >= 0.0;
            }
        }
        let confirm_ns = confirm_timer.elapsed_ns();
        trace::dispatch_event(
            "infer.cascade",
            &[
                ("clips", Value::from(images.len())),
                ("escalated", Value::from(flagged.len())),
                ("levels", Value::from(packed.levels())),
                ("triage_ns", Value::from(triage_ns)),
                ("confirm_ns", Value::from(confirm_ns)),
            ],
        );
        (preds, flagged.len())
    }
}

impl HotspotDetector for BnnDetector {
    fn name(&self) -> &str {
        "DAC'19 BNN (ours)"
    }

    fn fit(&mut self, clips: &[LabeledClip]) {
        assert!(!clips.is_empty(), "cannot train on zero clips");
        if let Err(e) = self.try_fit(clips) {
            panic!("training failed: {e}");
        }
    }

    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
        match self.config.inference {
            InferencePath::Packed => self.predict_batch_packed(images),
            InferencePath::Float => self.predict_batch_float(images),
        }
    }

    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        // The logit margin (hotspot − non-hotspot) is the natural score.
        match self.config.inference {
            InferencePath::Packed => self.packed_margins(images),
            InferencePath::Float => self.float_margins(images),
        }
    }
}

/// `true` when every parameter, gradient-free state buffer, and master
/// weight in the network is finite.
fn net_is_finite(net: &mut BnnResNet) -> bool {
    let mut ok = true;
    net.for_each_param(&mut |p| {
        if ok && !p.value.as_slice().iter().all(|v| v.is_finite()) {
            ok = false;
        }
    });
    if ok {
        net.for_each_state(&mut |s| {
            if ok && !s.iter().all(|v| v.is_finite()) {
                ok = false;
            }
        });
    }
    ok
}

/// Repeats hotspot examples until the class ratio is at most 1:2.
/// The flip augmentation de-duplicates the copies during training.
fn oversample_hotspots(ds: ImageDataset) -> ImageDataset {
    let (nhs, hs) = ds.class_counts();
    if hs == 0 || nhs <= 2 * hs {
        return ds;
    }
    let repeats = nhs / (2 * hs);
    let mut out = ImageDataset::new();
    for (img, &label) in ds.images().iter().zip(ds.labels()) {
        out.push(img.clone(), label);
        if label == 1 {
            for _ in 0..repeats {
                out.push(img.clone(), 1);
            }
        }
    }
    out
}

fn validation_loss(
    net: &mut BnnResNet,
    val: &ImageDataset,
    batch_size: usize,
    loss: &SoftmaxCrossEntropy,
) -> f64 {
    let mut total = 0.0;
    let mut batches = 0usize;
    let images = val.images();
    let labels = val.labels();
    let mut i = 0;
    while i < images.len() {
        let end = (i + batch_size).min(images.len());
        let batch = Tensor::stack(&images[i..end]);
        let logits = net.forward(&batch, false);
        let (l, _) = loss.forward(&logits, &labels[i..end]);
        total += f64::from(l);
        batches += 1;
        i = end;
    }
    total / batches.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout_gen::PatternFamily;

    /// Dense vs. sparse stripe clips: a learnable toy problem.
    fn toy_clips(n: usize, side: usize) -> Vec<LabeledClip> {
        (0..n)
            .map(|i| {
                let hotspot = i % 2 == 0;
                let mut img = BitImage::new(side, side);
                let step = if hotspot { 4 } else { 12 };
                let phase = i % 3;
                let mut y = phase;
                while y < side {
                    img.fill_row_span(y, 0, side);
                    y += step;
                }
                LabeledClip {
                    image: img,
                    hotspot,
                    family: PatternFamily::LineSpace,
                }
            })
            .collect()
    }

    #[test]
    fn trains_and_beats_chance_on_toy_problem() {
        let clips = toy_clips(40, 32);
        let mut det = BnnDetector::new(BnnTrainConfig::fast());
        det.fit(&clips);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
        let preds = det.predict_batch_float(&images);
        let correct = preds
            .iter()
            .zip(&clips)
            .filter(|(p, c)| **p == c.hotspot)
            .count();
        assert!(correct > 30, "float path: {correct}/40 correct");
    }

    #[test]
    fn packed_and_float_paths_mostly_agree() {
        let clips = toy_clips(40, 32);
        let mut det = BnnDetector::new(BnnTrainConfig::fast());
        det.fit(&clips);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
        let float_preds = det.predict_batch_float(&images);
        let packed_preds = det.predict_batch_packed(&images);
        let agree = float_preds
            .iter()
            .zip(&packed_preds)
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree >= 32, "only {agree}/40 agreement");
    }

    #[test]
    fn cascade_extremes_match_triage_and_full_paths() {
        let clips = toy_clips(24, 32);
        let mut cfg = BnnTrainConfig::fast();
        cfg.net.levels = 2;
        cfg.epochs = 4;
        cfg.bias_epochs = 1;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips);
        assert_eq!(det.packed().unwrap().levels(), 2);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();

        // An infinite-for-practical-purposes threshold escalates every
        // clip, so the cascade must reproduce the full M-level path.
        let full = det.predict_batch_packed(&images);
        let (all, escalated) = det.classify_cascade_with_stats(&images, f32::MAX);
        assert_eq!(escalated, images.len());
        assert_eq!(all, full);

        // Threshold zero escalates nothing: pure single-bit triage.
        let (_, escalated) = det.classify_cascade_with_stats(&images, 0.0);
        assert_eq!(escalated, 0);
    }

    #[test]
    fn cascade_on_single_level_model_never_escalates() {
        let clips = toy_clips(20, 32);
        let mut cfg = BnnTrainConfig::fast();
        cfg.epochs = 3;
        cfg.bias_epochs = 0;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
        let (preds, escalated) = det.classify_cascade_with_stats(&images, f32::MAX);
        assert_eq!(escalated, 0, "M=1 has no confirmation stage");
        assert_eq!(preds, det.predict_batch_packed(&images));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn cascade_rejects_negative_threshold() {
        let clips = toy_clips(20, 32);
        let mut cfg = BnnTrainConfig::fast();
        cfg.epochs = 2;
        cfg.bias_epochs = 0;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
        let _ = det.classify_cascade(&images, -1.0);
    }

    #[test]
    fn downsampling_to_input_size() {
        let det = BnnDetector::new(BnnTrainConfig::fast()); // input 32
        let mut img = BitImage::new(64, 64);
        img.fill_row_span(0, 0, 64);
        let t = det.clip_to_tensor(&img);
        assert_eq!(t.shape(), &[1, 32, 32]);
        // Values are ±1.
        assert!(t.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
        // The filled row survives (any-coverage downsampling).
        assert_eq!(t.at(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn history_records_every_epoch() {
        let clips = toy_clips(24, 32);
        let mut cfg = BnnTrainConfig::fast();
        cfg.epochs = 3;
        cfg.bias_epochs = 2;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips);
        let hist = det.history();
        assert_eq!(hist.len(), 5);
        assert!(hist[..3].iter().all(|e| !e.biased));
        assert!(hist[3..].iter().all(|e| e.biased));
        assert!(hist
            .iter()
            .all(|e| e.train_loss.is_finite() && e.learning_rate > 0.0));
        // Wall-clock durations: recorded, finite, non-negative, and
        // their sum is exactly what total_training_secs reports.
        assert!(hist
            .iter()
            .all(|e| e.duration_secs.is_finite() && e.duration_secs >= 0.0));
        let sum: f64 = hist.iter().map(|e| e.duration_secs).sum();
        assert_eq!(det.total_training_secs(), sum);
        assert_eq!(det.rollbacks(), 0);
    }

    #[test]
    fn profiled_inference_matches_and_covers_all_layers() {
        let clips = toy_clips(20, 32);
        let mut det = BnnDetector::new(BnnTrainConfig::fast());
        det.fit(&clips);
        let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
        let plain = det.score_batch(&images);
        let (margins, prof) = det.profile_packed_inference(&images);
        assert_eq!(margins, plain, "profiling must not change the scores");
        let report = prof.report();
        assert_eq!(report[0].name, "stem");
        assert_eq!(report[report.len() - 1].name, "fc");
        // Every slot ran once per shard (20 clips < SHARD → one shard).
        assert!(report.iter().all(|s| s.calls == 1), "{report:?}");
        assert!(prof.total_ns() > 0 || report.iter().all(|s| s.total_ns == 0));
    }

    #[test]
    fn same_trajectory_ignores_duration_only() {
        let a = EpochRecord {
            train_loss: 0.5,
            val_loss: 0.6,
            learning_rate: 0.01,
            biased: false,
            duration_secs: 1.0,
        };
        let mut b = a;
        b.duration_secs = 99.0;
        assert!(a.same_trajectory(&b));
        b.train_loss += 1e-12;
        assert!(!a.same_trajectory(&b));
    }

    #[test]
    fn oversampling_balances_minority_class() {
        // 2 hotspots vs 22 clean: without balancing the BNN would see
        // ~8% positives; with it the effective ratio is ≥ 1:3.
        let mut clips = toy_clips(24, 32);
        for (i, c) in clips.iter_mut().enumerate() {
            c.hotspot = i < 2; // first two only
        }
        let mut cfg = BnnTrainConfig::fast();
        cfg.epochs = 2;
        cfg.validation_fraction = 0.1;
        let mut det = BnnDetector::new(cfg);
        det.fit(&clips); // must not panic; classes both present post-split
        assert!(det.packed().is_some());
    }

    #[test]
    #[should_panic(expected = "multiple of the input size")]
    fn rejects_incompatible_clip_size() {
        let det = BnnDetector::new(BnnTrainConfig::fast());
        let _ = det.clip_to_tensor(&BitImage::new(48, 48));
    }

    #[test]
    #[should_panic(expected = "not trained")]
    fn predict_before_fit_panics() {
        let det = BnnDetector::new(BnnTrainConfig::fast());
        let _ = det.predict_batch_packed(&[&BitImage::new(32, 32)]);
    }

    #[test]
    #[should_panic(expected = "must match the network config")]
    fn config_mismatch_rejected() {
        let mut cfg = BnnTrainConfig::fast();
        cfg.input_size = 64; // net still expects 32
        let _ = BnnDetector::new(cfg);
    }

    #[test]
    fn validate_returns_typed_errors() {
        let ok = BnnTrainConfig::fast();
        assert_eq!(ok.validate(), Ok(()));

        let mut c = ok.clone();
        c.input_size = 64;
        assert!(matches!(
            c.validate(),
            Err(TrainConfigError::InputSizeMismatch {
                detector: 64,
                net: 32
            })
        ));

        let mut c = ok.clone();
        c.batch_size = 0;
        assert_eq!(c.validate(), Err(TrainConfigError::ZeroBatchSize));

        let mut c = ok.clone();
        c.epochs = 0;
        c.bias_epochs = 0;
        assert_eq!(c.validate(), Err(TrainConfigError::NoEpochs));

        let mut c = ok.clone();
        c.learning_rate = f32::NAN;
        assert!(matches!(
            c.validate(),
            Err(TrainConfigError::BadLearningRate(_))
        ));

        let mut c = ok.clone();
        c.lr_decay = 1.0;
        assert!(matches!(c.validate(), Err(TrainConfigError::BadLrDecay(_))));

        let mut c = ok.clone();
        c.lr_patience = 0;
        assert_eq!(c.validate(), Err(TrainConfigError::ZeroLrPatience));

        let mut c = ok.clone();
        c.validation_fraction = 1.0;
        assert!(matches!(
            c.validate(),
            Err(TrainConfigError::BadValidationFraction(_))
        ));

        let mut c = ok.clone();
        c.epsilon = -0.1;
        assert!(matches!(c.validate(), Err(TrainConfigError::BadEpsilon(_))));

        let mut c = ok.clone();
        c.checkpoint_every = 0;
        assert_eq!(c.validate(), Err(TrainConfigError::ZeroCheckpointCadence));

        // try_new surfaces the same rejection without panicking.
        let mut c = ok.clone();
        c.input_size = 0;
        assert!(matches!(
            BnnDetector::try_new(c),
            Err(TrainConfigError::ZeroInputSize)
        ));
    }

    #[test]
    fn try_fit_rejects_empty_input() {
        let mut det = BnnDetector::new(BnnTrainConfig::fast());
        assert!(matches!(det.try_fit(&[]), Err(TrainError::NoData)));
        // And the message matches the legacy panic text.
        assert_eq!(TrainError::NoData.to_string(), "cannot train on zero clips");
    }
}
