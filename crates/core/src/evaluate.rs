//! The evaluation harness behind Table 3.

use crate::detector::HotspotDetector;
use crate::metrics::ConfusionMatrix;
use hotspot_geometry::BitImage;
use hotspot_layout_gen::LabeledClip;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The result of evaluating a detector on a test split.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Confusion matrix over the test split.
    pub confusion: ConfusionMatrix,
    /// Wall-clock inference time over the whole split (the paper's
    /// "Runtime" column).
    pub runtime: Duration,
}

impl EvalResult {
    /// Model evaluation time per instance, in seconds.
    pub fn eval_time_per_instance(&self) -> f64 {
        let n = self.confusion.total().max(1);
        self.runtime.as_secs_f64() / n as f64
    }

    /// ODST (Eq. 3) with the given lithography simulation time per
    /// flagged clip; the per-instance evaluation time is taken from the
    /// measured runtime.
    pub fn odst_seconds(&self, t_ls_seconds: f64) -> f64 {
        self.confusion
            .odst(t_ls_seconds, self.eval_time_per_instance())
    }
}

/// Per-pattern-family confusion breakdown: which geometry families a
/// detector struggles with.
///
/// # Example
///
/// ```no_run
/// # use hotspot_core::{evaluate_by_family, AdaBoostHotspotDetector};
/// # let det = AdaBoostHotspotDetector::new();
/// # let clips = vec![];
/// for (family, cm) in evaluate_by_family(&det, &clips) {
///     println!("{family:?}: accuracy {:.2}", cm.accuracy());
/// }
/// ```
pub fn evaluate_by_family<D: HotspotDetector + ?Sized>(
    detector: &D,
    clips: &[LabeledClip],
) -> BTreeMap<String, ConfusionMatrix> {
    assert!(!clips.is_empty(), "cannot evaluate on zero clips");
    let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
    let predictions = detector.predict_batch(&images);
    let mut out: BTreeMap<String, ConfusionMatrix> = BTreeMap::new();
    for (clip, &pred) in clips.iter().zip(&predictions) {
        out.entry(format!("{:?}", clip.family))
            .or_default()
            .record(clip.hotspot, pred);
    }
    out
}

/// Runs a trained detector over labelled test clips, timing inference
/// and accumulating the confusion matrix.
///
/// # Panics
///
/// Panics when `clips` is empty.
pub fn evaluate<D: HotspotDetector + ?Sized>(detector: &D, clips: &[LabeledClip]) -> EvalResult {
    assert!(!clips.is_empty(), "cannot evaluate on zero clips");
    let images: Vec<&BitImage> = clips.iter().map(|c| &c.image).collect();
    let start = Instant::now();
    let predictions = detector.predict_batch(&images);
    let runtime = start.elapsed();
    assert_eq!(predictions.len(), clips.len(), "one prediction per clip");
    let mut confusion = ConfusionMatrix::new();
    for (clip, &pred) in clips.iter().zip(&predictions) {
        confusion.record(clip.hotspot, pred);
    }
    EvalResult { confusion, runtime }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout_gen::PatternFamily;

    /// A detector that flags clips denser than a threshold.
    struct DensityThreshold(f64);

    impl HotspotDetector for DensityThreshold {
        fn name(&self) -> &str {
            "density-threshold"
        }
        fn fit(&mut self, _clips: &[LabeledClip]) {}
        fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
            images.iter().map(|i| i.density() > self.0).collect()
        }
    }

    fn clip(density_rows: usize, hotspot: bool) -> LabeledClip {
        let mut img = BitImage::new(16, 16);
        for y in 0..density_rows {
            img.fill_row_span(y, 0, 16);
        }
        LabeledClip {
            image: img,
            hotspot,
            family: PatternFamily::LineSpace,
        }
    }

    #[test]
    fn confusion_matches_known_outcomes() {
        // Detector: density > 0.5. Dense clips (12 rows) flagged,
        // sparse (2 rows) not.
        let clips = vec![
            clip(12, true),  // TP
            clip(12, false), // FP
            clip(2, true),   // FN
            clip(2, false),  // TN
        ];
        let det = DensityThreshold(0.5);
        let result = evaluate(&det, &clips);
        assert_eq!(result.confusion.tp, 1);
        assert_eq!(result.confusion.fp, 1);
        assert_eq!(result.confusion.fn_, 1);
        assert_eq!(result.confusion.tn, 1);
        assert!(result.runtime.as_nanos() > 0);
    }

    #[test]
    fn odst_uses_measured_eval_time() {
        let clips = vec![clip(12, true), clip(2, false)];
        let det = DensityThreshold(0.5);
        let result = evaluate(&det, &clips);
        let odst = result.odst_seconds(10.0);
        // One flagged clip → 10 s of simulation plus tiny eval time.
        assert!((10.0..10.1).contains(&odst), "odst {odst}");
    }

    #[test]
    #[should_panic(expected = "zero clips")]
    fn empty_split_rejected() {
        let det = DensityThreshold(0.5);
        let _ = evaluate(&det, &[]);
    }

    #[test]
    fn family_breakdown_partitions_counts() {
        let mut clips = vec![clip(12, true), clip(2, false), clip(12, false)];
        clips[1].family = PatternFamily::ViaArray;
        let det = DensityThreshold(0.5);
        let by_family = evaluate_by_family(&det, &clips);
        assert_eq!(by_family.len(), 2);
        let total: u64 = by_family.values().map(|cm| cm.total()).sum();
        assert_eq!(total, 3);
        assert!(by_family.contains_key("LineSpace"));
        assert!(by_family.contains_key("ViaArray"));
    }
}
