//! # Binarized residual neural network layout hotspot detection
//!
//! End-to-end reproduction of *"Efficient Layout Hotspot Detection via
//! Binarized Residual Neural Network"* (Jiang et al., DAC 2019): a
//! 12-layer binarized residual network classifies layout clips as
//! lithography hotspots directly from their down-sampled binary
//! images, matching the accuracy of float CNN detectors at a fraction
//! of the inference cost.
//!
//! This crate is the public face of the workspace: it wires the
//! substrates (geometry, synthetic ICCAD-2012-like data, lithography
//! oracle, tensor/NN/BNN engines, classical baselines) into detectors
//! behind one [`HotspotDetector`] trait, and provides the metrics and
//! evaluation harness used to regenerate every table and figure of the
//! paper.
//!
//! ## Quickstart
//!
//! ```no_run
//! use hotspot_core::{
//!     evaluate, BnnDetector, BnnTrainConfig, DatasetSpec, HotspotDetector, HotspotOracle,
//!     OpticalModel,
//! };
//!
//! // 1. Build a small ICCAD-2012-like dataset, labelled by litho simulation.
//! let oracle = HotspotOracle::new(OpticalModel::default());
//! let data = DatasetSpec::iccad2012_like().scaled(0.01).build(&oracle);
//!
//! // 2. Train the paper's BNN detector.
//! let mut detector = BnnDetector::new(BnnTrainConfig::fast());
//! detector.fit(&data.train);
//!
//! // 3. Evaluate: accuracy (Eq. 1), false alarms (Eq. 2), ODST (Eq. 3).
//! let result = evaluate(&mut detector, &data.test);
//! println!("{}", result.confusion);
//! println!("accuracy {:.1}%  FA {}  ODST {:.0}s",
//!     100.0 * result.confusion.accuracy(),
//!     result.confusion.false_alarms(),
//!     result.odst_seconds(10.0));
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`hotspot_geometry`] | points, rects, layouts, rasterization |
//! | [`hotspot_layout_gen`] | synthetic clips + Table-2 dataset builder |
//! | [`hotspot_litho_sim`] | SOCS-style litho simulation, ground-truth oracle |
//! | [`hotspot_tensor`] / [`hotspot_nn`] | from-scratch tensor + NN framework |
//! | [`hotspot_bnn`] | binary conv, STE training, XNOR inference |
//! | [`hotspot_baselines`] | SPIE'15 / ICCAD'16 / DAC'17 baselines |

pub mod bnn_detector;
pub mod checkpoint;
pub mod detector;
pub mod evaluate;
pub mod metrics;
pub mod persist;
pub mod roc;

pub use bnn_detector::{
    BnnDetector, BnnTrainConfig, EpochRecord, InferencePath, TrainConfigError, TrainError,
};
pub use checkpoint::{latest_checkpoint, TrainCheckpoint};
pub use detector::{
    AdaBoostHotspotDetector, CcsHotspotDetector, DctCnnHotspotDetector, HotspotDetector,
    PatternMatchHotspotDetector,
};
pub use evaluate::{evaluate, evaluate_by_family, EvalResult};
pub use metrics::ConfusionMatrix;
pub use persist::PersistError;
pub use roc::{RocCurve, RocPoint};

// Re-export the pieces users need to drive the pipeline end to end.
pub use hotspot_bnn::{
    BnnResNet, NetConfig, PackedBnn, Region, ScalingMode, ScanConfig, ScanReport, Scanner,
};
pub use hotspot_geometry::{BitImage, Layout, Point, Raster, Rect};
pub use hotspot_layout_gen::{
    generate_chip, Chip, ChipBuilder, ChipSpec, ClipGenerator, DatasetSpec, HotspotSite,
    LabeledClip, PatternFamily, SplitDataset,
};
pub use hotspot_litho_sim::{HotspotOracle, OpticalModel};
pub use hotspot_tensor::{Tensor, Workspace};
