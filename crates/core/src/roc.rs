//! Score-based evaluation: ROC curves, AUC, and ODST-optimal
//! operating points.
//!
//! The paper reports single operating points (Table 3), but every
//! detector in this workspace produces a continuous hotspot score, and
//! the accuracy ↔ false-alarm trade-off of §3.4.3 (biased learning) is
//! fundamentally a threshold choice.  This module makes that explicit:
//! sweep the threshold, trace the ROC, and pick the point that
//! minimizes the expected ODST.

use crate::metrics::ConfusionMatrix;
use serde::{Deserialize, Serialize};

/// One point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Score threshold realizing this point (predict hotspot when
    /// `score >= threshold`).
    pub threshold: f32,
    /// True-positive rate (the paper's accuracy, Eq. 1).
    pub tpr: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// The confusion matrix at this threshold.
    pub confusion: ConfusionMatrix,
}

/// A ROC curve built from scores and ground-truth labels.
///
/// # Example
///
/// ```
/// use hotspot_core::roc::RocCurve;
///
/// let scores = vec![0.9, 0.8, 0.4, 0.1];
/// let labels = vec![true, true, false, false];
/// let roc = RocCurve::from_scores(&scores, &labels);
/// assert_eq!(roc.auc(), 1.0); // perfectly separable
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the curve by sweeping the threshold over every distinct
    /// score.
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty, lengths differ, or either class is
    /// absent.
    pub fn from_scores(scores: &[f32], labels: &[bool]) -> Self {
        assert!(!scores.is_empty(), "cannot build a ROC from zero examples");
        assert_eq!(scores.len(), labels.len(), "one label per score");
        let pos = labels.iter().filter(|&&l| l).count();
        let neg = labels.len() - pos;
        assert!(pos > 0 && neg > 0, "ROC needs both classes present");

        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

        let mut points = Vec::with_capacity(scores.len() + 1);
        // Threshold above the maximum: nothing flagged.
        let mut cm = ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: neg as u64,
            fn_: pos as u64,
        };
        points.push(RocPoint {
            threshold: f32::INFINITY,
            tpr: 0.0,
            fpr: 0.0,
            confusion: cm,
        });
        let mut i = 0;
        while i < order.len() {
            let thr = scores[order[i]];
            // Absorb all examples sharing this score.
            while i < order.len() && scores[order[i]] == thr {
                if labels[order[i]] {
                    cm.tp += 1;
                    cm.fn_ -= 1;
                } else {
                    cm.fp += 1;
                    cm.tn -= 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: thr,
                tpr: cm.tp as f64 / pos as f64,
                fpr: cm.fp as f64 / neg as f64,
                confusion: cm,
            });
        }
        RocCurve { points }
    }

    /// The swept points, from strictest to loosest threshold.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve (trapezoidal rule over the swept points).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        area
    }

    /// The operating point minimizing ODST (Eq. 3) for the given
    /// lithography-simulation and evaluation times.
    ///
    /// Minimizing ODST trades the 10 s simulation cost of every flagged
    /// clip against... nothing on the miss side — Eq. 3 does not charge
    /// for missed hotspots, so the raw minimum is always "flag
    /// nothing".  Following the contest's intent, this method restricts
    /// the search to points with `tpr >= min_accuracy`.
    ///
    /// # Panics
    ///
    /// Panics when no point satisfies the accuracy floor (use 0.0 to
    /// always succeed, or [`try_odst_optimal`](Self::try_odst_optimal)
    /// for a fallible variant).
    pub fn odst_optimal(&self, t_ls: f64, t_ev: f64, min_accuracy: f64) -> RocPoint {
        self.try_odst_optimal(t_ls, t_ev, min_accuracy)
            .unwrap_or_else(|| panic!("no operating point reaches accuracy {min_accuracy}"))
    }

    /// Like [`odst_optimal`](Self::odst_optimal), but returns `None`
    /// when no swept point reaches the accuracy floor instead of
    /// panicking.
    pub fn try_odst_optimal(&self, t_ls: f64, t_ev: f64, min_accuracy: f64) -> Option<RocPoint> {
        self.points
            .iter()
            .filter(|p| p.tpr >= min_accuracy)
            .min_by(|a, b| {
                a.confusion
                    .odst(t_ls, t_ev)
                    .total_cmp(&b.confusion.odst(t_ls, t_ev))
            })
            .copied()
    }

    /// The point with maximal Youden index (tpr − fpr), a
    /// threshold-selection heuristic independent of ODST.
    pub fn youden_optimal(&self) -> RocPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| (a.tpr - a.fpr).total_cmp(&(b.tpr - b.fpr)))
            .expect("curve has at least one point")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let roc = RocCurve::from_scores(&[0.9, 0.7, 0.3, 0.2], &[true, true, false, false]);
        assert_eq!(roc.auc(), 1.0);
        let best = roc.youden_optimal();
        assert_eq!(best.tpr, 1.0);
        assert_eq!(best.fpr, 0.0);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let roc = RocCurve::from_scores(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]);
        assert_eq!(roc.auc(), 0.0);
    }

    #[test]
    fn random_interleaving_is_half() {
        let scores = [0.8, 0.7, 0.6, 0.5];
        let labels = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!((roc.auc() - 0.75).abs() < 1e-12); // 3 of 4 pairs ordered
    }

    #[test]
    fn tied_scores_move_together() {
        let roc = RocCurve::from_scores(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
        // Only two points: nothing flagged, everything flagged.
        assert_eq!(roc.points().len(), 2);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counts_conserved_along_curve() {
        let scores = [0.9, 0.1, 0.5, 0.4, 0.6];
        let labels = [true, false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels);
        for p in roc.points() {
            assert_eq!(p.confusion.total(), 5);
        }
        // The loosest threshold flags everything.
        let last = roc.points().last().expect("non-empty");
        assert_eq!(last.tpr, 1.0);
        assert_eq!(last.fpr, 1.0);
    }

    #[test]
    fn odst_optimal_respects_accuracy_floor() {
        // Scores where relaxing the threshold adds false alarms.
        let scores = [0.9, 0.8, 0.55, 0.5, 0.3];
        let labels = [true, false, true, false, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        let pt = roc.odst_optimal(10.0, 0.01, 1.0);
        assert_eq!(pt.tpr, 1.0);
        // With full recall required, two flagged negatives at best... the
        // optimum flags {0.9, 0.8, 0.55}: TP=2, FP=1.
        assert_eq!(pt.confusion.tp, 2);
        assert_eq!(pt.confusion.fp, 1);
        // Without a floor, flag nothing (Eq. 3 charges only flags).
        let free = roc.odst_optimal(10.0, 0.0, 0.0);
        assert_eq!(free.confusion.tp + free.confusion.fp, 0);
    }

    #[test]
    fn try_odst_optimal_reports_unreachable_floor() {
        let roc = RocCurve::from_scores(&[0.9, 0.7, 0.3, 0.2], &[true, true, false, false]);
        assert!(roc.try_odst_optimal(10.0, 0.01, 1.5).is_none());
        let pt = roc.try_odst_optimal(10.0, 0.01, 1.0).expect("reachable");
        assert_eq!(pt.tpr, 1.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let _ = RocCurve::from_scores(&[0.1, 0.2], &[true, true]);
    }
}
