//! The detector trait and adapters for the classical baselines.

use hotspot_baselines::{
    AdaBoostDetector, CcsBoostDetector, DctCnnConfig, DctCnnDetector, PatternMatchDetector,
};
use hotspot_geometry::BitImage;
use hotspot_layout_gen::LabeledClip;
use std::sync::Mutex;

/// A trainable layout hotspot detector.
///
/// All detectors in the workspace — the paper's BNN and the three
/// Table-3 baselines — implement this trait, which is what the
/// evaluation harness and benchmark binaries drive.
///
/// Inference takes `&self`: a trained detector can be shared across
/// threads (all implementations here are `Sync`), and batches are
/// passed as slices of borrowed clips so callers never clone images
/// just to classify them.
pub trait HotspotDetector {
    /// Human-readable name, as it appears in Table 3.
    fn name(&self) -> &str;

    /// Trains on labelled clips.
    fn fit(&mut self, clips: &[LabeledClip]);

    /// Classifies a batch of clips (`true` = hotspot).
    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool>;

    /// Continuous hotspot scores (larger = more hotspot-like).  The
    /// default quantizes predictions to 0/1; detectors override this
    /// with their real margin or probability so ROC analysis
    /// ([`crate::roc`]) is meaningful.
    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        self.predict_batch(images)
            .into_iter()
            .map(|p| if p { 1.0 } else { 0.0 })
            .collect()
    }

    /// Classifies one clip.
    fn predict(&self, image: &BitImage) -> bool {
        self.predict_batch(&[image])[0]
    }
}

fn split(clips: &[LabeledClip]) -> (Vec<&BitImage>, Vec<bool>) {
    (
        clips.iter().map(|c| &c.image).collect(),
        clips.iter().map(|c| c.hotspot).collect(),
    )
}

/// The SPIE'15 baseline behind the common trait: density-grid AdaBoost.
pub struct AdaBoostHotspotDetector {
    inner: AdaBoostDetector,
}

impl AdaBoostHotspotDetector {
    /// Creates the detector with Table-3-scale defaults.
    pub fn new() -> Self {
        AdaBoostHotspotDetector {
            inner: AdaBoostDetector::new(8, 48),
        }
    }

    /// Creates the detector with explicit grid/rounds.
    pub fn with_params(grid: usize, rounds: usize) -> Self {
        AdaBoostHotspotDetector {
            inner: AdaBoostDetector::new(grid, rounds),
        }
    }
}

impl Default for AdaBoostHotspotDetector {
    fn default() -> Self {
        AdaBoostHotspotDetector::new()
    }
}

impl HotspotDetector for AdaBoostHotspotDetector {
    fn name(&self) -> &str {
        "SPIE'15 AdaBoost"
    }

    fn fit(&mut self, clips: &[LabeledClip]) {
        let (images, labels) = split(clips);
        self.inner.fit(&images, &labels);
    }

    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
        images.iter().map(|i| self.inner.predict(i)).collect()
    }

    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        images.iter().map(|i| self.inner.score(i)).collect()
    }
}

/// The ICCAD'16 baseline behind the common trait: CCS + online
/// smooth-boosting-style learner.
pub struct CcsHotspotDetector {
    inner: CcsBoostDetector,
}

impl CcsHotspotDetector {
    /// Creates the detector with Table-3-scale defaults.
    pub fn new() -> Self {
        CcsHotspotDetector {
            inner: CcsBoostDetector::new(16, 8),
        }
    }
}

impl Default for CcsHotspotDetector {
    fn default() -> Self {
        CcsHotspotDetector::new()
    }
}

impl HotspotDetector for CcsHotspotDetector {
    fn name(&self) -> &str {
        "ICCAD'16 CCS"
    }

    fn fit(&mut self, clips: &[LabeledClip]) {
        let (images, labels) = split(clips);
        self.inner.fit(&images, &labels);
    }

    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
        images.iter().map(|i| self.inner.predict(i)).collect()
    }

    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        images.iter().map(|i| self.inner.probability(i)).collect()
    }
}

/// The DAC'17 baseline behind the common trait: DCT feature tensor +
/// float CNN with biased learning.
///
/// The inner network caches layer activations during a forward pass, so
/// `&self` inference serialises through a mutex; the DCT front end is
/// already parallel inside one batch.
pub struct DctCnnHotspotDetector {
    inner: Mutex<DctCnnDetector>,
}

impl DctCnnHotspotDetector {
    /// Creates the detector with default hyperparameters.
    pub fn new() -> Self {
        DctCnnHotspotDetector {
            inner: Mutex::new(DctCnnDetector::new(DctCnnConfig::default())),
        }
    }

    /// Creates the detector with explicit hyperparameters.
    pub fn with_config(config: DctCnnConfig) -> Self {
        DctCnnHotspotDetector {
            inner: Mutex::new(DctCnnDetector::new(config)),
        }
    }
}

impl Default for DctCnnHotspotDetector {
    fn default() -> Self {
        DctCnnHotspotDetector::new()
    }
}

impl HotspotDetector for DctCnnHotspotDetector {
    fn name(&self) -> &str {
        "DAC'17 DCT-CNN"
    }

    fn fit(&mut self, clips: &[LabeledClip]) {
        let (images, labels) = split(clips);
        // A poisoned lock only means a previous borrower panicked; the
        // detector state itself stays usable, so recover the guard.
        self.inner
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .fit(&images, &labels);
    }

    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .probabilities(images)
            .into_iter()
            .map(|p| p >= 0.5)
            .collect()
    }

    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .probabilities(images)
    }
}

/// A classical fuzzy pattern matcher behind the common trait — the
/// non-learning alternative the paper's introduction contrasts with
/// (fast, precise on seen hotspots, blind to unseen ones).
pub struct PatternMatchHotspotDetector {
    inner: PatternMatchDetector,
}

impl PatternMatchHotspotDetector {
    /// Creates the matcher with defaults tuned for 128×128 clips.
    pub fn new() -> Self {
        PatternMatchHotspotDetector {
            inner: PatternMatchDetector::new(8, 0.04),
        }
    }

    /// Creates the matcher with an explicit grid and fuzziness.
    pub fn with_params(grid: usize, fuzziness: f32) -> Self {
        PatternMatchHotspotDetector {
            inner: PatternMatchDetector::new(grid, fuzziness),
        }
    }
}

impl Default for PatternMatchHotspotDetector {
    fn default() -> Self {
        PatternMatchHotspotDetector::new()
    }
}

impl HotspotDetector for PatternMatchHotspotDetector {
    fn name(&self) -> &str {
        "Pattern matching"
    }

    fn fit(&mut self, clips: &[LabeledClip]) {
        let (images, labels) = split(clips);
        self.inner.fit(&images, &labels);
    }

    fn predict_batch(&self, images: &[&BitImage]) -> Vec<bool> {
        images.iter().map(|i| self.inner.predict(i)).collect()
    }

    fn score_batch(&self, images: &[&BitImage]) -> Vec<f32> {
        images.iter().map(|i| self.inner.score(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_layout_gen::PatternFamily;

    fn toy_clips() -> Vec<LabeledClip> {
        // Hotspots: dense stripes; clean: sparse stripes.
        (0..16)
            .map(|i| {
                let hotspot = i % 2 == 0;
                let mut img = BitImage::new(32, 32);
                let step = if hotspot { 4 } else { 12 };
                let mut y = 0;
                while y < 32 {
                    img.fill_row_span(y, 0, 32);
                    y += step;
                }
                LabeledClip {
                    image: img,
                    hotspot,
                    family: PatternFamily::LineSpace,
                }
            })
            .collect()
    }

    #[test]
    fn adaboost_adapter_end_to_end() {
        let clips = toy_clips();
        let mut det = AdaBoostHotspotDetector::with_params(4, 12);
        det.fit(&clips);
        let preds = det.predict_batch(&clips.iter().map(|c| &c.image).collect::<Vec<_>>());
        let correct = preds
            .iter()
            .zip(&clips)
            .filter(|(p, c)| **p == c.hotspot)
            .count();
        assert!(correct >= 14, "{correct}/16");
        assert_eq!(det.name(), "SPIE'15 AdaBoost");
    }

    #[test]
    fn ccs_adapter_end_to_end() {
        let clips = toy_clips();
        let mut det = CcsHotspotDetector::new();
        det.fit(&clips);
        // Training accuracy should beat chance clearly.
        let preds = det.predict_batch(&clips.iter().map(|c| &c.image).collect::<Vec<_>>());
        let correct = preds
            .iter()
            .zip(&clips)
            .filter(|(p, c)| **p == c.hotspot)
            .count();
        assert!(correct >= 12, "{correct}/16");
    }

    #[test]
    fn predict_single_matches_batch() {
        let clips = toy_clips();
        let mut det = AdaBoostHotspotDetector::with_params(4, 12);
        det.fit(&clips);
        let img = &clips[0].image;
        let single = det.predict(img);
        let batch = det.predict_batch(&[img]);
        assert_eq!(single, batch[0]);
    }
}
