//! Baseline hotspot detectors from the paper's Table 3.
//!
//! The paper compares its BNN against three prior detectors; this crate
//! implements a faithful-in-spirit version of each, on the same
//! [`BitImage`](hotspot_geometry::BitImage) clips:
//!
//! * [`AdaBoostDetector`] — SPIE'15 (Matsunawa et al.): AdaBoost over
//!   decision stumps on a simplified density-grid encoding.  Fast,
//!   lowest accuracy.
//! * [`CcsBoostDetector`] — ICCAD'16 (Zhang et al.): concentric-circle
//!   sampling features with a smooth-boosting-style linear learner and
//!   an online update pass.  High accuracy, most false alarms.
//! * [`DctCnnDetector`] — DAC'17 (Yang et al.): DCT feature tensor into
//!   a float CNN trained with biased learning.  The strongest prior
//!   work and the speed baseline for the BNN's 8× claim.
//!
//! # Example
//!
//! ```
//! use hotspot_baselines::AdaBoostDetector;
//! use hotspot_geometry::BitImage;
//!
//! let mut hotspot = BitImage::new(32, 32);
//! for y in 0..32 { hotspot.fill_row_span(y, 0, 32); }
//! let clean = BitImage::new(32, 32);
//! let images = vec![hotspot.clone(), clean.clone()];
//! let labels = vec![true, false];
//!
//! let mut det = AdaBoostDetector::new(4, 20);
//! det.fit(&images.iter().collect::<Vec<_>>(), &labels);
//! assert!(det.predict(&hotspot));
//! assert!(!det.predict(&clean));
//! ```

pub mod adaboost;
pub mod ccs_boost;
pub mod dct_cnn;
pub mod pattern_match;

pub use adaboost::{AdaBoostDetector, AdaBoostModel, Stump};
pub use ccs_boost::CcsBoostDetector;
pub use dct_cnn::{DctCnnConfig, DctCnnDetector};
pub use pattern_match::PatternMatchDetector;
