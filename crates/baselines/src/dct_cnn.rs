//! DCT feature tensor + float CNN with biased learning (the DAC'17
//! baseline).

use hotspot_features::dct_feature_tensor;
use hotspot_geometry::BitImage;
use hotspot_nn::{
    Augment, Batcher, BiasedLabels, Conv2d, Dense, Flatten, ImageDataset, Layer, MaxPool2d, NAdam,
    Optimizer, Relu, Sequential, SoftmaxCrossEntropy,
};
use hotspot_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Hyperparameters of the DAC'17-style detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DctCnnConfig {
    /// DCT block size in pixels.
    pub block: usize,
    /// Number of zigzag coefficients kept as input channels.
    pub keep: usize,
    /// Filters in the two convolution stages.
    pub channels: (usize, usize),
    /// Training epochs before the biased fine-tune.
    pub epochs: usize,
    /// Biased-learning fine-tune epochs.
    pub bias_epochs: usize,
    /// Biased-label ε (DAC'17 uses 0.2; the paper adopts the same).
    pub bias_epsilon: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// NAdam learning rate.
    pub learning_rate: f32,
    /// RNG seed for initialisation and batching.
    pub seed: u64,
    /// Oversample hotspot clips toward a 1:2 class ratio (needed on
    /// small, imbalanced datasets; DAC'17 relies on data volume plus
    /// biased learning alone).
    pub balance: bool,
}

impl Default for DctCnnConfig {
    fn default() -> Self {
        DctCnnConfig {
            block: 8,
            keep: 16,
            channels: (16, 32),
            epochs: 16,
            bias_epochs: 2,
            bias_epsilon: 0.2,
            batch_size: 64,
            learning_rate: 0.002,
            seed: 17,
            balance: true,
        }
    }
}

/// The DAC'17-style float-CNN detector.
///
/// Pipeline: block-DCT feature tensor → two conv/ReLU/max-pool stages →
/// dense classifier, trained with NAdam and finished with the biased
/// fine-tune of DAC'17.
pub struct DctCnnDetector {
    config: DctCnnConfig,
    net: Sequential,
    trained: bool,
}

impl DctCnnDetector {
    /// Creates an untrained detector.
    ///
    /// # Panics
    ///
    /// Panics when the config is internally inconsistent (zero sizes).
    pub fn new(config: DctCnnConfig) -> Self {
        assert!(config.block > 0 && config.keep > 0 && config.batch_size > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (c1, c2) = config.channels;
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(config.keep, c1, 3, 1, 1, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(c1, c2, 3, 1, 1, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            // The dense layer is sized lazily at fit time because the
            // spatial extent depends on the clip size; a placeholder of
            // the right type keeps the struct simple.
            Box::new(Relu::new()),
        ]);
        DctCnnDetector {
            config,
            net,
            trained: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DctCnnConfig {
        &self.config
    }

    /// Extracts the DCT feature tensor of a clip.
    pub fn features(&self, image: &BitImage) -> Tensor {
        dct_feature_tensor(image, self.config.block, self.config.keep)
    }

    /// Trains on labelled clips: `epochs` of standard cross entropy,
    /// then `bias_epochs` of biased-label fine-tuning.
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty, lengths disagree, or the clip side
    /// is not a multiple of `4 × block` (two pool stages).
    pub fn fit(&mut self, images: &[&BitImage], labels: &[bool]) {
        assert!(!images.is_empty(), "cannot train on zero examples");
        assert_eq!(images.len(), labels.len(), "one label per clip");

        let mut dataset = ImageDataset::new();
        for (img, &label) in images.iter().zip(labels) {
            dataset.push(self.features(img), usize::from(label));
        }
        if self.config.balance {
            let hs: Vec<&BitImage> = images
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l)
                .map(|(i, _)| *i)
                .collect();
            let nhs = images.len() - hs.len();
            if !hs.is_empty() && nhs > 2 * hs.len() {
                let repeats = nhs / (2 * hs.len());
                for _ in 0..repeats {
                    for img in &hs {
                        dataset.push(self.features(img), 1);
                    }
                }
            }
        }
        let shape = dataset.image_shape().expect("non-empty").to_vec();
        let nb = shape[1];
        assert!(
            nb.is_multiple_of(4),
            "feature grid {nb} must be divisible by 4 (two pool stages)"
        );
        let feat = self.config.channels.1 * (nb / 4) * (nb / 4);

        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        // Rebuild the network with the correctly sized classifier.
        let (c1, c2) = self.config.channels;
        let mut init_rng = StdRng::seed_from_u64(self.config.seed);
        self.net = Sequential::new(vec![
            Box::new(Conv2d::new(
                self.config.keep,
                c1,
                3,
                1,
                1,
                true,
                &mut init_rng,
            )),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(c1, c2, 3, 1, 1, true, &mut init_rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(feat, 2, &mut init_rng)),
        ]);

        let mut opt = NAdam::new(self.config.learning_rate);
        let batcher = Batcher::new(&dataset, self.config.batch_size, Augment::none());
        let hard = SoftmaxCrossEntropy::new();
        for _ in 0..self.config.epochs {
            for (batch, classes) in batcher.batches(&mut rng) {
                self.net.zero_grads();
                let logits = self.net.forward(&batch, true);
                let (_, grad) = hard.forward(&logits, &classes);
                let _ = self.net.backward(&grad);
                opt.step(&mut self.net);
            }
        }
        // Biased fine-tune (DAC'17 §biased learning).
        let biased = SoftmaxCrossEntropy::with_bias(BiasedLabels::new(self.config.bias_epsilon));
        for _ in 0..self.config.bias_epochs {
            for (batch, classes) in batcher.batches(&mut rng) {
                self.net.zero_grads();
                let logits = self.net.forward(&batch, true);
                let (_, grad) = biased.forward(&logits, &classes);
                let _ = self.net.backward(&grad);
                opt.step(&mut self.net);
            }
        }
        self.trained = true;
    }

    /// Hotspot probabilities for a batch of clips.
    ///
    /// # Panics
    ///
    /// Panics when called before [`fit`](DctCnnDetector::fit).
    pub fn probabilities(&mut self, images: &[&BitImage]) -> Vec<f32> {
        assert!(self.trained, "call fit before predicting");
        // Feature extraction dominates inference cost; parallelize it.
        let (block, keep) = (self.config.block, self.config.keep);
        let feats: Vec<Tensor> = images
            .par_iter()
            .map(|i| dct_feature_tensor(i, block, keep))
            .collect();
        let mut out = Vec::with_capacity(images.len());
        for chunk in feats.chunks(128) {
            let logits = self.net.forward(&Tensor::stack(chunk), false);
            out.extend(
                SoftmaxCrossEntropy::probabilities(&logits)
                    .into_iter()
                    .map(|p| p[1]),
            );
        }
        out
    }

    /// Classifies one clip.
    ///
    /// # Panics
    ///
    /// Panics when called before [`fit`](DctCnnDetector::fit).
    pub fn predict(&mut self, image: &BitImage) -> bool {
        self.probabilities(&[image])[0] >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn striped(dense: bool) -> BitImage {
        let mut img = BitImage::new(32, 32);
        let step = if dense { 4 } else { 10 };
        let mut y = 0;
        while y < 32 {
            img.fill_row_span(y, 0, 32);
            if y + 1 < 32 {
                img.fill_row_span(y + 1, 0, 32);
            }
            y += step;
        }
        img
    }

    fn quick_config() -> DctCnnConfig {
        DctCnnConfig {
            block: 8,
            keep: 6,
            channels: (4, 8),
            epochs: 16,
            bias_epochs: 2,
            batch_size: 8,
            learning_rate: 0.02,
            bias_epsilon: 0.05,
            seed: 5,
            balance: true,
        }
    }

    #[test]
    fn learns_stripe_density() {
        let images: Vec<BitImage> = (0..16).map(|i| striped(i % 2 == 0)).collect();
        let labels: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let mut det = DctCnnDetector::new(quick_config());
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        assert!(det.predict(&striped(true)));
        assert!(!det.predict(&striped(false)));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let images: Vec<BitImage> = (0..8).map(|i| striped(i % 2 == 0)).collect();
        let labels: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let mut det = DctCnnDetector::new(quick_config());
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        for p in det.probabilities(&images.iter().collect::<Vec<_>>()) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "call fit before")]
    fn predict_before_fit_rejected() {
        let mut det = DctCnnDetector::new(quick_config());
        let _ = det.predict(&BitImage::new(32, 32));
    }

    #[test]
    fn feature_extraction_shape() {
        let det = DctCnnDetector::new(quick_config());
        let f = det.features(&BitImage::new(32, 32));
        assert_eq!(f.shape(), &[6, 4, 4]);
    }
}
