//! CCS features + smooth-boosting-style online learner (the ICCAD'16
//! baseline).

use hotspot_features::{concentric_circle_sample, density_grid};
use hotspot_geometry::BitImage;
use serde::{Deserialize, Serialize};

/// The ICCAD'16-style detector: concentric-circle-sampling features
/// (augmented with a coarse density grid, echoing that paper's
/// information-theoretic feature optimization) feeding a margin-based
/// linear learner trained epoch-wise with per-example (online)
/// updates — a compact stand-in for smooth boosting.
///
/// The decision threshold is biased toward recall, reproducing the
/// ICCAD'16 trade-off visible in Table 3: the highest accuracy among
/// the classical baselines, at the cost of the most false alarms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcsBoostDetector {
    rings: usize,
    grid: usize,
    epochs: usize,
    learning_rate: f32,
    /// Decision threshold on the logistic score; values below 0.5 favour
    /// recall (more hotspot verdicts).
    decision_threshold: f32,
    weights: Vec<f32>,
    bias: f32,
}

impl CcsBoostDetector {
    /// Creates an untrained detector with `rings` CCS rings and a
    /// `grid × grid` density supplement.
    pub fn new(rings: usize, grid: usize) -> Self {
        assert!(rings > 0 && grid > 0);
        CcsBoostDetector {
            rings,
            grid,
            epochs: 40,
            learning_rate: 0.5,
            decision_threshold: 0.3,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// Overrides the number of training epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0);
        self.epochs = epochs;
        self
    }

    /// Overrides the recall-biased decision threshold.
    ///
    /// # Panics
    ///
    /// Panics when outside `(0, 1)`.
    pub fn with_decision_threshold(mut self, t: f32) -> Self {
        assert!(t > 0.0 && t < 1.0, "threshold must be in (0, 1)");
        self.decision_threshold = t;
        self
    }

    /// Extracts the feature vector of a clip.
    pub fn features(&self, image: &BitImage) -> Vec<f32> {
        let mut f = concentric_circle_sample(image, self.rings);
        f.extend(density_grid(image, self.grid));
        f
    }

    /// Trains with logistic online updates, visiting examples in order
    /// each epoch (the online-learning scheme of ICCAD'16 means the
    /// model can also absorb new labelled clips after deployment — see
    /// [`update_online`](CcsBoostDetector::update_online)).
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty or lengths disagree.
    pub fn fit(&mut self, images: &[&BitImage], labels: &[bool]) {
        assert!(!images.is_empty(), "cannot train on zero examples");
        assert_eq!(images.len(), labels.len(), "one label per clip");
        let features: Vec<Vec<f32>> = images.iter().map(|i| self.features(i)).collect();
        let d = features[0].len();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        // Weight positive examples by class imbalance, as boosting
        // effectively does.
        let pos = labels.iter().filter(|&&l| l).count().max(1);
        let neg = (labels.len() - pos).max(1);
        let pos_weight = (neg as f32 / pos as f32).min(20.0);
        for _ in 0..self.epochs {
            for (x, &label) in features.iter().zip(labels) {
                self.sgd_step(x, label, if label { pos_weight } else { 1.0 });
            }
        }
    }

    /// One online update on a freshly labelled clip (deployment-time
    /// learning).
    ///
    /// # Panics
    ///
    /// Panics when called before [`fit`](CcsBoostDetector::fit).
    pub fn update_online(&mut self, image: &BitImage, label: bool) {
        assert!(!self.weights.is_empty(), "call fit before update_online");
        let x = self.features(image);
        self.sgd_step(&x, label, 1.0);
    }

    fn sgd_step(&mut self, x: &[f32], label: bool, example_weight: f32) {
        let p = self.probability_from_features(x);
        let y = if label { 1.0 } else { 0.0 };
        let g = (p - y) * example_weight * self.learning_rate;
        for (w, &xi) in self.weights.iter_mut().zip(x) {
            *w -= g * xi;
        }
        self.bias -= g;
    }

    fn probability_from_features(&self, x: &[f32]) -> f32 {
        let z: f32 = self
            .weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// The hotspot probability of a clip.
    pub fn probability(&self, image: &BitImage) -> f32 {
        self.probability_from_features(&self.features(image))
    }

    /// Classifies a clip with the recall-biased threshold.
    pub fn predict(&self, image: &BitImage) -> bool {
        self.probability(image) >= self.decision_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_image(inner: bool) -> BitImage {
        let mut img = BitImage::new(32, 32);
        if inner {
            for y in 12..20 {
                img.fill_row_span(y, 12, 20);
            }
        } else {
            for y in 0..4 {
                img.fill_row_span(y, 0, 32);
            }
            for y in 28..32 {
                img.fill_row_span(y, 0, 32);
            }
        }
        img
    }

    #[test]
    fn separates_inner_from_outer_patterns() {
        let images: Vec<BitImage> = (0..12).map(|i| ring_image(i % 2 == 0)).collect();
        let labels: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
        let mut det = CcsBoostDetector::new(8, 4);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        assert!(det.predict(&ring_image(true)));
        assert!(!det.predict(&ring_image(false)));
    }

    #[test]
    fn probability_in_unit_interval() {
        let images: Vec<BitImage> = (0..4).map(|i| ring_image(i % 2 == 0)).collect();
        let labels = vec![true, false, true, false];
        let mut det = CcsBoostDetector::new(6, 2);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        let p = det.probability(&ring_image(true));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn online_update_moves_the_model() {
        let images: Vec<BitImage> = (0..4).map(|i| ring_image(i % 2 == 0)).collect();
        let labels = vec![true, false, true, false];
        let mut det = CcsBoostDetector::new(6, 2).with_epochs(5);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        let before = det.probability(&ring_image(true));
        // Repeatedly tell it the inner pattern is NOT a hotspot.
        for _ in 0..200 {
            det.update_online(&ring_image(true), false);
        }
        let after = det.probability(&ring_image(true));
        assert!(after < before, "{before} -> {after}");
    }

    #[test]
    fn recall_bias_lowers_the_bar() {
        let strict = CcsBoostDetector::new(4, 2).with_decision_threshold(0.9);
        let loose = CcsBoostDetector::new(4, 2).with_decision_threshold(0.1);
        assert!(strict.decision_threshold > loose.decision_threshold);
    }

    #[test]
    #[should_panic(expected = "call fit before")]
    fn online_before_fit_rejected() {
        let mut det = CcsBoostDetector::new(4, 2);
        det.update_online(&BitImage::new(8, 8), true);
    }
}
