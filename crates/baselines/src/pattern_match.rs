//! A fuzzy pattern-matching detector (the classical alternative the
//! paper's introduction contrasts with learning approaches).
//!
//! Pattern matchers characterize known hotspots as explicit templates
//! and flag test clips that match one.  They are fast and precise on
//! seen patterns but — as the paper notes — *"impossible to detect the
//! unseen patterns"*.  This implementation follows the grid-reduced
//! fuzzy-matching idea of Wen et al. (TCAD'14, the paper's ref \[4\]):
//! each hotspot training clip is reduced to a coarse density-grid
//! signature; a test clip is a hotspot when some stored template lies
//! within a fuzziness radius.
//!
//! Including it in the evaluation demonstrates the generalization gap
//! that motivates the learning-based detectors: recall on *novel*
//! hotspot geometry is structurally limited.

use hotspot_features::density_grid;
use hotspot_geometry::BitImage;
use serde::{Deserialize, Serialize};

/// A fuzzy pattern-matching hotspot detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternMatchDetector {
    grid: usize,
    /// Maximum mean absolute density difference for a match.
    fuzziness: f32,
    templates: Vec<Vec<f32>>,
}

impl PatternMatchDetector {
    /// Creates a matcher with a `grid × grid` signature and the given
    /// fuzziness radius (mean absolute density difference in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics when `grid` is zero or `fuzziness` is negative.
    pub fn new(grid: usize, fuzziness: f32) -> Self {
        assert!(grid > 0, "grid must be positive");
        assert!(fuzziness >= 0.0, "fuzziness must be non-negative");
        PatternMatchDetector {
            grid,
            fuzziness,
            templates: Vec::new(),
        }
    }

    /// The stored template count.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// The signature of a clip: its coarse density grid.  Flip
    /// invariance comes from storing flipped variants of each template
    /// at fit time, not from the signature itself.
    fn signature(&self, image: &BitImage) -> Vec<f32> {
        density_grid(image, self.grid)
    }

    /// Builds the template library from the hotspot training clips
    /// (non-hotspots contribute nothing — pattern matchers only encode
    /// known-bad geometry).  Near-duplicate templates are merged to
    /// keep matching fast.
    pub fn fit(&mut self, images: &[&BitImage], labels: &[bool]) {
        assert_eq!(images.len(), labels.len(), "one label per clip");
        self.templates.clear();
        let dedup_radius = self.fuzziness / 2.0;
        for (img, &hot) in images.iter().zip(labels) {
            if !hot {
                continue;
            }
            // Store the clip and its flips (matching must be
            // orientation-robust, like real PM decks).
            for variant in [(*img).clone(), img.flip_horizontal(), img.flip_vertical()] {
                let sig = self.signature(&variant);
                let dup = self
                    .templates
                    .iter()
                    .any(|t| mean_abs_diff(t, &sig) <= dedup_radius);
                if !dup {
                    self.templates.push(sig);
                }
            }
        }
    }

    /// The distance from a clip to its nearest template
    /// (`f32::INFINITY` with an empty library).
    pub fn nearest_distance(&self, image: &BitImage) -> f32 {
        let sig = self.signature(image);
        self.templates
            .iter()
            .map(|t| mean_abs_diff(t, &sig))
            .fold(f32::INFINITY, f32::min)
    }

    /// A match score in `(0, 1]`; larger = closer to a known hotspot.
    pub fn score(&self, image: &BitImage) -> f32 {
        1.0 / (1.0 + self.nearest_distance(image))
    }

    /// Flags the clip when a template matches within the fuzziness
    /// radius.
    pub fn predict(&self, image: &BitImage) -> bool {
        self.nearest_distance(image) <= self.fuzziness
    }
}

fn mean_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(step: usize) -> BitImage {
        let mut img = BitImage::new(32, 32);
        let mut y = 0;
        while y < 32 {
            img.fill_row_span(y, 0, 32);
            y += step;
        }
        img
    }

    fn blob(x0: usize, size: usize) -> BitImage {
        let mut img = BitImage::new(32, 32);
        for y in 8..8 + size {
            img.fill_row_span(y, x0, x0 + size);
        }
        img
    }

    #[test]
    fn matches_seen_patterns_exactly() {
        let images = [stripes(4), stripes(12)];
        let labels = vec![true, false];
        let mut det = PatternMatchDetector::new(8, 0.05);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        assert!(det.template_count() >= 1);
        assert!(det.predict(&stripes(4)));
        assert!(!det.predict(&stripes(12)));
    }

    #[test]
    fn matches_near_variants_within_fuzziness() {
        let mut det = PatternMatchDetector::new(4, 0.1);
        det.fit(&[&blob(8, 10)], &[true]);
        // A slightly shifted blob still matches.
        assert!(det.predict(&blob(10, 10)));
        // A very different pattern does not.
        assert!(!det.predict(&stripes(4)));
    }

    #[test]
    fn cannot_detect_unseen_geometry() {
        // The paper's core criticism: templates of horizontal-stripe
        // hotspots say nothing about an unseen blob hotspot.
        let mut det = PatternMatchDetector::new(8, 0.05);
        det.fit(&[&stripes(4)], &[true]);
        assert!(!det.predict(&blob(12, 8)));
    }

    #[test]
    fn flip_variants_are_matched() {
        let mut det = PatternMatchDetector::new(8, 0.02);
        det.fit(&[&blob(2, 8)], &[true]); // blob near the left edge
                                          // Horizontal flip puts it near the right edge; still a match.
        assert!(det.predict(&blob(2, 8).flip_horizontal()));
    }

    #[test]
    fn deduplication_bounds_library() {
        // 20 identical hotspots produce very few templates.
        let images: Vec<BitImage> = (0..20).map(|_| stripes(4)).collect();
        let labels = vec![true; 20];
        let mut det = PatternMatchDetector::new(8, 0.1);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        assert!(
            det.template_count() <= 3,
            "{} templates",
            det.template_count()
        );
    }

    #[test]
    fn empty_library_never_matches() {
        let det = PatternMatchDetector::new(4, 0.5);
        assert!(!det.predict(&stripes(4)));
        assert_eq!(det.nearest_distance(&stripes(4)), f32::INFINITY);
    }
}
