//! AdaBoost over decision stumps (the SPIE'15 baseline).

use hotspot_features::density_grid;
use hotspot_geometry::BitImage;
use serde::{Deserialize, Serialize};

/// One weak learner: a threshold on a single feature.
///
/// Predicts `+1` (hotspot) when `polarity * (x[feature] - threshold) >= 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stump {
    /// Index of the thresholded feature.
    pub feature: usize,
    /// Decision threshold.
    pub threshold: f32,
    /// `+1` or `-1`.
    pub polarity: f32,
    /// Weight of this stump in the ensemble.
    pub alpha: f32,
}

impl Stump {
    fn predict(&self, x: &[f32]) -> f32 {
        if self.polarity * (x[self.feature] - self.threshold) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// A trained AdaBoost ensemble over feature vectors.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostModel {
    stumps: Vec<Stump>,
}

impl AdaBoostModel {
    /// Trains `rounds` stumps with the classic discrete AdaBoost
    /// reweighting.
    ///
    /// `labels[i]` is `true` for hotspots.  Training greedily picks, at
    /// each round, the stump with minimal weighted error over all
    /// features and candidate thresholds (feature midpoints).
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty or lengths disagree.
    pub fn fit(features: &[Vec<f32>], labels: &[bool], rounds: usize) -> Self {
        assert!(!features.is_empty(), "cannot train on zero examples");
        assert_eq!(features.len(), labels.len(), "one label per example");
        let n = features.len();
        let d = features[0].len();
        assert!(features.iter().all(|f| f.len() == d), "ragged features");
        let y: Vec<f32> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let mut weights = vec![1.0f64 / n as f64; n];
        let mut stumps = Vec::with_capacity(rounds);

        // Pre-sort example indices by each feature once; each round
        // then finds the optimal threshold per feature with a single
        // weighted prefix scan (O(d·n) per round).
        let mut order: Vec<Vec<u32>> = Vec::with_capacity(d);
        #[allow(clippy::needless_range_loop)] // j is the feature id, not just an index
        for j in 0..d {
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| features[a as usize][j].total_cmp(&features[b as usize][j]));
            order.push(idx);
        }

        for _ in 0..rounds {
            let total_pos: f64 = (0..n).filter(|&i| y[i] > 0.0).map(|i| weights[i]).sum();
            let total_neg = 1.0 - total_pos;
            let mut best: Option<(f64, Stump)> = None;
            for j in 0..d {
                // Sweep the threshold from below the minimum upward.
                // For polarity +1 (predict + when x >= thr): examples
                // below the threshold are predicted −.
                // err(+1, thr) = (pos weight below thr) + (neg weight at/above thr).
                let mut pos_below = 0.0f64;
                let mut neg_below = 0.0f64;
                // Threshold below everything.
                let consider = |err_plus: f64, thr: f32, best: &mut Option<(f64, Stump)>| {
                    for (polarity, err) in [(1.0f32, err_plus), (-1.0, 1.0 - err_plus)] {
                        if best.as_ref().is_none_or(|(e, _)| err < *e) {
                            *best = Some((
                                err,
                                Stump {
                                    feature: j,
                                    threshold: thr,
                                    polarity,
                                    alpha: 0.0,
                                },
                            ));
                        }
                    }
                };
                let first_val = features[order[j][0] as usize][j];
                consider(total_neg, first_val - 1.0, &mut best);
                let idxs = &order[j];
                let mut i = 0;
                while i < n {
                    let v = features[idxs[i] as usize][j];
                    // Absorb ties.
                    while i < n && features[idxs[i] as usize][j] == v {
                        let e = idxs[i] as usize;
                        if y[e] > 0.0 {
                            pos_below += weights[e];
                        } else {
                            neg_below += weights[e];
                        }
                        i += 1;
                    }
                    let thr = if i < n {
                        (v + features[idxs[i] as usize][j]) / 2.0
                    } else {
                        v + 1.0
                    };
                    let err_plus = pos_below + (total_neg - neg_below);
                    consider(err_plus, thr, &mut best);
                }
            }
            let (err, mut stump) = best.expect("at least one candidate stump");
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                break; // no weak learner better than chance remains
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            stump.alpha = alpha as f32;
            // Reweight.
            let mut z = 0.0f64;
            for i in 0..n {
                let margin = y[i] as f64 * stump.predict(&features[i]) as f64;
                weights[i] *= (-alpha * margin).exp();
                z += weights[i];
            }
            for w in &mut weights {
                *w /= z;
            }
            stumps.push(stump);
        }
        AdaBoostModel { stumps }
    }

    /// The ensemble margin (positive ⇒ hotspot).
    pub fn score(&self, x: &[f32]) -> f32 {
        self.stumps.iter().map(|s| s.alpha * s.predict(x)).sum()
    }

    /// Hard classification.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.score(x) >= 0.0
    }

    /// The trained stumps.
    pub fn stumps(&self) -> &[Stump] {
        &self.stumps
    }
}

/// The SPIE'15-style detector: density-grid features + AdaBoost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostDetector {
    grid: usize,
    rounds: usize,
    model: AdaBoostModel,
}

impl AdaBoostDetector {
    /// Creates an untrained detector using a `grid × grid` density
    /// encoding and `rounds` boosting rounds.
    pub fn new(grid: usize, rounds: usize) -> Self {
        assert!(grid > 0 && rounds > 0);
        AdaBoostDetector {
            grid,
            rounds,
            model: AdaBoostModel::default(),
        }
    }

    /// Extracts this detector's feature vector from a clip.
    pub fn features(&self, image: &BitImage) -> Vec<f32> {
        density_grid(image, self.grid)
    }

    /// Trains on labelled clips (`true` = hotspot).
    ///
    /// # Panics
    ///
    /// Panics when inputs are empty or lengths disagree.
    pub fn fit(&mut self, images: &[&BitImage], labels: &[bool]) {
        let features: Vec<Vec<f32>> = images.iter().map(|i| self.features(i)).collect();
        self.model = AdaBoostModel::fit(&features, labels, self.rounds);
    }

    /// The ensemble margin for a clip.
    pub fn score(&self, image: &BitImage) -> f32 {
        self.model.score(&self.features(image))
    }

    /// Classifies a clip.
    pub fn predict(&self, image: &BitImage) -> bool {
        self.score(image) >= 0.0
    }

    /// The underlying ensemble.
    pub fn model(&self) -> &AdaBoostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_single_feature_split() {
        // Feature 1 separates the classes perfectly.
        let features: Vec<Vec<f32>> = vec![
            vec![0.5, 0.1],
            vec![0.2, 0.2],
            vec![0.9, 0.8],
            vec![0.1, 0.9],
        ];
        let labels = vec![false, false, true, true];
        let model = AdaBoostModel::fit(&features, &labels, 5);
        for (f, &l) in features.iter().zip(&labels) {
            assert_eq!(model.predict(f), l);
        }
    }

    #[test]
    fn boosting_combines_weak_stumps() {
        // An interval concept (positive iff x ∈ [0.4, 0.6]) needs at
        // least two stumps; boosting should reach high accuracy.
        let xs = [0.0f32, 0.1, 0.2, 0.3, 0.45, 0.5, 0.55, 0.7, 0.8, 0.9];
        let features: Vec<Vec<f32>> = xs.iter().map(|&x| vec![x]).collect();
        let labels: Vec<bool> = xs.iter().map(|&x| (0.4..=0.6).contains(&x)).collect();
        let model = AdaBoostModel::fit(&features, &labels, 40);
        let correct = features
            .iter()
            .zip(&labels)
            .filter(|(f, &l)| model.predict(f) == l)
            .count();
        assert!(correct >= 9, "only {correct}/10 correct");
        assert!(model.stumps().len() >= 2, "interval needs ≥2 stumps");
    }

    #[test]
    fn detector_on_images() {
        // Hotspots: dense left half. Clean: dense right half.
        let mk = |left: bool| {
            let mut img = BitImage::new(16, 16);
            for y in 0..16 {
                if left {
                    img.fill_row_span(y, 0, 8);
                } else {
                    img.fill_row_span(y, 8, 16);
                }
            }
            img
        };
        let images: Vec<BitImage> = (0..10).map(|i| mk(i % 2 == 0)).collect();
        let labels: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let mut det = AdaBoostDetector::new(4, 10);
        det.fit(&images.iter().collect::<Vec<_>>(), &labels);
        assert!(det.predict(&mk(true)));
        assert!(!det.predict(&mk(false)));
        assert!(!det.model().stumps().is_empty());
    }

    #[test]
    fn perfect_stump_stops_early() {
        let features = vec![vec![0.0], vec![1.0]];
        let labels = vec![false, true];
        let model = AdaBoostModel::fit(&features, &labels, 50);
        // One perfect stump drives training error to zero; a second
        // round finds err=0 again. Either way, far fewer than 50.
        assert!(model.stumps().len() <= 50);
        assert!(model.predict(&[1.0]));
        assert!(!model.predict(&[0.0]));
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_training_rejected() {
        AdaBoostModel::fit(&[], &[], 3);
    }
}
