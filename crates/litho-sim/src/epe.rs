//! Edge-placement-error (EPE) measurement.
//!
//! EPE is the standard lithography fidelity metric: the signed distance
//! between a drawn (design) edge and the printed resist contour,
//! measured along the edge normal.  Negative values mean the printed
//! feature retracted inside the drawn edge (necking / pull-back),
//! positive values mean it bulged outside (potential bridging).
//!
//! The hotspot oracle's bridge/open checks are topological; EPE adds a
//! quantitative severity measure and is what an OPC flow would try to
//! drive to zero.

use hotspot_geometry::{BitImage, Rect};
use serde::{Deserialize, Serialize};

/// Summary statistics over the sampled edge placement errors, in
/// pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpeStats {
    /// Number of edge sample points measured.
    pub samples: usize,
    /// Mean signed EPE.
    pub mean: f64,
    /// Largest outward excursion (bulge).
    pub max: f64,
    /// Largest inward excursion (pull-back), as a negative number.
    pub min: f64,
    /// Fraction of samples whose |EPE| exceeded the tolerance.
    pub violations: f64,
}

/// Measures EPE for every design edge of `rects` against a printed
/// image, sampling one point per pixel of edge length.
///
/// `rects` are in pixel coordinates (already divided by the raster
/// resolution).  `search` bounds the contour search along the normal,
/// and `tolerance` (pixels) defines a violation for the summary.
///
/// Returns `None` when no edge sample lies inside the image.
///
/// # Example
///
/// ```
/// use hotspot_geometry::{BitImage, Rect};
/// use hotspot_litho_sim::epe::measure_epe;
///
/// // Printed == drawn: EPE is zero everywhere.
/// let mut printed = BitImage::new(32, 32);
/// for y in 8..24 {
///     printed.fill_row_span(y, 8, 24);
/// }
/// let stats = measure_epe(&[Rect::new(8, 8, 24, 24)], &printed, 6, 1.5)
///     .expect("edges in range");
/// assert_eq!(stats.mean, 0.0);
/// assert_eq!(stats.violations, 0.0);
/// ```
pub fn measure_epe(
    rects: &[Rect],
    printed: &BitImage,
    search: usize,
    tolerance: f64,
) -> Option<EpeStats> {
    let (w, h) = (printed.width() as i64, printed.height() as i64);
    let mut errors: Vec<f64> = Vec::new();

    let mut probe = |x: i64, y: i64, nx: i64, ny: i64| {
        // Walk outward along (nx, ny) to find the printed contour; the
        // drawn edge sits between the inside pixel (x, y) and the
        // outside pixel (x + nx, y + ny).
        if x < 0 || y < 0 || x >= w || y >= h {
            return;
        }
        let inside_printed = printed.get(x as usize, y as usize);
        let mut epe: f64 = if inside_printed {
            // Contour is at or beyond the edge: walk outward counting
            // printed pixels beyond the drawn edge.
            let mut d = 0.0;
            for step in 1..=search as i64 {
                let (px, py) = (x + nx * step, y + ny * step);
                if px < 0 || py < 0 || px >= w || py >= h {
                    break;
                }
                if printed.get(px as usize, py as usize) {
                    d = step as f64;
                } else {
                    break;
                }
            }
            d
        } else {
            // Contour retracted inside: walk inward.
            let mut d = -(search as f64);
            for step in 1..=search as i64 {
                let (px, py) = (x - nx * step, y - ny * step);
                if px < 0 || py < 0 || px >= w || py >= h {
                    break;
                }
                if printed.get(px as usize, py as usize) {
                    d = -(step as f64);
                    break;
                }
            }
            d
        };
        epe = epe.clamp(-(search as f64), search as f64);
        errors.push(epe);
    };

    for r in rects {
        let (x0, y0, x1, y1) = (r.lo().x, r.lo().y, r.hi().x, r.hi().y);
        // Bottom and top edges: sample inside pixels just inside the
        // rect, normals pointing out.
        for x in x0..x1 {
            probe(x, y0, 0, -1);
            probe(x, y1 - 1, 0, 1);
        }
        // Left and right edges.
        for y in y0..y1 {
            probe(x0, y, -1, 0);
            probe(x1 - 1, y, 1, 0);
        }
    }

    if errors.is_empty() {
        return None;
    }
    let samples = errors.len();
    let mean = errors.iter().sum::<f64>() / samples as f64;
    let max = errors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = errors.iter().copied().fold(f64::INFINITY, f64::min);
    let violations = errors.iter().filter(|e| e.abs() > tolerance).count() as f64 / samples as f64;
    Some(EpeStats {
        samples,
        mean,
        max,
        min,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(x0: usize, y0: usize, x1: usize, y1: usize) -> BitImage {
        let mut img = BitImage::new(32, 32);
        for y in y0..y1 {
            img.fill_row_span(y, x0, x1);
        }
        img
    }

    #[test]
    fn exact_print_has_zero_epe() {
        let printed = filled(8, 8, 24, 24);
        let stats = measure_epe(&[Rect::new(8, 8, 24, 24)], &printed, 6, 1.5).expect("some");
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.max, 0.0);
        assert_eq!(stats.min, 0.0);
        assert_eq!(stats.violations, 0.0);
        assert_eq!(stats.samples, 4 * 16);
    }

    #[test]
    fn uniform_shrink_gives_negative_epe() {
        // Drawn 16 wide, printed eroded by 2 pixels on every side.
        let printed = filled(10, 10, 22, 22);
        let stats = measure_epe(&[Rect::new(8, 8, 24, 24)], &printed, 6, 1.5).expect("some");
        assert!(stats.mean < -1.5, "mean {}", stats.mean);
        assert!(stats.min <= -2.0);
        assert!(stats.max <= 0.0);
        assert!(stats.violations > 0.9);
    }

    #[test]
    fn uniform_bloat_gives_positive_epe() {
        let printed = filled(6, 6, 26, 26);
        let stats = measure_epe(&[Rect::new(8, 8, 24, 24)], &printed, 6, 1.5).expect("some");
        assert!(stats.mean > 1.5, "mean {}", stats.mean);
        assert!(stats.max >= 2.0);
        assert!(stats.violations > 0.9);
    }

    #[test]
    fn fully_missing_feature_saturates_at_search_range() {
        let printed = BitImage::new(32, 32);
        let stats = measure_epe(&[Rect::new(8, 8, 24, 24)], &printed, 6, 1.5).expect("some");
        assert_eq!(stats.mean, -6.0);
        assert_eq!(stats.violations, 1.0);
    }

    #[test]
    fn line_end_pullback_detected() {
        // A horizontal line whose right end printed 4 px short.
        let printed = filled(2, 14, 26, 18);
        let stats = measure_epe(&[Rect::new(2, 14, 30, 18)], &printed, 6, 1.5).expect("some");
        // Only the right-end samples are off; mean is mildly negative,
        // min strongly so.
        assert!(stats.min <= -4.0, "min {}", stats.min);
        assert!(stats.violations > 0.0);
    }

    #[test]
    fn out_of_frame_edges_are_skipped() {
        let printed = BitImage::new(32, 32);
        assert!(measure_epe(&[Rect::new(100, 100, 120, 120)], &printed, 4, 1.0).is_none());
    }
}
