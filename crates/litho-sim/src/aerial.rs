//! Optical model and aerial-image computation.

use hotspot_geometry::BitImage;
use serde::{Deserialize, Serialize};

/// Parameters of the simplified partially-coherent optical model.
///
/// The point-spread function is approximated by a two-term kernel
/// stack (SOCS style): a main Gaussian of width `sigma_nm` and a wider
/// defocus term.  The aerial image is
/// `I = w₀ · blur(m, σ)² + w₁ · blur(m, σ_wide)²`
/// where `m` is the 0/1 mask.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalModel {
    /// Main PSF width in nanometres (≈ 0.4·λ/NA; 35 nm ≈ 193 nm
    /// immersion lithography).
    pub sigma_nm: f64,
    /// Width of the secondary (background / flare) term.
    pub sigma_wide_nm: f64,
    /// Weight of the secondary term in the intensity sum.
    pub wide_weight: f64,
    /// Extra blur added at the defocus process corner, in nanometres.
    pub defocus_extra_nm: f64,
    /// Raster pixel pitch in nanometres.
    pub pixel_nm: f64,
    /// Resist threshold on the normalized aerial intensity.
    pub threshold: f64,
    /// Fractional dose latitude explored at the dose corners
    /// (threshold is scaled by `1 ± dose_latitude`).
    pub dose_latitude: f64,
}

impl Default for OpticalModel {
    /// A 193 nm-immersion-flavoured model on a 10 nm raster.
    fn default() -> Self {
        OpticalModel {
            sigma_nm: 40.0,
            sigma_wide_nm: 110.0,
            wide_weight: 0.15,
            defocus_extra_nm: 25.0,
            pixel_nm: 10.0,
            threshold: 0.33,
            dose_latitude: 0.10,
        }
    }
}

/// A process condition at which printing is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessCorner {
    /// Best focus, nominal dose.
    Nominal,
    /// Defocused exposure (wider PSF).
    Defocus,
    /// Over-exposure (lower effective threshold: features fatten).
    DosePlus,
    /// Under-exposure (higher effective threshold: features thin).
    DoseMinus,
}

impl ProcessCorner {
    /// All corners, in evaluation order.
    pub const ALL: [ProcessCorner; 4] = [
        ProcessCorner::Nominal,
        ProcessCorner::Defocus,
        ProcessCorner::DosePlus,
        ProcessCorner::DoseMinus,
    ];
}

impl OpticalModel {
    /// The PSF sigma (in pixels) for a corner.
    pub fn sigma_px(&self, corner: ProcessCorner) -> f64 {
        let extra = match corner {
            ProcessCorner::Defocus => self.defocus_extra_nm,
            _ => 0.0,
        };
        // Defocus adds in quadrature.
        ((self.sigma_nm * self.sigma_nm + extra * extra).sqrt()) / self.pixel_nm
    }

    /// The resist threshold for a corner.
    pub fn threshold_at(&self, corner: ProcessCorner) -> f64 {
        match corner {
            ProcessCorner::DosePlus => self.threshold * (1.0 - self.dose_latitude),
            ProcessCorner::DoseMinus => self.threshold * (1.0 + self.dose_latitude),
            _ => self.threshold,
        }
    }
}

/// Discrete 1-D Gaussian taps with ±3σ support, normalized to sum 1.
fn gaussian_taps(sigma_px: f64) -> Vec<f64> {
    let radius = (3.0 * sigma_px).ceil() as i64;
    let mut taps = Vec::with_capacity((2 * radius + 1) as usize);
    let inv = 1.0 / (2.0 * sigma_px * sigma_px);
    for i in -radius..=radius {
        taps.push((-(i * i) as f64 * inv).exp());
    }
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Separable Gaussian blur of a row-major `h × w` plane.
///
/// Borders are handled by renormalizing over the in-bounds taps, so a
/// constant plane stays constant.
pub fn gaussian_blur(plane: &[f32], h: usize, w: usize, sigma_px: f64) -> Vec<f32> {
    assert_eq!(plane.len(), h * w, "plane size mismatch");
    assert!(sigma_px > 0.0, "sigma must be positive");
    let taps = gaussian_taps(sigma_px);
    let radius = (taps.len() / 2) as i64;

    // Horizontal pass.
    let mut tmp = vec![0.0f32; h * w];
    for y in 0..h {
        let row = &plane[y * w..(y + 1) * w];
        for x in 0..w as i64 {
            let mut acc = 0.0f64;
            let mut norm = 0.0f64;
            for (ti, &t) in taps.iter().enumerate() {
                let ix = x + ti as i64 - radius;
                if ix < 0 || ix >= w as i64 {
                    continue;
                }
                acc += t * row[ix as usize] as f64;
                norm += t;
            }
            tmp[y * w + x as usize] = (acc / norm) as f32;
        }
    }
    // Vertical pass.
    let mut out = vec![0.0f32; h * w];
    for x in 0..w {
        for y in 0..h as i64 {
            let mut acc = 0.0f64;
            let mut norm = 0.0f64;
            for (ti, &t) in taps.iter().enumerate() {
                let iy = y + ti as i64 - radius;
                if iy < 0 || iy >= h as i64 {
                    continue;
                }
                acc += t * tmp[iy as usize * w + x] as f64;
                norm += t;
            }
            out[y as usize * w + x] = (acc / norm) as f32;
        }
    }
    out
}

/// Computes the normalized aerial image of a binary mask at a process
/// corner.  Returned intensities are in `[0, 1]` for a 0/1 mask.
pub fn aerial_image(mask: &BitImage, model: &OpticalModel, corner: ProcessCorner) -> Vec<f32> {
    let (w, h) = (mask.width(), mask.height());
    let plane = mask.to_f32();
    let sigma = model.sigma_px(corner);
    let main = gaussian_blur(&plane, h, w, sigma);
    let wide = gaussian_blur(&plane, h, w, model.sigma_wide_nm / model.pixel_nm);
    let w0 = 1.0 - model.wide_weight;
    let w1 = model.wide_weight;
    main.iter()
        .zip(&wide)
        .map(|(&a, &b)| (w0 * (a as f64 * a as f64) + w1 * (b as f64 * b as f64)) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_normalized_and_symmetric() {
        let taps = gaussian_taps(2.0);
        let sum: f64 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let n = taps.len();
        for i in 0..n / 2 {
            assert!((taps[i] - taps[n - 1 - i]).abs() < 1e-12);
        }
        // Peak in the middle.
        assert!(taps[n / 2] >= taps[0]);
    }

    #[test]
    fn blur_preserves_constant_plane() {
        let plane = vec![0.7f32; 20 * 20];
        let out = gaussian_blur(&plane, 20, 20, 2.5);
        for &v in &out {
            assert!((v - 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn blur_preserves_mass_interior() {
        // A point source spreads but keeps total mass (borders far away).
        let mut plane = vec![0.0f32; 41 * 41];
        plane[20 * 41 + 20] = 1.0;
        let out = gaussian_blur(&plane, 41, 41, 2.0);
        let total: f32 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "mass {total}");
        // Spread is symmetric.
        assert!((out[20 * 41 + 18] - out[20 * 41 + 22]).abs() < 1e-6);
        assert!(out[20 * 41 + 20] > out[20 * 41 + 19]);
    }

    #[test]
    fn aerial_intensity_in_unit_range() {
        let mut mask = BitImage::new(64, 64);
        for y in 20..44 {
            mask.fill_row_span(y, 20, 44);
        }
        let model = OpticalModel::default();
        let img = aerial_image(&mask, &model, ProcessCorner::Nominal);
        assert!(img.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        // Bright inside the big feature, dark far away.
        assert!(img[32 * 64 + 32] > 0.8);
        assert!(img[2 * 64 + 2] < 0.05);
    }

    #[test]
    fn defocus_blurs_more() {
        // A narrow line loses peak intensity under defocus.
        let mut mask = BitImage::new(64, 64);
        for y in 0..64 {
            mask.fill_row_span(y, 30, 34);
        }
        let model = OpticalModel::default();
        let nominal = aerial_image(&mask, &model, ProcessCorner::Nominal);
        let defocus = aerial_image(&mask, &model, ProcessCorner::Defocus);
        assert!(
            defocus[32 * 64 + 32] < nominal[32 * 64 + 32],
            "defocus {} vs nominal {}",
            defocus[32 * 64 + 32],
            nominal[32 * 64 + 32]
        );
    }

    #[test]
    fn corner_thresholds_ordered() {
        let m = OpticalModel::default();
        assert!(m.threshold_at(ProcessCorner::DosePlus) < m.threshold_at(ProcessCorner::Nominal));
        assert!(m.threshold_at(ProcessCorner::DoseMinus) > m.threshold_at(ProcessCorner::Nominal));
        assert_eq!(
            m.threshold_at(ProcessCorner::Defocus),
            m.threshold_at(ProcessCorner::Nominal)
        );
        assert!(m.sigma_px(ProcessCorner::Defocus) > m.sigma_px(ProcessCorner::Nominal));
    }
}
