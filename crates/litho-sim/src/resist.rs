//! Constant-threshold resist model.

use hotspot_geometry::BitImage;

/// Develops an aerial image into printed contours: a pixel prints when
/// its intensity reaches `threshold`.
///
/// # Panics
///
/// Panics when `intensity` does not match `w × h`.
pub fn develop(intensity: &[f32], w: usize, h: usize, threshold: f64) -> BitImage {
    assert_eq!(intensity.len(), w * h, "intensity plane size mismatch");
    let mut out = BitImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            if intensity[y * w + x] as f64 >= threshold {
                out.set(x, y, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_partitions_pixels() {
        let intensity = vec![0.1, 0.5, 0.35, 0.9];
        let img = develop(&intensity, 2, 2, 0.36);
        assert!(!img.get(0, 0));
        assert!(img.get(1, 0));
        assert!(!img.get(0, 1));
        assert!(img.get(1, 1));
    }

    #[test]
    fn lower_threshold_prints_more() {
        let intensity: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let strict = develop(&intensity, 10, 10, 0.8);
        let loose = develop(&intensity, 10, 10, 0.2);
        assert!(loose.count_ones() > strict.count_ones());
    }

    #[test]
    fn exact_threshold_prints() {
        let img = develop(&[0.36], 1, 1, 0.36);
        assert!(img.get(0, 0));
    }
}
