//! A simplified lithography simulator and hotspot ground-truth oracle.
//!
//! The ICCAD-2012 benchmark labels its clips with an industrial
//! lithography simulator that is not redistributable; this crate plays
//! that role for the synthetic dataset.  It implements a compact
//! partially-coherent imaging approximation in the SOCS spirit — the
//! aerial image is a weighted sum of squared Gaussian-blurred copies of
//! the mask — followed by a constant-threshold resist model, and labels
//! a clip *hotspot* when the printed contours exhibit an open or bridge
//! defect at any simulated process corner (nominal, defocus, dose ±).
//!
//! Because the labels derive from an actual optical model, they are
//! physically correlated with pattern geometry (tip-to-tip gaps, narrow
//! necks, dense line/space) — exactly the structure a learned hotspot
//! detector must pick up.
//!
//! # Example
//!
//! ```
//! use hotspot_geometry::{Layout, Rect};
//! use hotspot_litho_sim::{HotspotOracle, OpticalModel};
//!
//! // Two wide, well-separated wires: prints cleanly.
//! let layout = Layout::from_rects([
//!     Rect::new(100, 200, 1100, 320),
//!     Rect::new(100, 700, 1100, 820),
//! ]);
//! let oracle = HotspotOracle::new(OpticalModel::default());
//! let report = oracle.analyze(&layout, Rect::new(0, 0, 1280, 1280));
//! assert!(!report.is_hotspot());
//! ```

pub mod aerial;
pub mod connectivity;
pub mod epe;
pub mod oracle;
pub mod resist;

pub use aerial::{aerial_image, gaussian_blur, OpticalModel, ProcessCorner};
pub use connectivity::{connected_components, ComponentMap};
pub use epe::{measure_epe, EpeStats};
pub use oracle::{DefectKind, HotspotOracle, SimReport};
pub use resist::develop;
