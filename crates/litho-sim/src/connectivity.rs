//! Connected-component labelling on binary images.

use hotspot_geometry::BitImage;

/// A labelling of the set pixels of a [`BitImage`] into 4-connected
/// components.
///
/// Labels are `1..=count`; background pixels carry label `0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentMap {
    width: usize,
    height: usize,
    labels: Vec<u32>,
    count: usize,
    sizes: Vec<usize>,
}

impl ComponentMap {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The label of pixel `(x, y)`; `0` for background.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn label(&self, x: usize, y: usize) -> u32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.labels[y * self.width + x]
    }

    /// Pixel count of component `label` (1-based).
    ///
    /// # Panics
    ///
    /// Panics for label 0 or labels beyond [`count`](ComponentMap::count).
    pub fn size(&self, label: u32) -> usize {
        assert!(
            label >= 1 && (label as usize) <= self.count,
            "bad label {label}"
        );
        self.sizes[label as usize - 1]
    }

    /// Iterates over `(x, y, label)` of all labelled pixels.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        let w = self.width;
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != 0)
            .map(move |(i, &l)| (i % w, i / w, l))
    }
}

/// Labels the 4-connected components of the set pixels of `img`.
pub fn connected_components(img: &BitImage) -> ComponentMap {
    let (w, h) = (img.width(), img.height());
    let mut labels = vec![0u32; w * h];
    let mut sizes = Vec::new();
    let mut next = 1u32;
    let mut stack = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            if !img.get(sx, sy) || labels[sy * w + sx] != 0 {
                continue;
            }
            // Flood fill.
            let mut size = 0usize;
            stack.push((sx, sy));
            labels[sy * w + sx] = next;
            while let Some((x, y)) = stack.pop() {
                size += 1;
                let mut visit = |nx: usize, ny: usize| {
                    if img.get(nx, ny) && labels[ny * w + nx] == 0 {
                        labels[ny * w + nx] = next;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    visit(x - 1, y);
                }
                if x + 1 < w {
                    visit(x + 1, y);
                }
                if y > 0 {
                    visit(x, y - 1);
                }
                if y + 1 < h {
                    visit(x, y + 1);
                }
            }
            sizes.push(size);
            next += 1;
        }
    }
    ComponentMap {
        width: w,
        height: h,
        labels,
        count: (next - 1) as usize,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_image_has_no_components() {
        let img = BitImage::new(4, 4);
        let cm = connected_components(&img);
        assert_eq!(cm.count(), 0);
        assert_eq!(cm.label(2, 2), 0);
    }

    #[test]
    fn two_separate_blobs() {
        let mut img = BitImage::new(8, 8);
        img.fill_row_span(0, 0, 3);
        img.fill_row_span(1, 0, 3);
        img.fill_row_span(6, 5, 8);
        let cm = connected_components(&img);
        assert_eq!(cm.count(), 2);
        assert_eq!(cm.size(1), 6);
        assert_eq!(cm.size(2), 3);
        assert_ne!(cm.label(0, 0), cm.label(5, 6));
    }

    #[test]
    fn diagonal_touch_is_not_connected() {
        let mut img = BitImage::new(4, 4);
        img.set(0, 0, true);
        img.set(1, 1, true);
        let cm = connected_components(&img);
        assert_eq!(cm.count(), 2);
    }

    #[test]
    fn l_shaped_component_is_one() {
        let mut img = BitImage::new(5, 5);
        for y in 0..5 {
            img.set(0, y, true);
        }
        img.fill_row_span(0, 0, 5);
        let cm = connected_components(&img);
        assert_eq!(cm.count(), 1);
        assert_eq!(cm.size(1), 9);
    }

    #[test]
    fn iter_visits_all_labelled_pixels() {
        let mut img = BitImage::new(3, 3);
        img.set(0, 0, true);
        img.set(2, 2, true);
        let cm = connected_components(&img);
        let pixels: Vec<_> = cm.iter().collect();
        assert_eq!(pixels.len(), 2);
        assert!(pixels.contains(&(0, 0, cm.label(0, 0))));
        assert!(pixels.contains(&(2, 2, cm.label(2, 2))));
    }
}
