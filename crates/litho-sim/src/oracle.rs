//! The hotspot ground-truth oracle.

use crate::aerial::{aerial_image, OpticalModel, ProcessCorner};
use crate::connectivity::connected_components;
use crate::epe::{measure_epe, EpeStats};
use crate::resist::develop;
use hotspot_geometry::{BitImage, Layout, Raster, Rect};
use serde::{Deserialize, Serialize};

/// A printing defect found at a process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefectKind {
    /// Printed resist connects two design shapes that should be
    /// separate — a potential short.
    Bridge {
        /// The corner at which the bridge appears.
        corner: ProcessCorner,
    },
    /// A design shape prints incompletely (missing or split) — a
    /// potential open.
    Open {
        /// The corner at which the open appears.
        corner: ProcessCorner,
    },
}

/// The outcome of simulating one layout clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    defects: Vec<DefectKind>,
    mismatch: Vec<(ProcessCorner, f64)>,
    epe: Option<EpeStats>,
}

impl SimReport {
    /// `true` when any corner shows a printing defect — the clip is a
    /// lithography hotspot.
    pub fn is_hotspot(&self) -> bool {
        !self.defects.is_empty()
    }

    /// The defects found, in corner evaluation order.
    pub fn defects(&self) -> &[DefectKind] {
        &self.defects
    }

    /// Per-corner fraction of pixels where the printed image differs
    /// from the design raster (an EPE-like severity indicator).
    pub fn mismatch(&self) -> &[(ProcessCorner, f64)] {
        &self.mismatch
    }

    /// Edge-placement-error statistics at the nominal corner, when
    /// any design edge lies inside the clip.
    pub fn epe(&self) -> Option<&EpeStats> {
        self.epe.as_ref()
    }
}

/// Labels layout clips by simulating their printing at four process
/// corners and checking the printed contours for bridges and opens.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotOracle {
    model: OpticalModel,
    raster: Raster,
    /// A design component printing less than this fraction of its area
    /// is an open.
    open_coverage: f64,
    /// Minimum pixel area for a printed fragment to count when
    /// deciding that a shape printed split.
    min_split_area: usize,
    /// Design components smaller than this many pixels are ignored
    /// (slivers from clip boundaries).
    min_shape_area: usize,
}

impl HotspotOracle {
    /// Creates an oracle with the given optical model and default
    /// defect thresholds.
    pub fn new(model: OpticalModel) -> Self {
        let raster = Raster::new(model.pixel_nm as i64);
        HotspotOracle {
            model,
            raster,
            open_coverage: 0.55,
            min_split_area: 5,
            min_shape_area: 8,
        }
    }

    /// The optical model in use.
    pub fn model(&self) -> &OpticalModel {
        &self.model
    }

    /// The raster used to discretize clips.
    pub fn raster(&self) -> &Raster {
        &self.raster
    }

    /// Simulates `layout` inside `window` and reports defects.
    ///
    /// # Panics
    ///
    /// Panics when the window is not a positive multiple of the raster
    /// resolution.
    pub fn analyze(&self, layout: &Layout, window: Rect) -> SimReport {
        let design = self.raster.rasterize(layout, window);
        let design_cm = connected_components(&design);
        let (w, h) = (design.width(), design.height());

        // Design rects in pixel coordinates, for EPE measurement.
        let res = self.model.pixel_nm as i64;
        let px_rects: Vec<Rect> = layout
            .clip(window)
            .iter()
            .map(|r| {
                Rect::new(
                    (r.lo().x - window.lo().x) / res,
                    (r.lo().y - window.lo().y) / res,
                    (r.hi().x - window.lo().x) / res,
                    (r.hi().y - window.lo().y) / res,
                )
            })
            .collect();

        let mut defects = Vec::new();
        let mut mismatch = Vec::new();
        let mut epe = None;
        for corner in ProcessCorner::ALL {
            let intensity = aerial_image(&design, &self.model, corner);
            let printed = develop(&intensity, w, h, self.model.threshold_at(corner));
            mismatch.push((corner, mismatch_fraction(&design, &printed)));

            if self.has_bridge(&design_cm, &printed, w, h) {
                defects.push(DefectKind::Bridge { corner });
            }
            if self.has_open(&design, &design_cm, &printed, w, h) {
                defects.push(DefectKind::Open { corner });
            }
            if corner == ProcessCorner::Nominal {
                epe = measure_epe(&px_rects, &printed, 8, 1.5);
            }
        }
        SimReport {
            defects,
            mismatch,
            epe,
        }
    }

    /// Convenience wrapper: `true` when the clip is a hotspot.
    pub fn label(&self, layout: &Layout, window: Rect) -> bool {
        self.analyze(layout, window).is_hotspot()
    }

    fn has_bridge(
        &self,
        design_cm: &crate::connectivity::ComponentMap,
        printed: &BitImage,
        w: usize,
        h: usize,
    ) -> bool {
        if design_cm.count() < 2 {
            return false;
        }
        let printed_cm = connected_components(printed);
        // For each printed component, which design components does it
        // touch (only counting design shapes of meaningful size)?
        let mut touched: Vec<Vec<u32>> = vec![Vec::new(); printed_cm.count()];
        for y in 0..h {
            for x in 0..w {
                let p = printed_cm.label(x, y);
                if p == 0 {
                    continue;
                }
                let d = design_cm.label(x, y);
                if d == 0 || design_cm.size(d) < self.min_shape_area {
                    continue;
                }
                let list = &mut touched[p as usize - 1];
                if !list.contains(&d) {
                    list.push(d);
                }
            }
        }
        touched.iter().any(|list| list.len() >= 2)
    }

    fn has_open(
        &self,
        design: &BitImage,
        design_cm: &crate::connectivity::ComponentMap,
        printed: &BitImage,
        w: usize,
        h: usize,
    ) -> bool {
        if design_cm.count() == 0 {
            return false;
        }
        // Coverage per design component.
        let mut covered = vec![0usize; design_cm.count()];
        let mut total = vec![0usize; design_cm.count()];
        for y in 0..h {
            for x in 0..w {
                let d = design_cm.label(x, y);
                if d == 0 {
                    continue;
                }
                total[d as usize - 1] += 1;
                if printed.get(x, y) {
                    covered[d as usize - 1] += 1;
                }
            }
        }
        for label in 1..=design_cm.count() as u32 {
            let tot = total[label as usize - 1];
            if tot < self.min_shape_area {
                continue; // boundary sliver
            }
            let cov = covered[label as usize - 1] as f64 / tot as f64;
            if cov < self.open_coverage {
                return true;
            }
            // Split check: the printed area inside this component must
            // be a single piece (fragments smaller than
            // min_split_area are tolerated as line-end erosion).
            let mut inside = BitImage::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    if design_cm.label(x, y) == label && printed.get(x, y) {
                        inside.set(x, y, true);
                    }
                }
            }
            let pieces = connected_components(&inside);
            let significant = (1..=pieces.count() as u32)
                .filter(|&l| pieces.size(l) >= self.min_split_area)
                .count();
            if significant >= 2 {
                return true;
            }
        }
        let _ = design;
        false
    }
}

fn mismatch_fraction(design: &BitImage, printed: &BitImage) -> f64 {
    let (w, h) = (design.width(), design.height());
    let mut diff = 0usize;
    for y in 0..h {
        for x in 0..w {
            if design.get(x, y) != printed.get(x, y) {
                diff += 1;
            }
        }
    }
    diff as f64 / (w * h) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Rect {
        Rect::new(0, 0, 1280, 1280)
    }

    fn oracle() -> HotspotOracle {
        HotspotOracle::new(OpticalModel::default())
    }

    #[test]
    fn empty_clip_is_clean() {
        let report = oracle().analyze(&Layout::new(), window());
        assert!(!report.is_hotspot());
        assert!(report.defects().is_empty());
    }

    #[test]
    fn wide_isolated_lines_print_clean() {
        let layout = Layout::from_rects([
            Rect::new(100, 200, 1180, 320),
            Rect::new(100, 600, 1180, 720),
            Rect::new(100, 1000, 1180, 1120),
        ]);
        let report = oracle().analyze(&layout, window());
        assert!(!report.is_hotspot(), "defects: {:?}", report.defects());
    }

    #[test]
    fn ultra_narrow_line_opens() {
        // A 20 nm line is far below the printable width of this model.
        let layout = Layout::from_rects([Rect::new(100, 630, 1180, 650)]);
        let report = oracle().analyze(&layout, window());
        assert!(report.is_hotspot());
        assert!(report
            .defects()
            .iter()
            .any(|d| matches!(d, DefectKind::Open { .. })));
    }

    #[test]
    fn tight_tip_to_tip_bridges() {
        // Two wide wires whose tips come within 30 nm.
        let layout = Layout::from_rects([
            Rect::new(100, 520, 620, 760),
            Rect::new(650, 520, 1180, 760),
        ]);
        let report = oracle().analyze(&layout, window());
        assert!(report.is_hotspot(), "mismatch: {:?}", report.mismatch());
        assert!(report
            .defects()
            .iter()
            .any(|d| matches!(d, DefectKind::Bridge { .. })));
    }

    #[test]
    fn generous_tip_to_tip_is_clean() {
        // Same wires with a 200 nm gap.
        let layout = Layout::from_rects([
            Rect::new(100, 580, 540, 700),
            Rect::new(740, 580, 1180, 700),
        ]);
        let report = oracle().analyze(&layout, window());
        assert!(!report.is_hotspot(), "defects: {:?}", report.defects());
    }

    #[test]
    fn mismatch_reported_for_all_corners() {
        let layout = Layout::from_rects([Rect::new(200, 200, 1000, 400)]);
        let report = oracle().analyze(&layout, window());
        assert_eq!(report.mismatch().len(), 4);
        for &(_, frac) in report.mismatch() {
            assert!((0.0..=1.0).contains(&frac));
        }
    }
}
