//! Property-based tests for the lithography simulator.

use hotspot_geometry::{BitImage, Layout, Rect};
use hotspot_litho_sim::{
    aerial_image, connected_components, develop, gaussian_blur, HotspotOracle, OpticalModel,
    ProcessCorner,
};
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = BitImage> {
    prop::collection::vec((0usize..64, 0usize..64, 1usize..20, 1usize..20), 0..8).prop_map(
        |rects| {
            let mut img = BitImage::new(64, 64);
            for (x, y, w, h) in rects {
                for yy in y..(y + h).min(64) {
                    img.fill_row_span(yy, x, (x + w).min(64));
                }
            }
            img
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blur output stays within the input's value range (a convex
    /// combination of inputs under renormalized borders).
    #[test]
    fn blur_respects_range(mask in arb_mask(), sigma in 0.5f64..5.0) {
        let plane = mask.to_f32();
        let out = gaussian_blur(&plane, 64, 64, sigma);
        for &v in &out {
            prop_assert!((-1e-5..=1.0 + 1e-5).contains(&(v as f64)));
        }
    }

    /// Aerial intensity is monotone in the mask: adding shapes never
    /// darkens any pixel.
    #[test]
    fn aerial_is_monotone_in_mask(mask in arb_mask(), x in 5usize..59, y in 5usize..59) {
        let model = OpticalModel::default();
        let base = aerial_image(&mask, &model, ProcessCorner::Nominal);
        let mut bigger = mask.clone();
        for yy in y..(y + 5).min(64) {
            bigger.fill_row_span(yy, x, (x + 5).min(64));
        }
        let brighter = aerial_image(&bigger, &model, ProcessCorner::Nominal);
        for (a, b) in base.iter().zip(&brighter) {
            prop_assert!(b + 1e-5 >= *a, "darkened: {} -> {}", a, b);
        }
    }

    /// Developing at a lower threshold prints a superset of pixels.
    #[test]
    fn develop_is_monotone_in_threshold(mask in arb_mask()) {
        let model = OpticalModel::default();
        let intensity = aerial_image(&mask, &model, ProcessCorner::Nominal);
        let strict = develop(&intensity, 64, 64, 0.5);
        let loose = develop(&intensity, 64, 64, 0.2);
        for yy in 0..64 {
            for xx in 0..64 {
                if strict.get(xx, yy) {
                    prop_assert!(loose.get(xx, yy));
                }
            }
        }
    }

    /// Component labelling: label count equals the number of distinct
    /// labels, sizes sum to the pixel count.
    #[test]
    fn component_sizes_sum_to_pixels(mask in arb_mask()) {
        let cm = connected_components(&mask);
        let total: usize = (1..=cm.count() as u32).map(|l| cm.size(l)).sum();
        prop_assert_eq!(total as u64, mask.count_ones());
    }

    /// Oracle verdicts are deterministic and translation-covariant:
    /// shifting a layout together with its window leaves the label
    /// unchanged.
    #[test]
    fn oracle_translation_invariant(dx in 0i64..5, dy in 0i64..5) {
        let oracle = HotspotOracle::new(OpticalModel::default());
        // A near-threshold tip-to-tip pattern.
        let layout = Layout::from_rects([
            Rect::new(100, 260, 300, 380),
            Rect::new(340, 260, 540, 380),
        ]);
        let window = Rect::new(0, 0, 640, 640);
        let base = oracle.label(&layout, window);
        let shift = hotspot_geometry::Point::new(dx * 10, dy * 10);
        let moved = layout.translate(shift);
        let moved_window = window.translate(shift);
        prop_assert_eq!(oracle.label(&moved, moved_window), base);
    }
}
