//! Shared fixtures for the benchmark harness.
//!
//! The `tables` binary regenerates the paper's tables and figures; the
//! criterion benches measure the kernels behind them.  Both share the
//! dataset and quick-training helpers here.

use criterion::Criterion;
use hotspot_core::{
    BitImage, BnnDetector, BnnTrainConfig, DatasetSpec, HotspotDetector, HotspotOracle,
    LabeledClip, OpticalModel, PatternFamily, SplitDataset,
};

/// A short-and-stable criterion configuration shared by every bench in
/// this crate: the measured kernels are long-running and low-variance,
/// so 20 samples in a 3 s window suffice and the full suite stays fast.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

/// Builds the ICCAD-2012-like dataset at the given scale of the
/// paper's Table-2 counts, caching the result on disk (litho
/// simulation of tens of thousands of clips is the expensive step).
pub fn dataset(scale: f64) -> SplitDataset {
    let cache = std::env::temp_dir().join(format!("brnn_dataset_v2_{:.4}.bin", scale));
    if let Ok(ds) = hotspot_core::persist::load_dataset(&cache) {
        return ds;
    }
    let oracle = HotspotOracle::new(OpticalModel::default());
    let spec = if (scale - 1.0).abs() < 1e-12 {
        DatasetSpec::iccad2012_like()
    } else {
        DatasetSpec::iccad2012_like().scaled(scale)
    };
    let ds = spec.build(&oracle);
    let _ = hotspot_core::persist::save_dataset(&cache, &ds);
    ds
}

/// Striped toy clips: hotspots are dense stripes, clean clips sparse.
/// Training-free benches use these to exercise detectors without the
/// cost of lithography simulation.
pub fn stripe_clips(n: usize, side: usize) -> Vec<LabeledClip> {
    (0..n)
        .map(|i| {
            let hotspot = i % 2 == 0;
            let mut img = BitImage::new(side, side);
            let step = if hotspot { 4 } else { 12 };
            let mut y = i % 3;
            while y < side {
                img.fill_row_span(y, 0, side);
                y += step;
            }
            LabeledClip {
                image: img,
                hotspot,
                family: PatternFamily::LineSpace,
            }
        })
        .collect()
}

/// Trains a BNN detector quickly on striped toy clips, for benches
/// that need a *trained* artifact but do not care about its quality.
pub fn quick_bnn(input_size: usize) -> BnnDetector {
    let mut cfg = BnnTrainConfig::fast();
    cfg.net.input_size = input_size;
    cfg.input_size = input_size;
    cfg.epochs = 2;
    cfg.bias_epochs = 0;
    let mut det = BnnDetector::new(cfg);
    det.fit(&stripe_clips(16, input_size));
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_clips_alternate_labels() {
        let clips = stripe_clips(6, 32);
        assert_eq!(clips.len(), 6);
        assert!(clips[0].hotspot && !clips[1].hotspot);
        assert!(clips[0].image.count_ones() > clips[1].image.count_ones());
    }

    #[test]
    fn quick_bnn_is_trained() {
        let det = quick_bnn(32);
        assert!(det.packed().is_some());
    }
}
