//! Served-throughput benchmark: drives the `hotspot-serve` loopback
//! server with concurrent lock-step clients and writes
//! `BENCH_serving.json` — QPS and client-side p50/p95/p99 latency at
//! 1/4/16 client threads, with the cascade confirming every clip
//! ("cascade") and in the triage-only shape the degradation ladder
//! serves under overload ("triage").
//!
//! Timing does not need trained weights: the server is handed a
//! randomly initialised M = 2 model of the paper's 12-layer network,
//! and the two modes are selected through the cascade threshold
//! (`f32::MAX` escalates everything, `0.0` escalates nothing).
//!
//! ```sh
//! cargo run --release -p hotspot-bench --bin bench_serving [OUT.json] [REQUESTS_PER_COMBO]
//! ```

use hotspot_bnn::{BnnResNet, NetConfig, PackedBnn};
use hotspot_geometry::BitImage;
use hotspot_serve::{Response, ServeClient, ServeConfig, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 4, 16];
const MODES: [(&str, f32); 2] = [("cascade", f32::MAX), ("triage", 0.0)];

struct Combo {
    threads: usize,
    mode: &'static str,
    requests: usize,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn bench_clip(side: usize, variant: u64) -> BitImage {
    let mut img = BitImage::new(side, side);
    let step = 4 + (variant % 6) as usize;
    let mut y = (variant % 3) as usize;
    while y < side {
        img.fill_row_span(y, 0, side);
        y += step;
    }
    img
}

fn run_combo(
    model: &PackedBnn,
    side: usize,
    threads: usize,
    mode: &'static str,
    threshold: f32,
    total_requests: usize,
) -> Combo {
    let mut cfg = ServeConfig::new(side);
    cfg.workers = 2;
    cfg.max_batch = 16;
    cfg.queue_capacity = 256;
    cfg.high_water = 192;
    cfg.low_water = 64;
    cfg.cascade_threshold = threshold;
    let server = Server::start(cfg, model.clone()).expect("start loopback server");

    let per_thread = total_requests.div_ceil(threads);
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut latencies_us = Vec::with_capacity(per_thread);
                for i in 0..per_thread {
                    let id = (t * 1_000_000 + i) as u64;
                    let clip = bench_clip(side, id);
                    let sent = Instant::now();
                    match client.classify(id, &clip, 30_000).expect("classify") {
                        Response::Classify { .. } => {}
                        other => panic!("request {id}: unexpected {other:?}"),
                    }
                    latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies.len();
    Combo {
        threads,
        mode,
        requests,
        qps: requests as f64 / wall,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_serving.json".into());
    let total_requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(240);

    let config = NetConfig::paper_12layer().with_levels(2);
    let side = config.input_size;
    let mut rng = StdRng::seed_from_u64(2019);
    let model = PackedBnn::compile(&BnnResNet::new(&config, &mut rng));

    println!(
        "serving benchmark: {side}x{side} M=2 model, {total_requests} requests per combination"
    );
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "threads", "mode", "qps", "p50_us", "p95_us", "p99_us"
    );
    let mut combos = Vec::new();
    for &threads in &THREAD_COUNTS {
        for &(mode, threshold) in &MODES {
            let c = run_combo(&model, side, threads, mode, threshold, total_requests);
            println!(
                "{:>8} {:>8} {:>10.1} {:>10.0} {:>10.0} {:>10.0}",
                c.threads, c.mode, c.qps, c.p50_us, c.p95_us, c.p99_us
            );
            combos.push(c);
        }
    }

    // Record which conv execution tier batched requests hit: batches
    // of 2+ clips route through the bit-sliced XNOR-GEMM tier when the
    // plan compiled one.
    let gemm_tier = model.plan((side, side)).gemm_tier();
    println!(
        "batched conv tier: {}",
        if gemm_tier { "xnor-gemm" } else { "per-item" }
    );

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"serving\",\n");
    let _ = writeln!(json, "  \"input_size\": {side},");
    let _ = writeln!(json, "  \"gemm_tier\": {gemm_tier},");
    let _ = writeln!(json, "  \"levels\": {},", config.levels);
    let _ = writeln!(json, "  \"requests_per_combo\": {total_requests},");
    json.push_str("  \"serving\": [\n");
    for (i, c) in combos.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"mode\": \"{}\", \"requests\": {}, \
             \"clips_per_sec\": {:.1}, \"p50_us\": {:.0}, \"p95_us\": {:.0}, \
             \"p99_us\": {:.0}}}{}",
            c.threads,
            c.mode,
            c.requests,
            c.qps,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            if i + 1 < combos.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
